"""Shared helpers for the benchmark harness (pytest-benchmark).

Every module in this directory regenerates one table or figure of the paper's
evaluation (see DESIGN.md, Section 3 "Experiment index").  The benchmarks are
configured to run a single round so that regenerating the whole evaluation
stays in the range of a few minutes; increase ``--benchmark-min-rounds`` for
more stable timing measurements.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def bench_once():
    return run_once
