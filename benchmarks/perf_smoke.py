#!/usr/bin/env python
"""Perf smoke entry point runnable straight from a checkout.

Equivalent to ``PYTHONPATH=src python -m repro.bench.perfsmoke``; see that
module (and PERFORMANCE.md) for the options and the output format.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.bench.perfsmoke import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
