"""Experiment E6: the Appendix F candlestick figures (Figures 10-48).

One benchmark per program: regenerate the bound-vs-measured sweep series
(the data behind each candlestick plot) and check the defining property of
those figures -- the inferred bound lies above the measured expected cost at
every swept input.

The sweeps use two inputs and a reduced number of runs so that all 39 figures
regenerate in a few minutes; ``python -m repro.bench.figures --figure appendix``
produces the full-resolution series.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import sweep_series
from repro.bench.registry import all_benchmarks

BENCHMARKS = all_benchmarks()

#: Number of Monte-Carlo runs per swept input in the quick regeneration.
QUICK_RUNS = 40


@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
def test_appendix_figure_series(benchmark, bench, bench_once):
    plan = bench.simulation
    values = plan.sweep_values[:2]
    series = bench_once(benchmark, sweep_series, bench, runs=QUICK_RUNS, values=values,
                        seed=29)
    assert series.bound is not None, f"{bench.name}: no bound inferred"
    assert len(series.points) == len(values)
    # The defining property of the Appendix F plots: the bound line lies above
    # the measured means (up to Monte-Carlo noise).
    for point in series.points:
        noise = 4 * point.measured.standard_error() + 0.05 * max(1.0, point.measured.mean)
        assert point.bound_value + noise >= point.measured.mean, (
            f"{bench.name}: bound {point.bound_value} below measurement "
            f"{point.measured.mean} at {series.swept_variable}={point.swept_value}")
    benchmark.extra_info["bound"] = str(series.bound)
    benchmark.extra_info["gaps_percent"] = [round(p.gap_percent(), 2)
                                            for p in series.points]
