"""Experiments E3-E5: the three panels of Figure 8.

* left  -- histogram of rdwalk's tick distribution at n = 100, with the
           measured mean and the inferred bound;
* centre -- trader's inferred bound vs. measured expected cost over an
           (s, smin) grid;
* right -- pol04 candlesticks: bound vs. sampled quartiles over x.

The timed quantity is the full data-series generation (analysis + sampling),
i.e. what one would run to redraw the figure.  Reduced run counts keep the
harness fast; ``python -m repro.bench.figures --figure 8`` uses larger ones.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import (
    figure8_histogram,
    figure8_pol04_series,
    figure8_trader_surface,
)


def test_figure8_rdwalk_histogram(benchmark, bench_once):
    figure = bench_once(benchmark, figure8_histogram, runs=1500, n=100, seed=0)
    assert figure.counts.sum() == 1500
    # Paper reports a measured mean of ~200.8 and an inferred bound of 202.
    assert figure.measured_mean == pytest.approx(200.8, rel=0.05)
    assert figure.bound_value >= figure.measured_mean
    assert figure.bound_value == pytest.approx(201, abs=2)
    benchmark.extra_info["measured_mean"] = round(figure.measured_mean, 2)
    benchmark.extra_info["bound"] = figure.bound_value


def test_figure8_trader_surface(benchmark, bench_once):
    points = bench_once(benchmark, figure8_trader_surface,
                        s_values=(120, 160, 200), smin_values=(100,), runs=80, seed=0)
    assert len(points) == 3
    for point in points:
        assert point.bound_value >= point.measured_mean * 0.95
    # The bound grows with s (same qualitative shape as the paper's surface).
    bounds = [point.bound_value for point in points]
    assert bounds == sorted(bounds)
    benchmark.extra_info["points"] = [
        {"s": p.s, "smin": p.smin, "measured": round(p.measured_mean, 1),
         "bound": round(p.bound_value, 1)} for p in points]


def test_figure8_pol04_candlesticks(benchmark, bench_once):
    series = bench_once(benchmark, figure8_pol04_series,
                        runs=80, seed=0, values=(20, 40, 60))
    assert series.bound is not None and series.bound.degree() == 2
    assert len(series.points) == 3
    assert series.bound_dominates(slack=0.10)
    # Quadratic growth: the measured mean at x=60 is much more than 3x the one at x=20.
    first, last = series.points[0], series.points[-1]
    assert last.measured.mean > 4 * first.measured.mean
    benchmark.extra_info["csv"] = series.to_csv()
