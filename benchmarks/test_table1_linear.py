"""Experiment E1: Table 1, linear programs (30 rows).

For every linear benchmark this measures the analysis time (the paper's
"Time(s)" column is the timed quantity) and checks that

* a bound is found,
* the bound has the expected (linear) degree, and
* the bound dominates a quick sampled estimate of the expected cost
  (the basis of the paper's "Error(%)" column).

Run with ``pytest benchmarks/test_table1_linear.py --benchmark-only``; a full
table (including the error column computed from a larger simulation) is
produced by ``python -m repro.bench.table1 --group linear``.
"""

from __future__ import annotations

import pytest

from repro.bench.registry import linear_benchmarks
from repro.core.analyzer import analyze_program
from repro.semantics.sampler import estimate_expected_cost

LINEAR = linear_benchmarks()

#: Reduced simulation size for the in-benchmark domination check.
QUICK_RUNS = 60


@pytest.mark.parametrize("bench", LINEAR, ids=lambda b: b.name)
def test_table1_linear_row(benchmark, bench, bench_once):
    program = bench.build()
    result = bench_once(benchmark, analyze_program, program, **bench.analyzer_options)

    assert result.success, f"{bench.name}: {result.message}"
    assert result.bound is not None
    assert result.bound.degree() <= 2

    benchmark.extra_info["bound"] = result.bound.pretty()
    benchmark.extra_info["paper_bound"] = bench.paper_bound
    benchmark.extra_info["lp_variables"] = result.lp_variables
    benchmark.extra_info["source"] = bench.source

    # Quick error-column style check on the smallest sweep input.
    plan = bench.simulation
    state = dict(plan.fixed_state)
    state[plan.swept_variable] = min(plan.sweep_values, key=abs)
    stats = estimate_expected_cost(program, state, runs=QUICK_RUNS, seed=17,
                                   max_steps=plan.max_steps)
    bound_value = float(result.bound.evaluate(state))
    slack = 4 * stats.standard_error() + 1e-6
    assert bound_value + slack >= stats.mean, (
        f"{bench.name}: bound {bound_value} below measured mean {stats.mean}")
    if stats.mean:
        benchmark.extra_info["gap_percent"] = round(
            (bound_value - stats.mean) / stats.mean * 100.0, 3)
