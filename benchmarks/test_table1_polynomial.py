"""Experiment E2: Table 1, polynomial programs (9 rows).

Same protocol as the linear half (see ``test_table1_linear.py``), but the
bounds must be genuinely polynomial (degree 2) and the simulation sweep uses
the smaller inputs of the paper ("We reduced the input ranges of polynomial
programs by an order of magnitude").
"""

from __future__ import annotations

import pytest

from repro.bench.registry import polynomial_benchmarks
from repro.core.analyzer import analyze_program
from repro.semantics.sampler import estimate_expected_cost

POLYNOMIAL = polynomial_benchmarks()

QUICK_RUNS = 50


@pytest.mark.parametrize("bench", POLYNOMIAL, ids=lambda b: b.name)
def test_table1_polynomial_row(benchmark, bench, bench_once):
    program = bench.build()
    result = bench_once(benchmark, analyze_program, program, **bench.analyzer_options)

    assert result.success, f"{bench.name}: {result.message}"
    assert result.bound is not None
    assert result.bound.degree() == 2, (
        f"{bench.name}: expected a quadratic bound, got {result.bound}")

    benchmark.extra_info["bound"] = result.bound.pretty()
    benchmark.extra_info["paper_bound"] = bench.paper_bound
    benchmark.extra_info["lp_variables"] = result.lp_variables
    benchmark.extra_info["source"] = bench.source

    plan = bench.simulation
    state = dict(plan.fixed_state)
    state[plan.swept_variable] = min(plan.sweep_values, key=abs)
    stats = estimate_expected_cost(program, state, runs=QUICK_RUNS, seed=23,
                                   max_steps=plan.max_steps)
    bound_value = float(result.bound.evaluate(state))
    slack = 4 * stats.standard_error() + 1e-6
    assert bound_value + slack >= stats.mean, (
        f"{bench.name}: bound {bound_value} below measured mean {stats.mean}")
    if stats.mean:
        benchmark.extra_info["gap_percent"] = round(
            (bound_value - stats.mean) / stats.mean * 100.0, 3)
