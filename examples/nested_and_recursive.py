"""Polynomial bounds: nested loops, symbolic costs and recursion.

Demonstrates the analyses that need degree-2 potential templates:

* a probabilistic nested loop (``rdbub``, the probabilistic bubble sort),
* a loop whose per-iteration cost is a program variable (``pol06``),
* a recursive procedure analysed through a specification context
  (``recursive``), including the failure report when the requested degree is
  too low -- the analyzer then retries at a higher degree.

Run with::

    python examples/nested_and_recursive.py
"""

from repro import analyze_program, check_certificate, estimate_expected_cost
from repro.bench.registry import get_benchmark


def show(name: str) -> None:
    benchmark = get_benchmark(name)
    program = benchmark.build()
    result = analyze_program(program, **benchmark.analyzer_options)
    print(f"== {name} ==")
    print(f"   inferred bound : {result.bound}   (degree {result.degree}, "
          f"{result.time_seconds:.1f}s)")
    print(f"   paper bound    : {benchmark.paper_bound}")
    plan = benchmark.simulation
    state = dict(plan.fixed_state)
    state[plan.swept_variable] = plan.sweep_values[1]
    stats = estimate_expected_cost(program, state, runs=150, seed=0,
                                   max_steps=plan.max_steps)
    bound_value = float(result.bound.evaluate(state))
    print(f"   at {state}: measured {stats.mean:.1f}  <=  bound {bound_value:.1f}")
    problems = check_certificate(result.certificate, samples=15)
    print(f"   certificate    : {'OK' if not problems else problems[:2]}")
    print()


def show_degree_retry() -> None:
    """A quadratic program analysed with auto-degree: degree 1 fails, 2 works."""
    benchmark = get_benchmark("rdbub")
    result = analyze_program(benchmark.build(), max_degree=1, auto_degree=True,
                             degree_limit=2)
    print("== automatic degree selection (rdbub) ==")
    print(f"   requested degree 1, bound found at degree {result.degree}: {result.bound}")
    print()


def main() -> None:
    for name in ("rdbub", "pol06", "recursive"):
        show(name)
    show_degree_retry()


if __name__ == "__main__":
    main()
