"""Quickstart: analyze, simulate and certify a small probabilistic program.

Run with::

    python examples/quickstart.py

This walks through the library's three entry points on the paper's opening
example (the biased random walk of Sec. 3.1):

1. build the program (builder DSL or concrete syntax),
2. infer a symbolic bound on its expected running time,
3. compare the bound against Monte-Carlo measurements and the exact
   expected-cost transformer, and re-check the derivation certificate.
"""

from repro import analyze_program, check_certificate, estimate_expected_cost, expected_cost_ert
from repro.lang import builder as B
from repro.lang.parser import parse_program


def build_with_dsl():
    """while (x > 0) { x = x - 1 (+)3/4 x = x + 1; tick(1) }"""
    return B.program(B.proc("main", ["x"],
        B.while_("x > 0",
            B.prob("3/4", B.assign("x", "x - 1"), B.assign("x", "x + 1")),
            B.tick(1))))


def build_with_concrete_syntax():
    """The same program written in the textual front-end syntax."""
    return parse_program("""
        proc main(x) {
            while (x > 0) {
                prob(3/4) { x = x - 1; } else { x = x + 1; }
                tick(1);
            }
        }
    """)


def main() -> None:
    program = build_with_dsl()
    # The parser front end builds an equivalent program:
    parsed = build_with_concrete_syntax()
    assert sorted(parsed.variables()) == sorted(program.variables())

    # --- 1. static analysis -------------------------------------------------
    result = analyze_program(program)
    print("inferred expected-cost bound :", result.bound)          # 2*|[0, x]|
    print("analysis time                :", f"{result.time_seconds:.3f}s")
    print("LP size                      :",
          f"{result.lp_variables} variables, {result.lp_constraints} constraints")

    # --- 2. compare against measurements ------------------------------------
    for x in (10, 50, 200):
        stats = estimate_expected_cost(program, {"x": x}, runs=2000, seed=0)
        bound_value = float(result.bound.evaluate({"x": x}))
        print(f"x = {x:4d}: measured mean = {stats.mean:8.2f}   "
              f"bound = {bound_value:8.2f}   "
              f"gap = {100 * (bound_value - stats.mean) / stats.mean:5.2f}%")

    # --- 3. exact cross-check and certificate -------------------------------
    exact = expected_cost_ert(program, {"x": 4}, fuel=60)
    print("exact ert value at x=4       :", float(exact), "(bound:",
          float(result.bound.evaluate({"x": 4})), ")")
    problems = check_certificate(result.certificate)
    print("certificate check            :", "OK" if not problems else problems)


if __name__ == "__main__":
    main()
