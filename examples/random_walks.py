"""Random-walk gallery: the walk-shaped benchmarks of the paper side by side.

For each program the script prints the inferred symbolic bound, the paper's
reported bound, and a small sweep comparing the bound with measured expected
costs -- a textual version of the Appendix F candlestick figures.

Run with::

    python examples/random_walks.py
"""

from repro import analyze_program
from repro.bench.figures import sweep_series
from repro.bench.registry import get_benchmark

WALKS = ("rdwalk", "sprdwalk", "prdwalk", "2drwalk", "race", "bin")


def main() -> None:
    for name in WALKS:
        benchmark = get_benchmark(name)
        result = analyze_program(benchmark.build(), **benchmark.analyzer_options)
        print(f"== {name} ==")
        print(f"   {benchmark.description}")
        print(f"   inferred bound : {result.bound}")
        print(f"   paper bound    : {benchmark.paper_bound}")
        series = sweep_series(benchmark, runs=150)
        print(f"   {series.swept_variable:>10s} |   measured mean |  [q1, q3]        |  bound")
        for point in series.points:
            q1, q3 = point.measured.first_quartile, point.measured.third_quartile
            print(f"   {point.swept_value:10d} | {point.measured.mean:15.1f} | "
                  f"[{q1:7.1f}, {q3:7.1f}] | {point.bound_value:10.1f}")
        print(f"   bound dominates measurements: {series.bound_dominates()}")
        print()


if __name__ == "__main__":
    main()
