"""The paper's motivating example (Fig. 1): the stock trader.

A stock price `s` follows a biased random walk above a floor `smin`.  After
every price move the trader buys between 0 and 10 shares (uniformly), paying
the current price per share; the global counter ``cost`` accumulates the total
spending.  The paper's headline claims (Sec. 1) are:

* the expected number of price moves is bounded by ``2 * max(0, s - smin)``;
* the expected total spending is bounded by a quadratic polynomial,
  ``5|[smin,s]|^2 + 10|[smin,s]| |[0,smin]| + 5|[smin,s]|``.

This example reproduces both bounds and validates them against simulation.

Run with::

    python examples/trader_stock.py
"""

from repro import analyze_program, estimate_expected_cost
from repro.lang import builder as B
from repro.lang.distributions import Uniform


def trader_program():
    """The trader with its spending modelled by the global `cost` counter."""
    return B.program(
        B.proc("main", ["smin", "s"],
            B.assume("smin >= 0"),
            B.while_("s > smin",
                B.prob("1/4", B.assign("s", "s + 1"), B.assign("s", "s - 1")),
                B.call("trade"))),
        B.proc("trade", [],
            B.sample("nShares", Uniform(0, 10)),
            B.while_("nShares > 0",
                B.assign("nShares", "nShares - 1"),
                B.assign("cost", "cost + s"))))


def iteration_count_program():
    """The same walk with one tick per price move (expected #iterations)."""
    return B.program(B.proc("main", ["smin", "s"],
        B.assume("smin >= 0"),
        B.while_("s > smin",
            B.prob("1/4", B.assign("s", "s + 1"), B.assign("s", "s - 1")),
            B.tick(1))))


def main() -> None:
    # --- expected number of loop iterations ----------------------------------
    iteration_result = analyze_program(iteration_count_program())
    print("bound on E[#iterations]   :", iteration_result.bound)
    print("  paper                   : 2*max(0, s - smin)")

    # --- expected total spending ---------------------------------------------
    spending_result = analyze_program(
        trader_program(), max_degree=2, auto_degree=False, resource_counter="cost")
    print("bound on E[total cost]    :", spending_result.bound)
    print("  paper                   : 5*|[smin,s]|^2 + 10*|[smin,s]|*|[0,smin]| + 5*|[smin,s]|")
    print("  analysis time           :", f"{spending_result.time_seconds:.1f}s")

    # --- validate against simulation (the paper's Figure 8, centre) -----------
    program = trader_program()
    print("\n   s   smin |   measured E[cost] |     inferred bound")
    for smin, s in ((100, 120), (100, 160), (100, 200), (50, 150)):
        # The simulated cost is the final value of the `cost` counter, which
        # the interpreter tracks as an ordinary variable; easiest is to model
        # it with the analyzer's resource-counter view for the bound and read
        # the variable from simulation runs.
        stats = estimate_expected_cost(
            analyze_and_convert(program), {"s": s, "smin": smin}, runs=300, seed=1)
        bound_value = float(spending_result.bound.evaluate({"s": s, "smin": smin}))
        print(f"{s:5d} {smin:6d} | {stats.mean:18.1f} | {bound_value:18.1f}")


def analyze_and_convert(program):
    """Convert the cost-counter program into an equivalent tick-based one."""
    from repro.lang.transform import counter_as_resource
    return counter_as_resource(program, "cost")


if __name__ == "__main__":
    main()
