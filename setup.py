"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that the package can be installed in editable mode on environments whose
``setuptools`` predates PEP 660 editable-wheel support (no ``wheel`` package
available offline), via ``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup(
    extras_require={
        # Optional native LP backend: enables the warm-started persistent
        # HiGHS solver session (``repro.core.lpsession.HighsSession``,
        # selected via ``--solver highs`` or resolved by ``auto``).  Without
        # it the always-available SciPy ``linprog`` path answers every
        # solve, byte-identically.
        "highs": ["highspy>=1.7"],
    },
)
