"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that the package can be installed in editable mode on environments whose
``setuptools`` predates PEP 660 editable-wheel support (no ``wheel`` package
available offline), via ``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup()
