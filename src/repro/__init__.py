"""repro -- expected-cost resource analysis for probabilistic programs.

A from-scratch Python reproduction of

    Van Chan Ngo, Quentin Carbonneaux, Jan Hoffmann.
    "Bounded Expectations: Resource Analysis for Probabilistic Programs."
    PLDI 2018 (the Absynth analyzer).

The public API, in the order a new user usually needs it:

* build or parse a program: :mod:`repro.lang`
  (:func:`repro.lang.parse_program`, the builder DSL in
  :mod:`repro.lang.builder`),
* analyze it: :func:`repro.analyze_program` /
  :class:`repro.ExpectedCostAnalyzer` return an :class:`repro.AnalysisResult`
  carrying an :class:`repro.ExpectedBound` and a checkable certificate,
* simulate it: :func:`repro.estimate_expected_cost` samples the program to
  compare measurements against the bound (the paper's evaluation protocol),
* reproduce the paper: :mod:`repro.bench` contains the 39-program benchmark
  suite and the harnesses regenerating Table 1 and the figures.

Quick start::

    from repro.lang import builder as B
    from repro import analyze_program, estimate_expected_cost

    prog = B.program(B.proc("main", ["x"],
        B.while_("x > 0",
            B.prob("3/4", B.assign("x", "x - 1"), B.assign("x", "x + 1")),
            B.tick(1))))

    result = analyze_program(prog)
    print(result.bound)                       # 2*|[0, x]|
    print(estimate_expected_cost(prog, {"x": 50}).mean)   # ~100
"""

from repro.core.analyzer import (
    AnalysisResult,
    AnalyzerConfig,
    ExpectedCostAnalyzer,
    analyze_program,
)
from repro.core.bounds import ExpectedBound
from repro.core.certificates import Certificate, check_certificate
from repro.lang.ast import Program, Procedure
from repro.lang.parser import parse_program
from repro.semantics.ert import expected_cost_ert
from repro.semantics.interp import run_program
from repro.semantics.mdp import expected_cost_mdp
from repro.semantics.sampler import estimate_expected_cost, sweep_expected_cost

__version__ = "1.0.0"

__all__ = [
    "AnalysisResult",
    "AnalyzerConfig",
    "ExpectedCostAnalyzer",
    "analyze_program",
    "ExpectedBound",
    "Certificate",
    "check_certificate",
    "Program",
    "Procedure",
    "parse_program",
    "expected_cost_ert",
    "expected_cost_mdp",
    "run_program",
    "estimate_expected_cost",
    "sweep_expected_cost",
    "__version__",
]
