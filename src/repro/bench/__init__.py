"""Evaluation harness: the 39-program benchmark suite, Table 1 and the figures.

Layout:

* :mod:`repro.bench.programs` -- every benchmark of the paper's Table 1
  written in the builder DSL, with the bound the paper reports and the
  simulation plan used for the error column;
* :mod:`repro.bench.table1` -- runs the analyzer + the Monte-Carlo sampler to
  regenerate Table 1;
* :mod:`repro.bench.figures` -- regenerates the data series behind Figure 8
  and the Appendix F candlestick plots;
* :mod:`repro.bench.reporting` -- plain-text / CSV rendering of the results.

Everything is callable programmatically and from the command line::

    python -m repro.bench.table1 --group linear --quick
    python -m repro.bench.figures --figure 8
"""

from repro.bench.registry import (
    BenchmarkProgram,
    SimulationPlan,
    all_benchmarks,
    benchmark_names,
    get_benchmark,
    linear_benchmarks,
    polynomial_benchmarks,
)

__all__ = [
    "BenchmarkProgram",
    "SimulationPlan",
    "all_benchmarks",
    "benchmark_names",
    "get_benchmark",
    "linear_benchmarks",
    "polynomial_benchmarks",
]
