"""Regenerate the data behind Figure 8 and the Appendix F candlestick plots.

The paper's figures compare, for each benchmark, the statically inferred
bound (a line/surface in the input) against the sampled expected number of
ticks (mean + candlesticks showing min, quartiles and max).  This module
produces exactly those data series as plain Python objects / CSV text, so
they can be inspected in tests, dumped to disk, or plotted with any tool.

* :func:`figure8_histogram` -- Figure 8 (left): the sampled tick distribution
  of ``rdwalk`` for ``n = 100`` with the measured mean and the inferred bound.
* :func:`figure8_trader_surface` -- Figure 8 (centre): ``trader``'s bound and
  measured means over a grid of ``(s, smin)`` inputs.
* :func:`sweep_series` -- Figure 8 (right) and every Appendix F figure
  (Figures 10-48): bound versus measured candlesticks over an input sweep.
* :func:`appendix_f_series` -- the sweep series for every benchmark in the
  registry.

All entry points take an ``engine`` argument (``scalar`` / ``vec`` /
``auto``, see :mod:`repro.semantics.sampler`): the scalar interpreter is the
oracle, the vectorised batch executor makes paper-scale run counts (10k+
per sweep point) feasible.  Sampling always executes the *simulation*
variant of each benchmark (``build_for_simulation``), whose tick count
measures the same resource the analysed bound talks about; per-point seeds
are spawned from one ``SeedSequence`` so sweep points get independent,
collision-free streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.registry import BenchmarkProgram, all_benchmarks, get_benchmark
from repro.bench.reporting import rows_to_csv
from repro.core.analyzer import analyze_program
from repro.core.bounds import ExpectedBound
from repro.semantics.sampler import (
    SampleStatistics,
    estimate_expected_cost,
    histogram_of_costs,
    spawn_seeds,
)


@dataclass
class SweepPoint:
    """One x-position of a candlestick plot."""

    state: Dict[str, int]
    swept_value: int
    measured: SampleStatistics
    bound_value: float

    def gap_percent(self) -> float:
        if self.measured.mean == 0:
            return 0.0
        return (self.bound_value - self.measured.mean) / self.measured.mean * 100.0


@dataclass
class SweepSeries:
    """The full data series of one Appendix F figure."""

    benchmark: str
    bound: Optional[ExpectedBound]
    swept_variable: str
    points: List[SweepPoint] = field(default_factory=list)

    def bound_dominates(self, slack: float = 0.05) -> bool:
        """Whether the bound is above every measured mean (with relative slack)."""
        return all(point.bound_value + slack * max(1.0, abs(point.measured.mean))
                   >= point.measured.mean for point in self.points)

    def unfinished_runs(self) -> int:
        """Total number of sampled runs that hit the step budget."""
        return sum(point.measured.unfinished_runs for point in self.points)

    def to_csv(self) -> str:
        headers = (self.swept_variable, "measured_mean", "measured_min", "q1", "q3",
                   "measured_max", "bound", "unfinished_runs")
        rows = [(p.swept_value, p.measured.mean, p.measured.minimum,
                 p.measured.first_quartile, p.measured.third_quartile,
                 p.measured.maximum, p.bound_value,
                 p.measured.unfinished_runs) for p in self.points]
        return rows_to_csv(headers, rows)


def sweep_series(benchmark: BenchmarkProgram, runs: Optional[int] = None,
                 values: Optional[Sequence[int]] = None, seed: int = 0,
                 engine: str = "scalar") -> SweepSeries:
    """Compute one candlestick series (bound vs. sampled cost over a sweep)."""
    program = benchmark.build()
    result = analyze_program(program, **benchmark.analyzer_options)
    simulated = benchmark.build_for_simulation()
    plan = benchmark.simulation
    series = SweepSeries(benchmark=benchmark.name,
                         bound=result.bound if result.success else None,
                         swept_variable=plan.swept_variable if plan else "")
    if plan is None:
        return series
    sweep_values = tuple(values) if values is not None else plan.sweep_values
    seeds = spawn_seeds(seed, len(sweep_values))
    for value, run_seed in zip(sweep_values, seeds):
        state = dict(plan.fixed_state)
        state[plan.swept_variable] = int(value)
        stats = estimate_expected_cost(
            simulated, state, runs=runs if runs is not None else plan.runs,
            seed=run_seed, max_steps=plan.max_steps, engine=engine)
        bound_value = float(result.bound.evaluate(state)) if result.success else float("nan")
        series.points.append(SweepPoint(state, int(value), stats, bound_value))
    return series


def appendix_f_series(names: Optional[Sequence[str]] = None,
                      runs: Optional[int] = None, seed: int = 0,
                      engine: str = "scalar") -> List[SweepSeries]:
    """The candlestick series of every benchmark (Appendix F, Figures 10-48)."""
    benchmarks = [get_benchmark(name) for name in names] if names else all_benchmarks()
    return [sweep_series(benchmark, runs=runs, seed=seed, engine=engine)
            for benchmark in benchmarks]


# ---------------------------------------------------------------------------
# Figure 8
# ---------------------------------------------------------------------------

@dataclass
class HistogramFigure:
    """Figure 8 (left): tick histogram of rdwalk with mean and bound markers."""

    benchmark: str
    state: Dict[str, int]
    counts: np.ndarray
    edges: np.ndarray
    measured_mean: float
    bound_value: float
    runs: int = 0
    unfinished_runs: int = 0


def figure8_histogram(runs: int = 10_000, n: int = 100, seed: int = 0,
                      engine: str = "scalar",
                      benchmark: str = "rdwalk",
                      state: Optional[Dict[str, int]] = None) -> HistogramFigure:
    """The rdwalk histogram of Figure 8 (left).

    The histogram samples the benchmark's *simulation* variant
    (``build_for_simulation``) -- for resource-counter benchmarks the
    analysis variant counts no ticks at all, so sampling it would measure
    the wrong program.
    """
    bench = get_benchmark(benchmark)
    program = bench.build()
    result = analyze_program(program, **bench.analyzer_options)
    simulated = bench.build_for_simulation()
    if state is None:
        state = {"x": 0, "n": n}
    histogram = histogram_of_costs(simulated, state, runs=runs, seed=seed,
                                   engine=engine)
    bound_value = float(result.bound.evaluate(state)) if result.success else float("nan")
    return HistogramFigure(benchmark=bench.name, state=dict(state),
                           counts=histogram.counts, edges=histogram.edges,
                           measured_mean=histogram.mean,
                           bound_value=bound_value,
                           runs=histogram.runs,
                           unfinished_runs=histogram.unfinished_runs)


@dataclass
class SurfacePoint:
    s: int
    smin: int
    measured_mean: float
    bound_value: float


def figure8_trader_surface(s_values: Sequence[int] = (120, 160, 200, 240),
                           smin_values: Sequence[int] = (50, 100, 150),
                           runs: int = 200, seed: int = 0,
                           engine: str = "scalar") -> List[SurfacePoint]:
    """Figure 8 (centre): trader bound vs. measurements over an (s, smin) grid."""
    benchmark = get_benchmark("trader")
    program = benchmark.build()
    result = analyze_program(program, **benchmark.analyzer_options)
    simulated = benchmark.build_for_simulation()
    grid = [(int(s), int(smin)) for smin in smin_values for s in s_values
            if s > smin]
    seeds = spawn_seeds(seed, len(grid))
    points: List[SurfacePoint] = []
    for (s, smin), run_seed in zip(grid, seeds):
        state = {"s": s, "smin": smin}
        stats = estimate_expected_cost(simulated, state, runs=runs,
                                       seed=run_seed, engine=engine)
        bound_value = float(result.bound.evaluate(state)) if result.success \
            else float("nan")
        points.append(SurfacePoint(s, smin, stats.mean, bound_value))
    return points


def figure8_pol04_series(runs: int = 200, seed: int = 0,
                         values: Sequence[int] = (20, 40, 60, 100),
                         engine: str = "scalar") -> SweepSeries:
    """Figure 8 (right): pol04 candlesticks."""
    return sweep_series(get_benchmark("pol04"), runs=runs, values=values,
                        seed=seed, engine=engine)


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="Regenerate the paper's figures (data series)")
    parser.add_argument("--figure", choices=("8", "appendix"), default="8")
    parser.add_argument("--names", nargs="*", default=None)
    parser.add_argument("--runs", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--engine", choices=("scalar", "vec", "auto"),
                        default="auto",
                        help="sampler engine (default: auto = vectorised "
                             "batch executor with scalar fallback)")
    args = parser.parse_args(argv)

    if args.figure == "8":
        histogram = figure8_histogram(runs=args.runs or 2000, seed=args.seed,
                                      engine=args.engine)
        unfinished = (f", {histogram.unfinished_runs} unfinished"
                      if histogram.unfinished_runs else "")
        print(f"Figure 8 (left): rdwalk n=100; measured mean = "
              f"{histogram.measured_mean:.2f}, inferred bound = "
              f"{histogram.bound_value:.2f} "
              f"({histogram.runs} runs{unfinished})")
        surface = figure8_trader_surface(runs=args.runs or 100, seed=args.seed,
                                         engine=args.engine)
        print("Figure 8 (centre): trader")
        for point in surface:
            print(f"  s={point.s:4d} smin={point.smin:4d} measured={point.measured_mean:12.1f} "
                  f"bound={point.bound_value:12.1f}")
        series = figure8_pol04_series(runs=args.runs or 100, seed=args.seed,
                                      engine=args.engine)
        print("Figure 8 (right): pol04")
        print(series.to_csv())
    else:
        for series in appendix_f_series(args.names, runs=args.runs or 100,
                                        seed=args.seed, engine=args.engine):
            print(f"# {series.benchmark} (bound: {series.bound})")
            print(series.to_csv())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
