"""Perf smoke runner: a fast, scriptable performance trajectory.

Times the analyzer over the Table 1 benchmark suite (linear by default) and
records, per program, the wall time together with the entailment-engine
counters (Fourier-Motzkin query count, cache hit rate).  The result is
written as JSON (``BENCH_entailment.json`` by default) so future PRs can
compare against a committed baseline::

    python -m repro.bench.perfsmoke
    python -m repro.bench.perfsmoke --group polynomial --output /tmp/bench.json
    python benchmarks/perf_smoke.py            # same entry point

See PERFORMANCE.md for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Optional

from repro.bench.registry import (all_benchmarks, linear_benchmarks,
                                  polynomial_benchmarks)
from repro.bench.reporting import render_table
from repro.core.analyzer import analyze_program
from repro.logic.entailment import get_engine

#: Default output path (repo root when invoked from a checkout).
DEFAULT_OUTPUT = "BENCH_entailment.json"

_GROUPS = {
    "linear": linear_benchmarks,
    "polynomial": polynomial_benchmarks,
    "all": all_benchmarks,
}


def run_suite(group: str = "linear",
              limit: Optional[int] = None) -> Dict[str, object]:
    """Analyze every benchmark of ``group``; return the report dict."""
    engine = get_engine()
    benchmarks = _GROUPS[group]()
    if limit is not None:
        benchmarks = benchmarks[:max(0, limit)]
    programs: List[Dict[str, object]] = []
    suite_before = engine.stats.snapshot()
    evictions_before = engine.evictions
    suite_start = time.perf_counter()
    for bench in benchmarks:
        program = bench.build()
        before = engine.stats.snapshot()
        start = time.perf_counter()
        result = analyze_program(program, **bench.analyzer_options)
        wall = time.perf_counter() - start
        delta = engine.stats.delta(before)
        answered = delta["memo_hits"] + delta["fast_hits"]
        programs.append({
            "name": bench.name,
            "wall_seconds": round(wall, 4),
            "success": result.success,
            "degree": result.degree,
            "bound": result.bound.pretty() if result.bound else None,
            "fm_queries": delta["queries"],
            "fm_eliminations": delta["eliminations"],
            "cache_memo_hits": delta["memo_hits"],
            "cache_fast_hits": delta["fast_hits"],
            "cache_hit_rate": round(answered / delta["queries"], 4)
                              if delta["queries"] else None,
        })
    total_wall = time.perf_counter() - suite_start
    # Report the delta over this suite only, so the JSON is comparable to
    # the committed baseline even from a warm or multi-suite process.
    suite_stats = engine.stats.delta(suite_before)
    answered = suite_stats["memo_hits"] + suite_stats["fast_hits"]
    suite_stats["hit_rate"] = (round(answered / suite_stats["queries"], 4)
                               if suite_stats["queries"] else 0.0)
    return {
        "suite": f"table1-{group}",
        "generated_by": "python -m repro.bench.perfsmoke",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "total_wall_seconds": round(total_wall, 3),
        "programs": programs,
        "entailment_cache": suite_stats,
        "cache_evictions": engine.evictions - evictions_before,
    }


def _summary_table(report: Dict[str, object]) -> str:
    rows = [(p["name"],
             f"{p['wall_seconds']:.3f}",
             p["fm_queries"],
             p["fm_eliminations"],
             "-" if p["cache_hit_rate"] is None else f"{p['cache_hit_rate']:.2f}",
             "ok" if p["success"] else "FAIL")
            for p in report["programs"]]
    return render_table(
        ["program", "time(s)", "fm-queries", "eliminations", "hit-rate", "status"],
        rows, title=f"perf smoke: {report['suite']}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perfsmoke",
        description="Time the Table 1 suite and dump entailment-cache stats.")
    parser.add_argument("--group", choices=sorted(_GROUPS), default="linear")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"JSON output path (default: {DEFAULT_OUTPUT})")
    parser.add_argument("--limit", type=int, default=None,
                        help="only run the first N programs (CI smoke)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary table")
    args = parser.parse_args(argv)

    report = run_suite(args.group, args.limit)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    if not args.quiet:
        print(_summary_table(report))
        cache = report["entailment_cache"]
        print(f"\ntotal: {report['total_wall_seconds']:.2f}s over "
              f"{len(report['programs'])} programs; cache hit rate "
              f"{cache['hit_rate']:.1%} ({cache['queries']} queries, "
              f"{cache['eliminations']} eliminations)")
        print(f"wrote {args.output}")
    failures = [p["name"] for p in report["programs"] if not p["success"]]
    if failures:
        print(f"FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
