"""Perf smoke runner: a fast, scriptable performance trajectory.

Times the analyzer over the Table 1 benchmark suite (linear by default) and
records, per program, the wall time together with the entailment-engine
counters (Fourier-Motzkin query count, cache hit rate).  The result is
written as JSON (``BENCH_entailment.json`` by default) so future PRs can
compare against a committed baseline::

    python -m repro.bench.perfsmoke
    python -m repro.bench.perfsmoke --group polynomial --output /tmp/bench.json
    python -m repro.bench.perfsmoke --programs 'C4B_*' rdwalk
    python -m repro.bench.perfsmoke --workers 4          # + parallel pass
    python -m repro.bench.perfsmoke --group all --escalation   # degree reuse
    python -m repro.bench.perfsmoke --escalation --solver highs  # LP warm-start
    python -m repro.bench.perfsmoke --sampler          # sampler throughput
    python -m repro.bench.perfsmoke --domain polyhedra   # other backend
    python -m repro.bench.perfsmoke --compare-domains    # fm vs polyhedra
    python -m repro.bench.perfsmoke --prefilter-compare  # interval tier gate
    python -m repro.bench.perfsmoke --chaos            # fault-recovery gate
    python -m repro.bench.perfsmoke --serve            # gateway load bench
    python -m repro.bench.perfsmoke --lint             # diagnostics sweep
    python -m repro.bench.perfsmoke --check BENCH_entailment.json
    python benchmarks/perf_smoke.py            # same entry point

The sequential pass always runs (its per-program times are what ``--check``
compares against the committed baseline).  With ``--workers N > 1`` the
suite is then re-run through the :mod:`repro.service` scheduler and the
parallel wall clock is recorded as ``suite_wall_parallel`` next to the
sequential ``total_wall_seconds``, giving the speedup in one file.

``--check <baseline.json>`` exits non-zero when any program regressed by
more than 25% wall time (and more than an absolute noise floor) against
the baseline, which makes the runner usable as a CI gate.

``--sampler`` adds a sampler-throughput section: the rdwalk n=100 cost
histogram (Figure 8 left, paper-scale run count) is sampled through both
the scalar closure interpreter and the vectorised batch executor
(:mod:`repro.semantics.vexec`); the pass asserts both engines agree within
sampling error and fails when the vectorised speedup drops below
``--sampler-min-speedup`` (default 5x).

``--chaos`` adds a fault-recovery section: the suite is run fault-free
through the service scheduler into a temporary result store, then re-run
with deterministic fault injection active (worker crashes at p=0.2 on
first attempts, store records corrupted at p=0.5 on read).  The pass is
the acceptance gate for the supervised scheduler: it fails unless the
chaotic batch loses zero jobs, reproduces the fault-free bounds
byte-for-byte, and records every recovery in ``JobResult.fault_events``.
The recovery overhead lands in the report's ``chaos`` section.

``--serve`` adds a gateway load bench: an in-process analysis gateway
(:mod:`repro.service.gateway`) is booted on an ephemeral port and driven
by concurrent client connections through cold, hot (cache-served) and
duplicate-storm phases.  Requests/sec, p50/p99 latency, coalesce hits and
the LRU hit rate land in the report's ``serve`` section; the pass fails
unless every request got exactly one response, the storm cost exactly one
underlying analysis and every storm client saw a byte-identical result.
With ``--check``, hot-tier throughput is additionally gated against the
baseline's.

``--prefilter-compare`` adds an interval pre-filter section: the suite is
re-timed cold twice -- interval tier (:mod:`repro.logic.intervals`) on and
off -- recording per-tier hit counts, the interval-tier hit rate and the
wall delta under ``prefilter_compare``, asserting bound identity between
the legs.  The pass fails when the tier decides less than
``PREFILTER_MIN_HIT_RATE`` of the queries that reach it (the would-be
exact-backend queries).

``--lint`` adds a static-diagnostics sweep: every selected benchmark is
linted through :func:`repro.lang.analysis.lint_program` exactly the way
the analyzer's pre-flight gate does it (main parameters plus the declared
resource counter seed the definite-initialization pass).  The sweep wall
and its ratio against the sequential analysis wall land in the report's
``lint`` section; the pass fails outright on any error-severity
diagnostic, and with ``--check`` the overhead ratio is additionally
capped at ``LINT_MAX_OVERHEAD`` (the observe-only pre-flight must stay
effectively free).

See PERFORMANCE.md for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.bench.registry import select_benchmarks
from repro.bench.reporting import render_table
from repro.core.analyzer import analyze_program
from repro.core.lpsession import (force_cold_solves, resolve_solver_backend,
                                  solver_choices)
from repro.logic.entailment import (active_prefilter, available_domains,
                                    get_engine, resolve_domain)

#: Default output path (repo root when invoked from a checkout).
DEFAULT_OUTPUT = "BENCH_entailment.json"

#: Regression gate: flag programs that got this much slower than baseline...
REGRESSION_THRESHOLD = 0.25
#: ...but only when the absolute slowdown also clears this noise floor.
REGRESSION_FLOOR_SECONDS = 0.05

#: Sampler throughput gate: the vectorised executor must beat the scalar
#: closure interpreter by at least this factor on the Figure 8 histogram
#: workload (rdwalk, n=100).  Measured ~20x on the CI container; 5x keeps
#: the gate meaningful without flaking on slow runners.
SAMPLER_MIN_SPEEDUP = 5.0

#: LP warm-starting gate: on the native ``highs`` backend the escalation
#: pass's warm solve walls must beat the forced-cold reference solves by at
#: least this factor.  Applied automatically only when the resolved solver
#: is ``highs`` -- the SciPy fallback has no warm path, so its numbers are
#: recorded without a floor.
ESCALATION_MIN_SOLVE_SPEEDUP = 1.3
#: The Figure 8 histogram run count (paper scale).
SAMPLER_RUNS = 10_000

#: Interval pre-filter gate: with ``--prefilter-compare``, the interval
#: tier (:mod:`repro.logic.intervals`) must decide at least this fraction
#: of the queries that fall through the memo and syntactic tiers -- i.e.
#: of the queries that would otherwise hit the exact backend.  Measured
#: well above this on the Table 1 suite; the floor keeps the tier honest
#: without flaking on suite composition changes.
PREFILTER_MIN_HIT_RATE = 0.5

#: Pre-flight lint gate: with ``--check``, the full static-diagnostics
#: sweep over the suite must cost less than this fraction of the cold
#: sequential analysis wall.  The analyzer's observe-only pre-flight runs
#: these passes on every gated analysis, so they must stay ~free.
LINT_MAX_OVERHEAD = 0.05

_GROUPS = ("all", "linear", "polynomial")

#: Chaos-pass fault rates (the acceptance gate's parameters): worker
#: crashes on first attempts, store records corrupted on read.
CHAOS_CRASH_PROBABILITY = 0.2
CHAOS_CORRUPT_PROBABILITY = 0.5

#: Serve-pass load shape: concurrent client connections driving the
#: gateway, repeat rounds of the suite for the hot-tier phase, and the
#: width of the duplicate storm (the coalescing acceptance gate).
SERVE_CLIENTS = 8
SERVE_HOT_ROUNDS = 3
SERVE_STORM_CLIENTS = 32


def _select(group: str, programs: Optional[Sequence[str]],
            limit: Optional[int]):
    benchmarks = select_benchmarks(programs if programs else [f"@{group}"])
    if limit is not None:
        benchmarks = benchmarks[:max(0, limit)]
    return benchmarks


def run_suite(group: str = "linear",
              limit: Optional[int] = None,
              programs: Optional[Sequence[str]] = None,
              workers: int = 1,
              escalation: bool = False,
              sampler: bool = False,
              sampler_runs: int = SAMPLER_RUNS,
              domain: Optional[str] = None,
              solver: Optional[str] = None,
              compare_domains: bool = False,
              prefilter_compare: bool = False,
              chaos: bool = False,
              serve: bool = False,
              lint: bool = False) -> Dict[str, object]:
    """Analyze every selected benchmark; return the report dict.

    The sequential pass produces the per-program numbers; with
    ``workers > 1`` an additional parallel pass through the service
    scheduler measures ``suite_wall_parallel``.  With ``escalation=True``
    every degree->=2 benchmark is additionally run in degree-escalation
    mode (start at degree 1, retry at the target degree) twice: once
    through the incremental pipeline and once rebuilding each attempt from
    scratch, which quantifies the reuse win and asserts that escalated
    bounds are identical to the cold run's.

    ``domain`` selects the abstract-domain backend timed by the main pass
    (recorded as the report's ``domain`` field); ``solver`` the LP backend
    selector (the *resolved* backend lands in the report's ``solver``
    field); ``compare_domains=True`` re-times the suite's entailment load
    once per registered backend and records the per-domain walls and engine
    counters under ``domains``, asserting bound identity across backends
    along the way; ``prefilter_compare=True`` re-times the suite cold with
    the interval pre-filter tier on and off, recording per-tier hit
    counts, the interval-tier hit rate and the wall delta under
    ``prefilter`` (bounds asserted identical between the legs).
    """
    domain = resolve_domain(domain)
    resolved_solver = resolve_solver_backend(solver)
    engine = get_engine(domain)
    benchmarks = _select(group, programs, limit)
    rows: List[Dict[str, object]] = []
    suite_before = engine.stats.snapshot()
    evictions_before = engine.evictions
    suite_start = time.perf_counter()
    for bench in benchmarks:
        program = bench.build()
        before = engine.stats.snapshot()
        start = time.perf_counter()
        result = analyze_program(program, **{**bench.analyzer_options,
                                             "domain": domain,
                                             "solver": solver})
        wall = time.perf_counter() - start
        delta = engine.stats.delta(before)
        answered = (delta["memo_hits"] + delta["fast_hits"]
                    + delta["interval_hits"])
        stats = result.stats
        rows.append({
            "name": bench.name,
            "wall_seconds": round(wall, 4),
            "success": result.success,
            "degree": result.degree,
            "bound": result.bound.pretty() if result.bound else None,
            "attempted_degrees": list(stats.attempted_degrees) if stats else None,
            "prepare_seconds": round(stats.prepare_seconds, 4) if stats else None,
            "build_seconds": round(stats.build_seconds_total(), 4) if stats else None,
            "solve_seconds": round(stats.solve_seconds_total(), 4) if stats else None,
            "escalation_reuse_ratio": stats.escalation_reuse_ratio if stats else None,
            "fm_queries": delta["queries"],
            "fm_eliminations": delta["eliminations"],
            "cache_memo_hits": delta["memo_hits"],
            "cache_fast_hits": delta["fast_hits"],
            "cache_interval_hits": delta["interval_hits"],
            "cache_hit_rate": round(answered / delta["queries"], 4)
                              if delta["queries"] else None,
        })
    total_wall = time.perf_counter() - suite_start
    # Report the delta over this suite only, so the JSON is comparable to
    # the committed baseline even from a warm or multi-suite process.
    suite_stats = engine.stats.delta(suite_before)
    answered = (suite_stats["memo_hits"] + suite_stats["fast_hits"]
                + suite_stats["interval_hits"])
    suite_stats["hit_rate"] = (round(answered / suite_stats["queries"], 4)
                               if suite_stats["queries"] else 0.0)
    reached = suite_stats["interval_hits"] + suite_stats["misses"]
    suite_stats["interval_hit_rate"] = (
        round(suite_stats["interval_hits"] / reached, 4) if reached else 0.0)

    suite_wall_parallel: Optional[float] = None
    parallel_speedup: Optional[float] = None
    if workers > 1:
        suite_wall_parallel = _parallel_pass(benchmarks, rows, workers, domain)
        if suite_wall_parallel > 0:
            parallel_speedup = round(total_wall / suite_wall_parallel, 2)

    escalation_summary: Optional[Dict[str, object]] = None
    if escalation:
        escalation_summary = _escalation_pass(benchmarks, rows, domain,
                                              solver=solver)

    sampler_summary: Optional[Dict[str, object]] = None
    if sampler:
        sampler_summary = _sampler_pass(runs=sampler_runs)

    domain_summary: Optional[Dict[str, object]] = None
    if compare_domains:
        domain_summary = _domain_comparison_pass(benchmarks)

    prefilter_summary: Optional[Dict[str, object]] = None
    if prefilter_compare:
        prefilter_summary = _prefilter_comparison_pass(benchmarks, domain)

    chaos_summary: Optional[Dict[str, object]] = None
    if chaos:
        chaos_summary = _chaos_pass(benchmarks,
                                    workers=max(2, workers),
                                    domain=domain)

    serve_summary: Optional[Dict[str, object]] = None
    if serve:
        serve_summary = _serve_pass(benchmarks,
                                    workers=max(2, workers),
                                    domain=domain)

    lint_summary: Optional[Dict[str, object]] = None
    if lint:
        lint_summary = _lint_pass(benchmarks, total_wall)

    return {
        "suite": f"table1-{group}" if not programs \
            else f"table1-custom({','.join(programs)})",
        "generated_by": "python -m repro.bench.perfsmoke",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "domain": domain,
        "solver": resolved_solver,
        "prefilter": active_prefilter(),
        "workers": workers,
        "total_wall_seconds": round(total_wall, 3),
        "suite_wall_parallel": suite_wall_parallel,
        "parallel_speedup": parallel_speedup,
        "escalation": escalation_summary,
        "sampler": sampler_summary,
        "domains": domain_summary,
        "prefilter_compare": prefilter_summary,
        "chaos": chaos_summary,
        "serve": serve_summary,
        "lint": lint_summary,
        "programs": rows,
        "entailment_cache": suite_stats,
        "cache_evictions": engine.evictions - evictions_before,
    }


def _parallel_pass(benchmarks, rows: List[Dict[str, object]],
                   workers: int, domain: str) -> float:
    """Re-run the suite through the scheduler; annotate rows, return wall."""
    from repro.service.jobs import job_from_benchmark
    from repro.service.scheduler import run_jobs

    jobs = [job_from_benchmark(bench, domain=domain) for bench in benchmarks]
    start = time.perf_counter()
    results = run_jobs(jobs, workers=workers)
    wall = round(time.perf_counter() - start, 3)
    for row, result in zip(rows, results):
        row["parallel_wall_seconds"] = result.wall_seconds
        if result.bound_pretty != row["bound"]:
            # Parallel analysis is deterministic; surface any divergence
            # loudly instead of silently publishing mismatched numbers.
            raise AssertionError(
                f"parallel bound mismatch for {row['name']}: "
                f"{result.bound_pretty!r} != {row['bound']!r}")
    return wall


def _escalation_pass(benchmarks, rows: List[Dict[str, object]],
                     domain: str,
                     solver: Optional[str] = None) -> Dict[str, object]:
    """Measure incremental vs rebuild degree escalation per benchmark.

    For every benchmark whose target degree is >= 2 the program is analyzed
    in escalation mode (``max_degree=1`` with auto-retry up to the target):

    * *incremental* -- one analysis; the retry extends the degree-1
      derivation/LP in place (the pipeline of ``repro.core.pipeline``) and
      the persistent LP session (``repro.core.lpsession``) warm-starts
      every solve from the previous stage's simplex basis;
    * *rebuild* -- what the analyzer did before the incremental pipeline:
      a full fresh analysis per attempted degree (degree 1, then the
      target degree from scratch), run under
      :func:`~repro.core.lpsession.force_cold_solves` so every LP goes
      through the from-scratch ``linprog`` reference path.

    The wall split separates build from solve: ``solve_wall_warm`` is the
    incremental run's LP time (session-warm where the backend supports it)
    and ``solve_wall_cold`` the rebuild runs' forced-cold LP time --
    ``solve_speedup`` is the LP warm-starting win the
    ``--escalation-min-solve-speedup`` gate enforces on the ``highs``
    backend.  Session counters (``warm_solves``/``cold_solves``/
    ``basis_reuses``/``solver_fallbacks``) come from the incremental run's
    :class:`~repro.core.pipeline.PipelineStats`.

    Programs that already succeed at degree 1 are skipped (nothing
    escalates).  For the rest the escalated bound is asserted identical to
    the sequential pass's cold bound -- the identity guarantee of the
    incremental pipeline *and* of the warm LP session -- and the
    per-program walls, speedup and ``escalation_reuse_ratio`` are recorded
    on the row.
    """
    summary = {"programs": 0, "wall_incremental": 0.0, "wall_rebuild": 0.0,
               "speedup": None, "mean_reuse_ratio": None,
               "identity_checked": 0,
               "solver": resolve_solver_backend(solver),
               "solve_wall_warm": 0.0, "solve_wall_cold": 0.0,
               "solve_speedup": None,
               "warm_solves": 0, "cold_solves": 0, "basis_reuses": 0,
               "solver_fallbacks": 0}
    reuse_ratios: List[float] = []
    for bench, row in zip(benchmarks, rows):
        options = {**bench.analyzer_options, "domain": domain,
                   "solver": solver}
        target = int(options.get("max_degree", 1))
        if target < 2:
            continue
        program = bench.build()
        escalating = {**options, "max_degree": 1, "auto_degree": True,
                      "degree_limit": target}
        start = time.perf_counter()
        incremental = analyze_program(program, **escalating)
        wall_incremental = time.perf_counter() - start
        if incremental.degree < target:
            continue  # degree 1 already succeeds: no escalation to measure
        start = time.perf_counter()
        with force_cold_solves():
            cold_low = analyze_program(program, **{**options, "max_degree": 1,
                                                   "auto_degree": False})
            cold = analyze_program(program, **{**options,
                                               "max_degree": target,
                                               "auto_degree": False})
        wall_rebuild = time.perf_counter() - start
        incremental_bound = (incremental.bound.pretty()
                             if incremental.bound else None)
        if incremental_bound != row["bound"]:
            # The escalated system is byte-identical to the cold one by
            # construction; any divergence is a bug worth failing loudly.
            raise AssertionError(
                f"escalated bound mismatch for {bench.name}: "
                f"{incremental_bound!r} != {row['bound']!r}")
        summary["identity_checked"] += 1
        stats = incremental.stats
        reuse = stats.escalation_reuse_ratio if stats else None
        if reuse is not None:
            reuse_ratios.append(reuse)
        # The incremental run solves the degree-1 attempt too, so the cold
        # side sums both rebuild analyses' LP walls for a like-for-like
        # comparison.
        solve_warm = stats.solve_seconds_total() if stats else 0.0
        solve_cold = sum(result.stats.solve_seconds_total()
                         for result in (cold_low, cold) if result.stats)
        row["escalation"] = {
            "wall_incremental": round(wall_incremental, 4),
            "wall_rebuild": round(wall_rebuild, 4),
            "speedup": (round(wall_rebuild / wall_incremental, 2)
                        if wall_incremental > 0 else None),
            "reuse_ratio": reuse,
            "solver": stats.solver_backend if stats else None,
            "solve_wall_warm": round(solve_warm, 4),
            "solve_wall_cold": round(solve_cold, 4),
            "solve_speedup": (round(solve_cold / solve_warm, 2)
                              if solve_warm > 0 else None),
            "warm_solves": stats.warm_solves if stats else 0,
            "cold_solves": stats.cold_solves if stats else 0,
            "basis_reuses": stats.basis_reuses if stats else 0,
            "solver_fallbacks": stats.solver_fallbacks if stats else 0,
        }
        summary["programs"] += 1
        summary["wall_incremental"] += wall_incremental
        summary["wall_rebuild"] += wall_rebuild
        summary["solve_wall_warm"] += solve_warm
        summary["solve_wall_cold"] += solve_cold
        if stats:
            summary["warm_solves"] += stats.warm_solves
            summary["cold_solves"] += stats.cold_solves
            summary["basis_reuses"] += stats.basis_reuses
            summary["solver_fallbacks"] += stats.solver_fallbacks
    summary["wall_incremental"] = round(summary["wall_incremental"], 3)
    summary["wall_rebuild"] = round(summary["wall_rebuild"], 3)
    summary["solve_wall_warm"] = round(summary["solve_wall_warm"], 3)
    summary["solve_wall_cold"] = round(summary["solve_wall_cold"], 3)
    if summary["wall_incremental"] > 0:
        summary["speedup"] = round(
            summary["wall_rebuild"] / summary["wall_incremental"], 2)
    if summary["solve_wall_warm"] > 0:
        summary["solve_speedup"] = round(
            summary["solve_wall_cold"] / summary["solve_wall_warm"], 2)
    if reuse_ratios:
        summary["mean_reuse_ratio"] = round(
            sum(reuse_ratios) / len(reuse_ratios), 4)
    return summary


def _domain_comparison_pass(benchmarks) -> Dict[str, object]:
    """Time the suite's entailment load once per abstract-domain backend.

    For every registered domain the selected benchmarks are analyzed with
    that backend active; per-domain wall clock and entailment-engine
    counters (queries, eliminations, cache hit rate) land in the report so
    the committed baseline documents how the backends compare.  Bounds are
    asserted identical across domains -- both backends are exact, so any
    divergence is a soundness bug worth failing the run for.

    Every leg starts *cold*: a fresh engine and cleared rewrite memos, so
    the comparison measures each backend doing the full query load rather
    than coasting on answers the main pass (or the other leg) cached.
    """
    from repro.core.rewrite import clear_rewrite_caches
    from repro.logic.entailment import reset_engine

    comparison: Dict[str, object] = {}
    reference_bounds: Dict[str, Optional[str]] = {}
    for domain in available_domains():
        engine = reset_engine(domain)
        clear_rewrite_caches()
        before = engine.stats.snapshot()
        program_rows: List[Dict[str, object]] = []
        start = time.perf_counter()
        for bench in benchmarks:
            program = bench.build()
            job_before = engine.stats.snapshot()
            job_start = time.perf_counter()
            result = analyze_program(program, **{**bench.analyzer_options,
                                                 "domain": domain})
            wall = time.perf_counter() - job_start
            delta = engine.stats.delta(job_before)
            bound = result.bound.pretty() if result.bound else None
            if bench.name in reference_bounds \
                    and reference_bounds[bench.name] != bound:
                raise AssertionError(
                    f"domain bound mismatch for {bench.name}: {domain} found "
                    f"{bound!r} vs {reference_bounds[bench.name]!r}")
            reference_bounds.setdefault(bench.name, bound)
            program_rows.append({
                "name": bench.name,
                "wall_seconds": round(wall, 4),
                "queries": delta["queries"],
                "eliminations": delta["eliminations"],
            })
        total_wall = time.perf_counter() - start
        suite_delta = engine.stats.delta(before)
        answered = suite_delta["memo_hits"] + suite_delta["fast_hits"]
        comparison[domain] = {
            "total_wall_seconds": round(total_wall, 3),
            "queries": suite_delta["queries"],
            "eliminations": suite_delta["eliminations"],
            "hit_rate": (round(answered / suite_delta["queries"], 4)
                         if suite_delta["queries"] else None),
            "programs": program_rows,
        }
    return comparison


def _prefilter_comparison_pass(benchmarks,
                               domain: Optional[str] = None
                               ) -> Dict[str, object]:
    """Time the suite cold with the interval pre-filter on and off.

    Two legs over the selected benchmarks -- interval tier enabled, then
    disabled -- each from a fresh engine and cleared rewrite memos, so the
    walls measure the tier doing (or not doing) the full query load.  The
    per-leg tier hit counts, the interval-tier hit rate (the fraction of
    memo/syntactic misses the tier decided -- the number the
    ``PREFILTER_MIN_HIT_RATE`` gate enforces) and the wall delta land in
    the report.  Bounds are asserted identical between the legs: the tier
    only answers when it provably matches the exact backend, so any
    divergence is a soundness bug worth failing the run for.
    """
    from repro.core.rewrite import clear_rewrite_caches
    from repro.logic.entailment import reset_engine

    domain = resolve_domain(domain)
    legs: Dict[str, Dict[str, object]] = {}
    reference_bounds: Dict[str, Optional[str]] = {}
    for enabled in (True, False):
        label = "on" if enabled else "off"
        engine = reset_engine(domain)
        clear_rewrite_caches()
        before = engine.stats.snapshot()
        start = time.perf_counter()
        for bench in benchmarks:
            program = bench.build()
            result = analyze_program(program, **{**bench.analyzer_options,
                                                 "domain": domain,
                                                 "prefilter": enabled})
            bound = result.bound.pretty() if result.bound else None
            if bench.name in reference_bounds \
                    and reference_bounds[bench.name] != bound:
                raise AssertionError(
                    f"prefilter bound mismatch for {bench.name}: "
                    f"prefilter={label} found {bound!r} vs "
                    f"{reference_bounds[bench.name]!r}")
            reference_bounds.setdefault(bench.name, bound)
        total_wall = time.perf_counter() - start
        delta = engine.stats.delta(before)
        answered = (delta["memo_hits"] + delta["fast_hits"]
                    + delta["interval_hits"])
        reached = delta["interval_hits"] + delta["misses"]
        legs[label] = {
            "total_wall_seconds": round(total_wall, 3),
            "queries": delta["queries"],
            "eliminations": delta["eliminations"],
            "tiers": {
                "memo": delta["memo_hits"],
                "syntactic": delta["fast_hits"],
                "interval": delta["interval_hits"],
                "exact": delta["misses"],
            },
            "hit_rate": (round(answered / delta["queries"], 4)
                         if delta["queries"] else None),
            "interval_hit_rate": (round(delta["interval_hits"] / reached, 4)
                                  if reached else None),
        }
    wall_on = legs["on"]["total_wall_seconds"]
    wall_off = legs["off"]["total_wall_seconds"]
    return {
        "domain": domain,
        "on": legs["on"],
        "off": legs["off"],
        "wall_delta_seconds": round(wall_off - wall_on, 3),
        "speedup": round(wall_off / wall_on, 3) if wall_on else None,
    }


def _chaos_pass(benchmarks, workers: int = 2,
                domain: Optional[str] = None,
                crash_probability: float = CHAOS_CRASH_PROBABILITY,
                corrupt_probability: float = CHAOS_CORRUPT_PROBABILITY,
                seed: int = 0) -> Dict[str, object]:
    """The fault-recovery acceptance gate, measured.

    Phase 1 runs the suite fault-free through the scheduler into a
    temporary store.  Phase 2 re-runs the same batch with the deterministic
    fault registry active: every store read corrupts its record at
    ``corrupt_probability`` (exercising quarantine + recompute) and every
    recomputed job's *first* pool attempt crashes its worker at
    ``crash_probability`` (exercising pool rebuild, claim-file attribution
    and supervised retry).  Crashes are pinned to first attempts
    (``match=":1"``) so retries are always clean: the recovered outcome is
    then independent of which jobs happened to share the pool when it
    broke, and the byte-identity assertion below is deterministic.

    Raises ``AssertionError`` unless the chaotic batch loses zero jobs,
    reproduces the fault-free statuses and bounds exactly, and records
    every crash recovery in ``fault_events``.
    """
    import multiprocessing
    import shutil
    import tempfile

    from repro.service import faults
    from repro.service.faults import FaultSpec
    from repro.service.jobs import job_from_benchmark
    from repro.service.retry import RetryPolicy
    from repro.service.scheduler import SchedulerConfig, run_batch
    from repro.service.store import ResultStore

    if "fork" not in multiprocessing.get_all_start_methods():
        # Under spawn the workers re-import the faults module and would not
        # see a registry configured programmatically in this process.
        return {"skipped": "needs the fork start method (pool workers "
                           "inherit the fault registry at fork time)"}

    jobs = [job_from_benchmark(bench, domain=domain) for bench in benchmarks]
    root = tempfile.mkdtemp(prefix="repro-chaos-")
    try:
        store = ResultStore(root)
        start = time.perf_counter()
        baseline = run_batch(jobs, SchedulerConfig(workers=workers,
                                                   store=store))
        wall_fault_free = round(time.perf_counter() - start, 3)

        faults.configure([
            FaultSpec("worker-crash", probability=crash_probability,
                      match=":1"),
            FaultSpec("store-corrupt", probability=corrupt_probability),
        ], seed=seed)
        try:
            start = time.perf_counter()
            # The per-batch retry budget is sized for isolated failures;
            # a batch where a fifth of all first attempts die needs room
            # for every one of them (plus co-in-flight collateral).
            chaotic = run_batch(jobs, SchedulerConfig(
                workers=workers, store=store,
                retry=RetryPolicy(budget=None)))
            wall_chaos = round(time.perf_counter() - start, 3)
        finally:
            faults.disable()

        mismatched = [
            job.name for job, fault_free, recovered
            in zip(jobs, baseline.results, chaotic.results)
            if (fault_free.status, fault_free.bound)
            != (recovered.status, recovered.bound)]
        if mismatched:
            raise AssertionError(
                "chaos gate FAILED: recovered results diverge from the "
                f"fault-free run for {', '.join(mismatched)}")
        crashed = [result for result in chaotic.results
                   if result.attempts > 1]
        unrecorded = [result.name for result in crashed
                      if not any(event["kind"] == "worker-lost"
                                 for event in result.fault_events)]
        if unrecorded:
            raise AssertionError(
                "chaos gate FAILED: recovered without provenance: "
                f"{', '.join(unrecorded)}")
        worker_crashes = sum(
            1 for result in chaotic.results
            for event in result.fault_events
            if event["kind"] == "worker-lost")

        return {
            "jobs": len(jobs),
            "workers": workers,
            "seed": seed,
            "crash_probability": crash_probability,
            "corrupt_probability": corrupt_probability,
            "wall_fault_free": wall_fault_free,
            "wall_chaos": wall_chaos,
            "overhead_ratio": (round(wall_chaos / wall_fault_free, 2)
                               if wall_fault_free > 0 else None),
            "worker_crashes": worker_crashes,
            "jobs_recovered": len(crashed),
            "retries": chaotic.retries,
            "corrupt_records_quarantined": store.stats.quarantined,
            "cache_hits_surviving": chaotic.cache_hits,
            "bounds_identical": True,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _percentile(samples: List[float], quantile: float) -> float:
    """Nearest-rank percentile of a non-empty latency sample, in ms."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(quantile * (len(ordered) - 1))))
    return round(ordered[index] * 1000.0, 2)


def _serve_pass(benchmarks, workers: int = 2,
                domain: Optional[str] = None,
                clients: int = SERVE_CLIENTS,
                hot_rounds: int = SERVE_HOT_ROUNDS,
                storm_clients: int = SERVE_STORM_CLIENTS
                ) -> Dict[str, object]:
    """The gateway load bench and coalescing acceptance gate, measured.

    Boots an in-process :class:`~repro.service.gateway.AnalysisGateway`
    (ephemeral port, temporary store, supervised worker pool) and drives
    it with ``clients`` concurrent connections in three phases:

    * **cold** -- every benchmark once, fanned over the clients: all
      analyses, measures end-to-end computed latency;
    * **hot** -- the whole suite ``hot_rounds`` more times: everything
      answered from the memory/store tiers, measures served throughput
      (requests/sec) and p50/p99 latency -- the number the ``--check``
      gate compares against the committed baseline;
    * **storm** -- ``storm_clients`` connections fire the *same
      previously-unseen* request simultaneously: the coalescing gate.

    Raises ``AssertionError`` unless every request got exactly one
    response with the id it sent (no lost, no duplicated responses), every
    analysis succeeded, the storm cost exactly **one** underlying analysis,
    and every storm client received a byte-identical result record.
    """
    import multiprocessing
    import queue as queue_module
    import shutil
    import tempfile
    import threading

    from repro.bench.registry import get_benchmark
    from repro.service.gateway import GatewayClient, GatewayThread
    from repro.service.jobs import job_from_benchmark
    from repro.service.store import ResultStore

    if "fork" not in multiprocessing.get_all_start_methods():
        # Workers inherit warm engines at fork time; without fork the pass
        # would measure a different animal entirely.
        workers = 0

    jobs = [job_from_benchmark(bench, domain=domain) for bench in benchmarks]
    root = tempfile.mkdtemp(prefix="repro-serve-")
    gateway_thread = GatewayThread(store=ResultStore(root), workers=workers,
                                   queue_limit=max(64, len(jobs) * 2),
                                   default_options={"domain": domain}
                                   if domain else None)
    try:
        host, port = gateway_thread.start()
        gateway = gateway_thread.gateway

        def drive(requests: List[Dict[str, object]]
                  ) -> Dict[int, Dict[str, object]]:
            """Fan requests over ``clients`` connections; responses by id."""
            work: "queue_module.Queue" = queue_module.Queue()
            for request in requests:
                work.put(request)
            responses: Dict[int, Dict[str, object]] = {}
            latencies: List[float] = []
            lock = threading.Lock()
            failures: List[BaseException] = []

            def client_loop() -> None:
                try:
                    with GatewayClient(host, port) as client:
                        while True:
                            try:
                                request = work.get_nowait()
                            except queue_module.Empty:
                                return
                            start = time.perf_counter()
                            response = client.request(request)
                            wall = time.perf_counter() - start
                            with lock:
                                latencies.append(wall)
                                key = response.get("id")
                                if key in responses:
                                    raise AssertionError(
                                        f"duplicated response id {key}")
                                responses[key] = response
                except BaseException as exc:  # noqa: BLE001 -- reraised below
                    failures.append(exc)

            threads = [threading.Thread(target=client_loop)
                       for _ in range(clients)]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - start
            if failures:
                raise failures[0]
            sent = {request["id"] for request in requests}
            if set(responses) != sent:
                missing = sorted(sent - set(responses))[:5]
                raise AssertionError(
                    f"serve gate FAILED: lost {len(sent) - len(responses)} "
                    f"responses (e.g. ids {missing})")
            return {"responses": responses, "latencies": latencies,
                    "wall": wall}

        def phase_report(outcome, label: str) -> Dict[str, object]:
            statuses = [response.get("status")
                        for response in outcome["responses"].values()]
            bad = [status for status in statuses if status != "ok"]
            if bad:
                raise AssertionError(
                    f"serve gate FAILED: {len(bad)} non-ok responses in "
                    f"the {label} phase (e.g. {bad[:3]})")
            count = len(outcome["latencies"])
            return {
                "requests": count,
                "wall_seconds": round(outcome["wall"], 3),
                "requests_per_second": round(count / outcome["wall"], 1)
                                       if outcome["wall"] > 0 else None,
                "p50_ms": _percentile(outcome["latencies"], 0.50),
                "p99_ms": _percentile(outcome["latencies"], 0.99),
            }

        def job_request(job, request_id: int) -> Dict[str, object]:
            return {"op": "analyze", "id": request_id, "name": job.name,
                    "source": job.source, "options": job.options_dict}

        # Phase 1: cold -- every benchmark exactly once, all computed.
        next_id = iter(range(1, 1 + len(jobs) * (1 + hot_rounds)))
        cold = drive([job_request(job, next(next_id)) for job in jobs])
        cold_report = phase_report(cold, "cold")

        # Phase 2: hot -- the suite again, several rounds, cache-served.
        hot_requests = [job_request(job, next(next_id))
                        for _ in range(hot_rounds) for job in jobs]
        hot = drive(hot_requests)
        hot_report = phase_report(hot, "hot")

        # Phase 3: the duplicate storm.  A previously-unseen job (rdwalk
        # under a degree limit no other phase uses, so its content hash is
        # fresh) fired by every storm client at once through a barrier.
        storm_bench = get_benchmark("rdwalk")
        storm_options: Dict[str, object] = {
            **storm_bench.analyzer_options, "degree_limit": 4}
        if domain:
            storm_options["domain"] = domain
        storm_payload = {"op": "analyze", "name": "storm",
                         "source": job_from_benchmark(storm_bench).source,
                         "options": storm_options}
        analyses_before = gateway.stats.analyses
        coalesced_before = gateway.stats.coalesced
        storm_responses: List[Optional[Dict[str, object]]] = \
            [None] * storm_clients
        storm_failures: List[BaseException] = []
        barrier = threading.Barrier(storm_clients)

        def storm_client(index: int) -> None:
            try:
                with GatewayClient(host, port) as client:
                    barrier.wait()
                    storm_responses[index] = client.request(
                        {**storm_payload, "id": index})
            except BaseException as exc:  # noqa: BLE001 -- reraised below
                storm_failures.append(exc)

        storm_threads = [threading.Thread(target=storm_client, args=(index,))
                         for index in range(storm_clients)]
        storm_start = time.perf_counter()
        for thread in storm_threads:
            thread.start()
        for thread in storm_threads:
            thread.join()
        storm_wall = time.perf_counter() - storm_start
        if storm_failures:
            raise storm_failures[0]
        if any(response is None for response in storm_responses):
            raise AssertionError("serve gate FAILED: storm client got no "
                                 "response")
        storm_analyses = gateway.stats.analyses - analyses_before
        if storm_analyses != 1:
            raise AssertionError(
                f"serve gate FAILED: duplicate storm of {storm_clients} "
                f"requests cost {storm_analyses} analyses, expected "
                f"exactly 1")
        distinct = {json.dumps(response["result"], sort_keys=True)
                    for response in storm_responses}
        if len(distinct) != 1:
            raise AssertionError(
                f"serve gate FAILED: storm produced {len(distinct)} "
                f"distinct result records, expected byte-identical")

        hot_cache = gateway.cache.as_dict() if gateway.cache else None
        return {
            "jobs": len(jobs),
            "clients": clients,
            "workers": workers,
            "cold": cold_report,
            "hot": hot_report,
            "storm": {
                "clients": storm_clients,
                "analyses": storm_analyses,
                "coalesced": gateway.stats.coalesced - coalesced_before,
                "wall_seconds": round(storm_wall, 3),
                "byte_identical": True,
            },
            "coalesce_hits": gateway.stats.coalesced,
            "busy_rejections": gateway.stats.busy_rejections,
            "hot_cache": hot_cache,
            "gateway": gateway.stats.as_dict(),
        }
    finally:
        gateway_thread.stop()
        shutil.rmtree(root, ignore_errors=True)


def _lint_pass(benchmarks, total_wall: float) -> Dict[str, object]:
    """Time the static-diagnostics front-end over the suite; assert clean.

    Every benchmark's source is linted the way the analyzer's pre-flight
    gate lints it: the main procedure's parameters plus the declared
    resource counter seed the definite-initialization pass.  Parsing stays
    *outside* the clock -- the pre-flight reuses the analysis's own parsed
    program, so the marginal cost of always-on diagnostics is the flow
    walk alone, and that is the number the ``--check`` overhead gate caps
    at ``LINT_MAX_OVERHEAD`` of the sequential analysis wall.

    Raises ``AssertionError`` if any benchmark produces an error-severity
    diagnostic: the whole Table 1 suite is lint-clean by construction, so
    an error here means either a benchmark or a lint pass regressed.
    """
    from repro.lang.analysis import lint_program, max_severity
    from repro.lang.parser import parse_program

    prepared = []
    for bench in benchmarks:
        program = parse_program(bench.source_text())
        initial = set(program.main_procedure.params)
        counter = bench.analyzer_options.get("resource_counter")
        if counter:
            initial.add(str(counter))
        prepared.append((bench.name, program, initial))
    start = time.perf_counter()
    results = [(name, lint_program(program, initial_state=initial))
               for name, program, initial in prepared]
    wall = time.perf_counter() - start
    dirty = [name for name, diagnostics in results
             if max_severity(diagnostics) == "error"]
    if dirty:
        raise AssertionError("lint gate FAILED: error-severity diagnostics "
                             "on " + ", ".join(dirty))
    return {
        "programs": len(prepared),
        "wall_seconds": round(wall, 4),
        "diagnostics": sum(len(diags) for _, diags in results),
        "overhead_ratio": (round(wall / total_wall, 4)
                           if total_wall > 0 else None),
    }


def _sampler_pass(runs: int = SAMPLER_RUNS) -> Dict[str, object]:
    """Measure scalar vs vectorised sampler throughput on the Figure 8 workload.

    Runs the rdwalk n=100 cost histogram (the paper's Figure 8 left panel)
    at paper-scale run counts through both engines, asserts they agree
    within sampling error (the scalar interpreter is the oracle -- a
    disagreement is a correctness bug, not a perf regression) and records
    the throughputs plus their ratio.
    """
    from repro.bench.registry import get_benchmark
    from repro.semantics.sampler import sample_costs, summarise_costs

    benchmark = get_benchmark("rdwalk")
    program = benchmark.build_for_simulation()
    state = {"x": 0, "n": 100}

    start = time.perf_counter()
    scalar_costs, scalar_unfinished, _, _ = sample_costs(
        program, state, runs=runs, seed=0, engine="scalar")
    wall_scalar = time.perf_counter() - start
    start = time.perf_counter()
    vec_costs, vec_unfinished, _, _ = sample_costs(
        program, state, runs=runs, seed=0, engine="vec")
    wall_vec = time.perf_counter() - start

    scalar_stats = summarise_costs(scalar_costs, scalar_unfinished)
    vec_stats = summarise_costs(vec_costs, vec_unfinished)
    tolerance = 5.0 * (scalar_stats.standard_error() ** 2
                       + vec_stats.standard_error() ** 2) ** 0.5
    if abs(scalar_stats.mean - vec_stats.mean) > tolerance:
        # The engines sample the same distribution from different streams;
        # any disagreement beyond sampling error is a vectoriser bug.
        raise AssertionError(
            f"sampler engines disagree on rdwalk: scalar mean "
            f"{scalar_stats.mean:.3f} vs vec {vec_stats.mean:.3f} "
            f"(tolerance {tolerance:.3f})")

    return {
        "benchmark": "rdwalk",
        "state": state,
        "runs": runs,
        "wall_scalar": round(wall_scalar, 3),
        "wall_vec": round(wall_vec, 3),
        "runs_per_second_scalar": round(runs / wall_scalar, 1)
                                  if wall_scalar > 0 else None,
        "runs_per_second_vec": round(runs / wall_vec, 1)
                               if wall_vec > 0 else None,
        "speedup": round(wall_scalar / wall_vec, 2) if wall_vec > 0 else None,
        "mean_scalar": round(scalar_stats.mean, 3),
        "mean_vec": round(vec_stats.mean, 3),
        "unfinished_scalar": scalar_unfinished,
        "unfinished_vec": vec_unfinished,
    }


# ---------------------------------------------------------------------------
# Baseline comparison (--check)
# ---------------------------------------------------------------------------

def find_regressions(report: Dict[str, object], baseline: Dict[str, object],
                     threshold: float = REGRESSION_THRESHOLD,
                     floor_seconds: float = REGRESSION_FLOOR_SECONDS
                     ) -> List[str]:
    """Per-program wall-time regressions of ``report`` vs ``baseline``.

    A program regresses when it is both ``threshold`` (relative) slower and
    ``floor_seconds`` (absolute) slower than the baseline -- the floor keeps
    sub-50ms jitter on tiny programs from failing CI.  Programs missing
    from either side are skipped (they changed identity, not speed).
    """
    base_times = {row["name"]: row["wall_seconds"]
                  for row in baseline.get("programs", ())}
    problems = []
    for row in report["programs"]:
        base = base_times.get(row["name"])
        if base is None or base <= 0:
            continue
        fresh = row["wall_seconds"]
        if fresh > base * (1 + threshold) and fresh - base > floor_seconds:
            problems.append(
                f"{row['name']}: {fresh:.3f}s vs baseline {base:.3f}s "
                f"(+{(fresh / base - 1) * 100:.0f}%)")
    return problems


def _summary_table(report: Dict[str, object]) -> str:
    parallel = any("parallel_wall_seconds" in p for p in report["programs"])
    headers = ["program", "time(s)"] \
        + (["par(s)"] if parallel else []) \
        + ["fm-queries", "eliminations", "hit-rate", "status"]
    rows = []
    for p in report["programs"]:
        row = [p["name"], f"{p['wall_seconds']:.3f}"]
        if parallel:
            row.append(f"{p.get('parallel_wall_seconds', float('nan')):.3f}")
        row.extend([p["fm_queries"], p["fm_eliminations"],
                    "-" if p["cache_hit_rate"] is None
                    else f"{p['cache_hit_rate']:.2f}",
                    "ok" if p["success"] else "FAIL"])
        rows.append(tuple(row))
    domain = report.get("domain", "fm")
    return render_table(headers, rows,
                        title=f"perf smoke: {report['suite']} [{domain}]")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perfsmoke",
        description="Time the Table 1 suite and dump entailment-cache stats.")
    parser.add_argument("--group", choices=sorted(_GROUPS), default="linear")
    parser.add_argument("--programs", nargs="+", default=None,
                        help="only these benchmarks (names, globs like "
                             "'C4B_*', or @linear/@polynomial/@all); "
                             "overrides --group")
    parser.add_argument("--workers", type=int, default=1,
                        help="with N > 1, also run the suite through the "
                             "service scheduler on N processes and record "
                             "suite_wall_parallel")
    parser.add_argument("--escalation", action="store_true",
                        help="also measure degree-escalation reuse: run "
                             "every degree->=2 benchmark in escalating "
                             "mode, incremental vs rebuild-per-degree, "
                             "and assert bound identity with the cold run")
    parser.add_argument("--sampler", action="store_true",
                        help="also measure sampler throughput (scalar vs "
                             "vectorised engine on the rdwalk n=100 "
                             "histogram), assert the engines agree within "
                             "sampling error, and gate the speedup")
    parser.add_argument("--sampler-runs", type=int, default=SAMPLER_RUNS,
                        help="run count for the sampler throughput pass "
                             f"(default: {SAMPLER_RUNS})")
    parser.add_argument("--sampler-min-speedup", type=float,
                        default=SAMPLER_MIN_SPEEDUP,
                        help="fail when the vectorised engine's speedup "
                             "over the scalar interpreter drops below this "
                             f"factor (default: {SAMPLER_MIN_SPEEDUP})")
    parser.add_argument("--domain", choices=available_domains(), default=None,
                        help="abstract-domain backend timed by the main "
                             "pass (default: $REPRO_DOMAIN or fm)")
    parser.add_argument("--solver", choices=solver_choices(), default=None,
                        help="LP solver backend selector timed by the run "
                             "(default: $REPRO_SOLVER or auto); the "
                             "resolved backend lands in the report's "
                             "'solver' field")
    parser.add_argument("--escalation-min-solve-speedup", type=float,
                        default=None,
                        help="fail when the escalation pass's warm-vs-cold "
                             "LP solve-wall speedup drops below this factor "
                             "(default: "
                             f"{ESCALATION_MIN_SOLVE_SPEEDUP} when the "
                             "resolved solver is highs, record-only on "
                             "scipy)")
    parser.add_argument("--compare-domains", action="store_true",
                        help="also time the suite once per registered "
                             "backend (fm vs polyhedra), record per-domain "
                             "entailment counters and assert bound identity")
    parser.add_argument("--prefilter-compare", action="store_true",
                        help="also time the suite cold with the interval "
                             "pre-filter tier on and off, record per-tier "
                             "hit counts and the wall delta, assert bound "
                             "identity between the legs, and fail unless "
                             "the tier decides at least "
                             f"{PREFILTER_MIN_HIT_RATE:.0%} of the queries "
                             "that reach it")
    parser.add_argument("--prefilter-min-hit-rate", type=float,
                        default=PREFILTER_MIN_HIT_RATE,
                        help="interval-tier hit-rate floor for "
                             "--prefilter-compare (fraction of memo/"
                             "syntactic misses the tier must decide)")
    parser.add_argument("--chaos", action="store_true",
                        help="also run the fault-recovery gate: re-run the "
                             "suite with deterministic worker crashes "
                             f"(p={CHAOS_CRASH_PROBABILITY}) and corrupted "
                             f"store reads (p={CHAOS_CORRUPT_PROBABILITY}) "
                             "and fail unless recovery reproduces the "
                             "fault-free bounds byte-for-byte")
    parser.add_argument("--serve", action="store_true",
                        help="also run the gateway load bench: boot the "
                             "asyncio analysis gateway and drive it with "
                             f"{SERVE_CLIENTS} concurrent clients (cold, "
                             "hot and duplicate-storm phases), record "
                             "requests/sec, p50/p99 latency, coalesce "
                             "hits and LRU hit rate, and fail unless the "
                             "storm costs exactly one analysis with "
                             "byte-identical results")
    parser.add_argument("--lint", action="store_true",
                        help="also sweep the static-diagnostics front-end "
                             "over the suite (pre-flight configuration), "
                             "fail on any error-severity diagnostic, and "
                             "with --check cap the lint wall at "
                             f"{LINT_MAX_OVERHEAD:.0%} of the sequential "
                             "analysis wall")
    parser.add_argument("--check", default=None, metavar="BASELINE.json",
                        help="compare per-program wall times against this "
                             "baseline and exit non-zero on a "
                             f">{REGRESSION_THRESHOLD:.0%} regression")
    parser.add_argument("--threshold", type=float,
                        default=REGRESSION_THRESHOLD,
                        help="relative regression threshold for --check "
                             "(raise it when baseline and checker run on "
                             "different hardware)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"JSON output path (default: {DEFAULT_OUTPUT})")
    parser.add_argument("--limit", type=int, default=None,
                        help="only run the first N programs (CI smoke)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary table")
    args = parser.parse_args(argv)

    # Resolve selectors up front so a typo fails fast (and is not confused
    # with an internal error from the suite itself).
    try:
        _select(args.group, args.programs, args.limit)
    except KeyError as exc:
        print(f"unknown program selector: {exc.args[0]}", file=sys.stderr)
        return 2

    # Read the baseline BEFORE writing the report: with the default
    # --output both paths are BENCH_entailment.json, and reading after the
    # write would compare the fresh run against itself (and silently
    # clobber the committed baseline the gate was meant to enforce).
    baseline = None
    if args.check:
        try:
            with open(args.check, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {args.check!r}: {exc}",
                  file=sys.stderr)
            return 2

    report = run_suite(args.group, args.limit, programs=args.programs,
                       workers=args.workers, escalation=args.escalation,
                       sampler=args.sampler, sampler_runs=args.sampler_runs,
                       domain=args.domain, solver=args.solver,
                       compare_domains=args.compare_domains,
                       prefilter_compare=args.prefilter_compare,
                       chaos=args.chaos, serve=args.serve, lint=args.lint)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    if not args.quiet:
        print(_summary_table(report))
        cache = report["entailment_cache"]
        print(f"\ntotal: {report['total_wall_seconds']:.2f}s over "
              f"{len(report['programs'])} programs; cache hit rate "
              f"{cache['hit_rate']:.1%} ({cache['queries']} queries, "
              f"{cache['eliminations']} eliminations)")
        if report["suite_wall_parallel"] is not None:
            speedup = report["parallel_speedup"]
            print(f"parallel ({report['workers']} workers): "
                  f"{report['suite_wall_parallel']:.2f}s"
                  + (f" (speedup {speedup:.2f}x)" if speedup is not None
                     else ""))
        escalation = report.get("escalation")
        if escalation and escalation["programs"]:
            print(f"escalation ({escalation['programs']} programs): "
                  f"incremental {escalation['wall_incremental']:.2f}s vs "
                  f"rebuild {escalation['wall_rebuild']:.2f}s "
                  f"(speedup {escalation['speedup']:.2f}x, mean reuse "
                  f"{escalation['mean_reuse_ratio']:.1%}, "
                  f"{escalation['identity_checked']} bound identities checked)")
            solve_speedup = escalation.get("solve_speedup")
            print(f"LP warm-starting [{escalation['solver']}]: solve walls "
                  f"warm {escalation['solve_wall_warm']:.2f}s vs cold "
                  f"{escalation['solve_wall_cold']:.2f}s"
                  + (f" (speedup {solve_speedup:.2f}x)"
                     if solve_speedup is not None else "")
                  + f"; {escalation['warm_solves']} warm / "
                  f"{escalation['cold_solves']} cold solves, "
                  f"{escalation['basis_reuses']} basis reuses, "
                  f"{escalation['solver_fallbacks']} fallbacks")
        domain_report = report.get("domains")
        if domain_report:
            for name, summary in domain_report.items():
                print(f"domain {name}: {summary['total_wall_seconds']:.2f}s, "
                      f"{summary['queries']} queries, "
                      f"{summary['eliminations']} eliminations"
                      + (f", hit rate {summary['hit_rate']:.1%}"
                         if summary["hit_rate"] is not None else ""))
        prefilter_report = report.get("prefilter_compare")
        if prefilter_report:
            on = prefilter_report["on"]
            off = prefilter_report["off"]
            rate = on["interval_hit_rate"]
            print(f"prefilter [{prefilter_report['domain']}]: on "
                  f"{on['total_wall_seconds']:.2f}s vs off "
                  f"{off['total_wall_seconds']:.2f}s; interval tier "
                  f"decided {on['tiers']['interval']} of "
                  f"{on['tiers']['interval'] + on['tiers']['exact']} "
                  "tier-reaching queries"
                  + (f" (hit rate {rate:.1%})" if rate is not None else "")
                  + f", {off['eliminations'] - on['eliminations']} "
                  "eliminations avoided")
        chaos_report = report.get("chaos")
        if chaos_report:
            if "skipped" in chaos_report:
                print(f"chaos: skipped ({chaos_report['skipped']})")
            else:
                print(f"chaos ({chaos_report['jobs']} jobs, "
                      f"{chaos_report['workers']} workers): "
                      f"{chaos_report['worker_crashes']} worker crashes, "
                      f"{chaos_report['corrupt_records_quarantined']} "
                      f"corrupt records quarantined, bounds identical; "
                      f"fault-free {chaos_report['wall_fault_free']:.2f}s "
                      f"vs chaos {chaos_report['wall_chaos']:.2f}s "
                      f"(overhead {chaos_report['overhead_ratio']}x)")
        serve_report = report.get("serve")
        if serve_report:
            hot = serve_report["hot"]
            storm = serve_report["storm"]
            cache = serve_report["hot_cache"]
            print(f"serve ({serve_report['clients']} clients, "
                  f"{serve_report['workers']} workers): hot "
                  f"{hot['requests_per_second']:.0f} req/s, p50 "
                  f"{hot['p50_ms']:.1f}ms, p99 {hot['p99_ms']:.1f}ms; "
                  f"storm {storm['clients']} clients -> "
                  f"{storm['analyses']} analysis "
                  f"({storm['coalesced']} coalesced); LRU hit rate "
                  + (f"{cache['hit_rate']:.1%}" if cache else "n/a"))
        lint_report = report.get("lint")
        if lint_report:
            overhead = lint_report["overhead_ratio"]
            print(f"lint ({lint_report['programs']} programs): "
                  f"{lint_report['wall_seconds'] * 1000:.0f}ms, "
                  f"{lint_report['diagnostics']} diagnostics"
                  + (f" (overhead {overhead:.2%} of cold wall)"
                     if overhead is not None else ""))
        sampler_report = report.get("sampler")
        if sampler_report:
            print(f"sampler ({sampler_report['benchmark']} "
                  f"{sampler_report['runs']} runs): scalar "
                  f"{sampler_report['wall_scalar']:.2f}s vs vec "
                  f"{sampler_report['wall_vec']:.2f}s "
                  f"(speedup {sampler_report['speedup']:.1f}x, means "
                  f"{sampler_report['mean_scalar']:.1f}/"
                  f"{sampler_report['mean_vec']:.1f})")
        print(f"wrote {args.output}")

    failures = [p["name"] for p in report["programs"] if not p["success"]]
    if failures:
        print(f"FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1

    sampler_report = report.get("sampler")
    if sampler_report is not None:
        speedup = sampler_report["speedup"]
        if speedup is None or speedup < args.sampler_min_speedup:
            print(f"sampler throughput gate FAILED: vec speedup "
                  f"{speedup} < required {args.sampler_min_speedup}x",
                  file=sys.stderr)
            return 1

    prefilter_report = report.get("prefilter_compare")
    if prefilter_report is not None:
        rate = prefilter_report["on"]["interval_hit_rate"]
        if rate is None or rate < args.prefilter_min_hit_rate:
            print(f"interval pre-filter gate FAILED: tier hit rate "
                  f"{rate} < required {args.prefilter_min_hit_rate:.0%} "
                  "of tier-reaching queries", file=sys.stderr)
            return 1

    escalation_report = report.get("escalation")
    if escalation_report and escalation_report["programs"]:
        required = args.escalation_min_solve_speedup
        if required is None \
                and escalation_report.get("solver") == "highs":
            # The native backend must earn its keep; the SciPy fallback has
            # no warm path, so its split is recorded without a floor.
            required = ESCALATION_MIN_SOLVE_SPEEDUP
        if required is not None:
            solve_speedup = escalation_report.get("solve_speedup")
            if solve_speedup is None or solve_speedup < required:
                print(f"LP warm-starting gate FAILED: warm-vs-cold solve "
                      f"speedup {solve_speedup} < required {required}x "
                      f"on the {escalation_report.get('solver')} backend",
                      file=sys.stderr)
                return 1

    if baseline is not None:
        lint_report = report.get("lint")
        if lint_report:
            # The lint wall is gated against *this run's* cold analysis
            # wall, not the baseline's: the claim is "pre-flight is free
            # relative to analysis", which holds or fails on any hardware.
            ratio = lint_report.get("overhead_ratio")
            if ratio is not None and ratio > LINT_MAX_OVERHEAD:
                print(f"lint overhead gate FAILED: diagnostics sweep cost "
                      f"{ratio:.2%} of the sequential analysis wall "
                      f"(cap {LINT_MAX_OVERHEAD:.0%})", file=sys.stderr)
                return 1
        baseline_domain = baseline.get("domain", "fm")
        if report["domain"] != baseline_domain:
            # Cross-domain wall-time comparisons are meaningless: a slower
            # backend would fail CI as a spurious "regression" and a faster
            # one would mask a real one.  Regenerate the baseline under the
            # same --domain instead.
            print(f"cannot --check: report timed under domain "
                  f"{report['domain']!r} but baseline {args.check!r} was "
                  f"timed under {baseline_domain!r}", file=sys.stderr)
            return 2
        regressions = find_regressions(report, baseline,
                                       threshold=args.threshold)
        if regressions:
            print(f"\nperformance regressions vs {args.check}:",
                  file=sys.stderr)
            for line in regressions:
                print(f"  - {line}", file=sys.stderr)
            return 1
        base_escalation = baseline.get("escalation")
        if escalation_report and escalation_report["programs"] \
                and base_escalation and base_escalation.get("speedup"):
            baseline_solver = baseline.get("solver")
            if baseline_solver is not None \
                    and baseline_solver != report["solver"]:
                # Same reasoning as the domain guard: comparing warm-start
                # numbers across LP backends would gate apples on oranges.
                print(f"cannot --check escalation: report solved with "
                      f"{report['solver']!r} but baseline {args.check!r} "
                      f"with {baseline_solver!r}", file=sys.stderr)
                return 2
            fresh_speedup = escalation_report.get("speedup")
            base_speedup = base_escalation["speedup"]
            if fresh_speedup is not None \
                    and fresh_speedup < base_speedup / (1 + args.threshold):
                print(f"escalation speedup gate FAILED: incremental-vs-"
                      f"rebuild speedup {fresh_speedup}x vs baseline "
                      f"{base_speedup}x (allowed floor "
                      f"{base_speedup / (1 + args.threshold):.2f}x)",
                      file=sys.stderr)
                return 1
        serve_report = report.get("serve")
        base_serve = baseline.get("serve")
        if serve_report and base_serve:
            # The serving gate compares hot-tier throughput: cache-served
            # requests/sec is the steady-state number a regression in the
            # gateway, the LRU tier or the store read path would move.
            fresh_rps = serve_report["hot"]["requests_per_second"]
            base_rps = base_serve["hot"]["requests_per_second"]
            if base_rps and fresh_rps is not None \
                    and fresh_rps < base_rps / (1 + args.threshold):
                print(f"serving throughput gate FAILED: hot tier "
                      f"{fresh_rps:.0f} req/s vs baseline "
                      f"{base_rps:.0f} req/s "
                      f"(allowed floor {base_rps / (1 + args.threshold):.0f})",
                      file=sys.stderr)
                return 1
        if not args.quiet:
            print(f"no per-program regression vs {args.check} "
                  f"(threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
