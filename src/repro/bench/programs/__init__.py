"""The 39 benchmark programs of the paper's Table 1.

Programs whose source is printed in the paper (Figures 1, 2, 4, 5, 49, 50)
are transcribed verbatim; the remaining programs are reconstructions from
their names, provenance and reported bounds (``source == 'reconstructed'`` in
the registry).  Importing this package registers every program with
:mod:`repro.bench.registry`.
"""

from repro.bench.programs import linear, polynomial  # noqa: F401
