"""The 30 linear-bound benchmarks of Table 1.

Each ``_build_<name>`` function constructs the program with the builder DSL;
the module-level ``register`` calls attach the paper's reported bound, the
provenance and the simulation plan.  Programs marked ``source='paper'`` are
transcribed from listings in the paper; the others are reconstructions (see
``repro/bench/programs/__init__.py`` and DESIGN.md).
"""

from __future__ import annotations

from fractions import Fraction

from repro.bench.registry import BenchmarkProgram, SimulationPlan, register
from repro.lang import builder as B
from repro.lang.distributions import Bernoulli, Binomial, HyperGeometric, Uniform


# ---------------------------------------------------------------------------
# Random walks
# ---------------------------------------------------------------------------

def _build_rdwalk():
    """Fig. 4: biased random walk towards n (step +1 w.p. 3/4, -1 w.p. 1/4)."""
    return B.program(B.proc("main", ["x", "n"],
        B.while_("x < n",
            B.prob("3/4", B.assign("x", "x + 1"), B.assign("x", "x - 1")),
            B.tick(1))))


register(BenchmarkProgram(
    name="rdwalk", category="linear", factory=_build_rdwalk,
    paper_bound="2*|[x, n + 1]|", source="paper",
    description="1-D biased random walk towards n (paper Fig. 4).",
    paper_time_seconds=0.012, paper_error_percent="0.075",
    simulation=SimulationPlan("n", (50, 100, 200, 400, 800), {"x": 0}, runs=400)))


def _build_sprdwalk():
    """Random walk with Bernoulli steps: x advances by ber(1/2) each tick."""
    return B.program(B.proc("main", ["x", "n"],
        B.while_("x < n",
            B.incr_sample("x", Bernoulli(Fraction(1, 2))),
            B.tick(1))))


register(BenchmarkProgram(
    name="sprdwalk", category="linear", factory=_build_sprdwalk,
    paper_bound="2*|[x, n]|", source="reconstructed",
    description="Random walk with Bernoulli increments.",
    paper_time_seconds=0.017, paper_error_percent="0.032",
    simulation=SimulationPlan("n", (50, 100, 200, 400, 800), {"x": 0}, runs=400)))


def _build_prdwalk():
    """Fig. 49-style walk: uniform increments of different ranges chosen probabilistically."""
    return B.program(B.proc("main", ["x", "n"],
        B.while_("x < n",
            B.prob("3/4",
                   B.incr_sample("x", Uniform(0, 1)),
                   B.incr_sample("x", Uniform(0, 3))),
            B.tick(1))))


register(BenchmarkProgram(
    name="prdwalk", category="linear", factory=_build_prdwalk,
    paper_bound="1.14286*|[x, n + 4]|", source="paper",
    description="Probabilistic walk mixing unif(0,1) and unif(0,3) increments (Fig. 49 shape).",
    paper_time_seconds=0.052, paper_error_percent="0.128",
    simulation=SimulationPlan("n", (50, 100, 200, 400, 800), {"x": 0}, runs=400)))


def _build_2drwalk():
    """2-D random walk: each step moves one of two coordinates, biased forward."""
    return B.program(B.proc("main", ["x", "y", "n"],
        B.while_("x + y < n",
            B.prob("1/2",
                   B.prob("3/4", B.assign("x", "x + 1"), B.assign("x", "x - 1")),
                   B.prob("3/4", B.assign("y", "y + 1"), B.assign("y", "y - 1"))),
            B.tick(1))))


register(BenchmarkProgram(
    name="2drwalk", category="linear", factory=_build_2drwalk,
    paper_bound="2*|[d, n + 1]|", source="reconstructed",
    description="Biased 2-D random walk; progress measured by x + y.",
    paper_time_seconds=2.278, paper_error_percent="0.170",
    simulation=SimulationPlan("n", (50, 100, 200, 400), {"x": 0, "y": 0}, runs=400)))


def _build_ber():
    return B.program(B.proc("main", ["x", "n"],
        B.while_("x < n",
            B.prob("1/2", B.assign("x", "x + 1"), B.skip()),
            B.tick(1))))


register(BenchmarkProgram(
    name="ber", category="linear", factory=_build_ber,
    paper_bound="2*|[x, n]|", source="reconstructed",
    description="Geometric progress: x advances with probability 1/2 per tick.",
    paper_time_seconds=0.008, paper_error_percent="0.026",
    simulation=SimulationPlan("n", (50, 100, 200, 400, 800), {"x": 0}, runs=400)))


def _build_bin():
    return B.program(B.proc("main", ["n"],
        B.while_("n > 0",
            B.decr_sample("n", Binomial(10, Fraction(1, 2))),
            B.tick(1))))


register(BenchmarkProgram(
    name="bin", category="linear", factory=_build_bin,
    paper_bound="0.2*|[0, n + 9]|", source="reconstructed",
    description="Countdown by binomially distributed amounts.",
    paper_time_seconds=0.281, paper_error_percent="0.290",
    simulation=SimulationPlan("n", (50, 100, 200, 400, 800), {}, runs=400)))


def _build_hyper():
    return B.program(B.proc("main", ["x", "n"],
        B.while_("x < n",
            B.incr_sample("x", HyperGeometric(20, 4, 5)),
            B.tick(5))))


register(BenchmarkProgram(
    name="hyper", category="linear", factory=_build_hyper,
    paper_bound="5*|[x, n]|", source="reconstructed",
    description="Progress by hyper-geometric increments (mean 1), 5 ticks per draw.",
    paper_time_seconds=0.013, paper_error_percent="0.061",
    simulation=SimulationPlan("n", (50, 100, 200, 400), {"x": 0}, runs=300)))


def _build_linear01():
    return B.program(B.proc("main", ["x"],
        B.while_("x > 0",
            B.prob("1/3", B.assign("x", "x - 1"), B.assign("x", "x - 2")),
            B.tick(1))))


register(BenchmarkProgram(
    name="linear01", category="linear", factory=_build_linear01,
    paper_bound="0.6*|[0, x]|", source="reconstructed",
    description="Countdown by 1 or 2 with expectation 5/3 per tick.",
    paper_time_seconds=0.016, paper_error_percent="0.036",
    simulation=SimulationPlan("x", (50, 100, 200, 400, 800), {}, runs=400)))


# ---------------------------------------------------------------------------
# Programs from the probabilistic-programming literature
# ---------------------------------------------------------------------------

def _build_race():
    """Fig. 2: the tortoise (t) and hare (h) race."""
    return B.program(B.proc("main", ["h", "t"],
        B.while_("h <= t",
            B.assign("t", "t + 1"),
            B.prob("1/2", B.incr_sample("h", Uniform(0, 10)), B.skip()),
            B.tick(1))))


register(BenchmarkProgram(
    name="race", category="linear", factory=_build_race,
    paper_bound="0.666667*|[h, t + 9]|", source="paper",
    description="Tortoise-and-hare race from [Chakarov & Sankaranarayanan 2013] (paper Fig. 2).",
    paper_time_seconds=0.245, paper_error_percent="0.294",
    simulation=SimulationPlan("t", (50, 100, 200, 400), {"h": 0}, runs=400)))


def _build_bayesian():
    """Repeated rejection sampling: each datum needs a geometric number of trials."""
    return B.program(B.proc("main", ["n"],
        B.while_("n > 0",
            B.assign("n", "n - 1"),
            B.assign("accept", "0"),
            B.while_("accept == 0",
                B.prob("1/4", B.assign("accept", "1"), B.skip()),
                B.tick(1)),
            B.tick(1))))


register(BenchmarkProgram(
    name="bayesian", category="linear", factory=_build_bayesian,
    paper_bound="5*|[0, n]|", source="reconstructed",
    description="Bayesian network sampling: geometric rejection loop per observation.",
    paper_time_seconds=0.272, paper_error_percent="0",
    simulation=SimulationPlan("n", (50, 100, 200, 400), {}, runs=400)))


def _build_condand():
    return B.program(B.proc("main", ["n", "m"],
        B.while_("n > 0 && m > 0",
            B.prob("1/2", B.assign("n", "n - 1"), B.assign("m", "m - 1")),
            B.tick(1))))


register(BenchmarkProgram(
    name="condand", category="linear", factory=_build_condand,
    paper_bound="|[0, m]| + |[0, n]|", source="reconstructed",
    description="Conjunctive guard: terminates when either counter reaches zero.",
    paper_time_seconds=0.010, paper_error_percent="A.S",
    simulation=SimulationPlan("n", (50, 100, 200, 400), {"m": 300}, runs=400)))


def _build_cooling():
    """Cooling schedule: temperature decays by random amounts, then a settling phase."""
    return B.program(B.proc("main", ["t", "st", "mt"],
        B.while_("t > 0",
            B.decr_sample("t", Uniform(0, 4)),
            B.tick(1)),
        B.while_("st < mt",
            B.assign("st", "st + 1"),
            B.tick(1))))


register(BenchmarkProgram(
    name="cooling", category="linear", factory=_build_cooling,
    paper_bound="0.42*|[0, t + 5]| + |[st, mt]|", source="reconstructed",
    description="Simulated cooling: random temperature decay followed by settling steps.",
    paper_time_seconds=0.079, paper_error_percent="0.192",
    simulation=SimulationPlan("t", (50, 100, 200, 400), {"st": 22, "mt": 32}, runs=400)))


def _build_fcall():
    """Like ``ber`` but the loop body lives in a (non-recursive) procedure."""
    return B.program(
        B.proc("main", ["x", "n"],
            B.while_("x < n",
                B.call("step"),
                B.tick(1))),
        B.proc("step", [],
            B.prob("1/2", B.assign("x", "x + 1"), B.skip())))


register(BenchmarkProgram(
    name="fcall", category="linear", factory=_build_fcall,
    paper_bound="2*|[x, n]|", source="reconstructed",
    description="ber with the probabilistic step factored into a procedure call.",
    paper_time_seconds=0.008, paper_error_percent="0.025",
    simulation=SimulationPlan("n", (50, 100, 200, 400, 800), {"x": 0}, runs=400)))


def _build_filling():
    """Filling a container by randomly sized pours of two kinds."""
    return B.program(B.proc("main", ["vol"],
        B.while_("vol > 0",
            B.prob("1/3",
                   B.decr_sample("vol", Uniform(0, 2)),
                   B.decr_sample("vol", Uniform(0, 10))),
            B.tick(1))))


register(BenchmarkProgram(
    name="filling", category="linear", factory=_build_filling,
    paper_bound="0.037037*|[0, vol + 2]| + 0.333333*|[0, vol + 10]| + 0.296296*|[0, vol + 11]|",
    source="reconstructed",
    description="Tank filling with two pour sizes chosen probabilistically.",
    paper_time_seconds=0.615, paper_error_percent="0.713",
    simulation=SimulationPlan("vol", (50, 100, 200, 400), {}, runs=400)))


def _build_miner():
    """Appendix G: the trapped-miner example (expected escape time 15/2 per trip)."""
    trapped = B.seq(
        B.assign("flag", "1"),
        B.while_("flag > 0",
            B.prob("1/3",
                   B.seq(B.assign("flag", "0"), B.tick(3)),
                   B.prob("1/2",
                          B.seq(B.assign("flag", "1"), B.tick(5)),
                          B.seq(B.assign("flag", "1"), B.tick(7))))))
    return B.program(B.proc("main", ["n"],
        B.while_("n > 0",
            B.prob("1/2", trapped, B.skip()),
            B.assign("n", "n - 1"))))


register(BenchmarkProgram(
    name="miner", category="linear", factory=_build_miner,
    paper_bound="7.5*|[0, n]|", source="paper",
    description="Trapped-miner puzzle repeated n times (paper Appendix G, Fig. 50).",
    paper_time_seconds=0.077, paper_error_percent="0.071",
    simulation=SimulationPlan("n", (50, 100, 200, 400), {}, runs=400)))


def _build_prnes():
    """Fig. 5: interacting nested loops with non-deterministic inner exit."""
    return B.program(B.proc("main", ["n", "y"],
        B.while_("n < 0",
            B.prob("9/10", B.assign("n", "n + 1"), B.skip()),
            B.assign("y", "y + 1000"),
            B.while_(B.expr("y >= 100 && *"),
                B.prob("1/2", B.assign("y", "y - 100"), B.assign("y", "y - 90")),
                B.tick(5)),
            B.tick(9))))


register(BenchmarkProgram(
    name="prnes", category="linear", factory=_build_prnes,
    paper_bound="68.4795*|[0, -n]| + 0.052631*|[0, y]|", source="paper",
    description="Nested loops with non-deterministic inner exit (paper Fig. 5).",
    paper_time_seconds=0.057, paper_error_percent="0.122",
    simulation=SimulationPlan("n", (-50, -100, -200, -400), {"y": 300}, runs=300)))


def _build_prseq():
    """Fig. 5: sequential loops where the second depends on the first."""
    return B.program(B.proc("main", ["y", "z"],
        B.while_("z - y > 2",
            B.incr_sample("y", Binomial(3, Fraction(2, 3))),
            B.tick(3)),
        B.while_("y > 9",
            B.prob("2/3", B.assign("y", "y - 10"), B.skip()),
            B.tick(1))))


register(BenchmarkProgram(
    name="prseq", category="linear", factory=_build_prseq,
    paper_bound="1.65*|[y, x]| + 0.15*|[0, y]|", source="paper",
    description="Sequential loops; the first grows y, the second consumes it (paper Fig. 5).",
    paper_time_seconds=0.057, paper_error_percent="0.144",
    simulation=SimulationPlan("z", (100, 200, 400, 800), {"y": 0}, runs=400)))


def _build_prseq_bin():
    """prseq with the binomial increment replaced by an equivalent probabilistic branch."""
    return B.program(B.proc("main", ["y", "z"],
        B.while_("z - y > 2",
            B.prob("2/3", B.assign("y", "y + 3"), B.skip()),
            B.tick(3)),
        B.while_("y > 9",
            B.prob("2/3", B.assign("y", "y - 10"), B.skip()),
            B.tick(1))))


register(BenchmarkProgram(
    name="prseq_bin", category="linear", factory=_build_prseq_bin,
    paper_bound="1.65*|[y, x]| + 0.15*|[0, y]|", source="reconstructed",
    description="prseq variant using probabilistic branching instead of binomial sampling.",
    paper_time_seconds=0.082, paper_error_percent="0.150",
    simulation=SimulationPlan("z", (100, 200, 400, 800), {"y": 0}, runs=400)))


def _build_rdspeed():
    """Fig. 4: rdspeed -- phase 1 advances y to m, phase 2 advances x to n."""
    return B.program(B.proc("main", ["x", "n", "y", "m"],
        B.while_("x + 3 <= n",
            B.if_("y < m",
                  B.incr_sample("y", Uniform(0, 1)),
                  B.incr_sample("x", Uniform(0, 3))),
            B.tick(1))))


register(BenchmarkProgram(
    name="rdspeed", category="linear", factory=_build_rdspeed,
    paper_bound="2*|[y, m]| + 0.666667*|[x, n]|", source="paper",
    description="Randomised two-phase speed example (paper Fig. 4).",
    paper_time_seconds=0.040, paper_error_percent="0.039",
    simulation=SimulationPlan("n", (100, 200, 400, 800), {"x": 0, "y": 0, "m": 100}, runs=400)))


def _build_prspeed():
    """rdspeed with the inner uniform step replaced by a probabilistic branch."""
    return B.program(B.proc("main", ["x", "n", "y", "m"],
        B.while_("x + 3 <= n",
            B.if_("y < m",
                  B.prob("1/2", B.assign("y", "y + 1"), B.skip()),
                  B.incr_sample("x", Uniform(0, 3))),
            B.tick(1))))


register(BenchmarkProgram(
    name="prspeed", category="linear", factory=_build_prspeed,
    paper_bound="2*|[y, m]| + 0.666667*|[x, n]|", source="reconstructed",
    description="Probabilistic-branching variant of rdspeed.",
    paper_time_seconds=0.057, paper_error_percent="0.039",
    simulation=SimulationPlan("n", (100, 200, 400, 800), {"x": 0, "y": 0, "m": 100}, runs=400)))


def _build_rdseql():
    return B.program(B.proc("main", ["x", "y"],
        B.while_("x > 0",
            B.assign("x", "x - 1"),
            B.prob("1/4", B.assign("y", "y + 1"), B.skip()),
            B.tick(2)),
        B.while_("y > 0",
            B.assign("y", "y - 1"),
            B.tick(1))))


register(BenchmarkProgram(
    name="rdseql", category="linear", factory=_build_rdseql,
    paper_bound="2.25*|[0, x]| + |[0, y]|", source="reconstructed",
    description="Sequential loops: the first probabilistically feeds the second.",
    paper_time_seconds=0.025, paper_error_percent="0.007",
    simulation=SimulationPlan("x", (50, 100, 200, 400, 800), {"y": 100}, runs=400)))


# ---------------------------------------------------------------------------
# Probabilistic variants of the C4B benchmarks
# ---------------------------------------------------------------------------

def _build_c4b_t09():
    """Amortised counter: the inner resets are paid by the outer increments."""
    return B.program(B.proc("main", ["x"],
        B.while_("x > 0",
            B.prob("2/3",
                   B.seq(B.assign("x", "x - 1"), B.tick(1)),
                   B.seq(B.decr_sample("x", Uniform(1, 3)), B.tick(9))))))


register(BenchmarkProgram(
    name="C4B_t09", category="linear", factory=_build_c4b_t09,
    paper_bound="8.27273*|[0, x]|", source="reconstructed",
    description="Probabilistic variant of C4B t09 with a costly rare branch.",
    paper_time_seconds=0.061, paper_error_percent="5.362",
    simulation=SimulationPlan("x", (50, 100, 200, 400, 800), {}, runs=400)))


def _build_c4b_t13():
    """Appendix G, Fig. 49: nested loop where only one inner run depends on y."""
    return B.program(B.proc("main", ["x", "y"],
        B.while_("x > 0",
            B.assign("x", "x - 1"),
            B.prob("1/4",
                   B.assign("y", "y + 1"),
                   B.while_("y > 0",
                       B.assign("y", "y - 1"),
                       B.tick(1))),
            B.tick(1))))


register(BenchmarkProgram(
    name="C4B_t13", category="linear", factory=_build_c4b_t13,
    paper_bound="1.25*|[0, x]| + |[0, y]|", source="paper",
    description="Probabilistic C4B t13 (paper Appendix G, Fig. 49).",
    paper_time_seconds=0.045, paper_error_percent="0.009",
    simulation=SimulationPlan("x", (50, 100, 200, 400, 800), {"y": 100}, runs=400)))


def _build_c4b_t15():
    """A program whose true expected cost is sub-linear; the bound stays linear."""
    return B.program(B.proc("main", ["x"],
        B.while_("x > 0",
            B.prob("1/2", B.assign("x", "x - 1"), B.assign("x", "0")),
            B.tick(1))))


register(BenchmarkProgram(
    name="C4B_t15", category="linear", factory=_build_c4b_t15,
    paper_bound="2*|[0, x]|", source="reconstructed",
    description="Sub-linear expected cost (the analysis, like Absynth, reports a linear bound).",
    paper_time_seconds=0.044, paper_error_percent="A.S",
    simulation=SimulationPlan("x", (50, 100, 200, 400, 800), {}, runs=400)))


def _build_c4b_t19():
    """Two phases governed by a threshold constant (the 100/51 constants of t19)."""
    return B.program(B.proc("main", ["i", "k"],
        B.while_("i > 100",
            B.prob("1/2", B.assign("i", "i - 1"), B.skip()),
            B.tick(1)),
        B.while_("i + k > 50",
            B.prob("1/2", B.assign("k", "k - 1"), B.assign("i", "i - 1")),
            B.tick(1))))


register(BenchmarkProgram(
    name="C4B_t19", category="linear", factory=_build_c4b_t19,
    paper_bound="|[0, k + i + 51]| + 2*|[100, i]|", source="reconstructed",
    description="Probabilistic C4B t19: threshold phase followed by a joint countdown.",
    paper_time_seconds=0.058, paper_error_percent="2.711",
    simulation=SimulationPlan("i", (150, 200, 400, 800), {"k": 200}, runs=400)))


def _build_c4b_t30():
    return B.program(B.proc("main", ["x", "y"],
        B.while_("x > 0 && y > 0",
            B.prob("1/2", B.assign("x", "x - 2"), B.assign("y", "y - 2")),
            B.tick(1))))


register(BenchmarkProgram(
    name="C4B_t30", category="linear", factory=_build_c4b_t30,
    paper_bound="0.5*|[0, x + 2]| + 0.5*|[0, y + 2]|", source="reconstructed",
    description="Joint countdown; worst case when x and y are balanced.",
    paper_time_seconds=0.032, paper_error_percent="W.C",
    simulation=SimulationPlan("x", (50, 100, 200, 400), {"y": 300}, runs=400)))


def _build_c4b_t61():
    return B.program(B.proc("main", ["l"],
        B.while_("l > 0",
            B.prob("15/16", B.assign("l", "l - 1"), B.assign("l", "l - 2")),
            B.tick(1))))


register(BenchmarkProgram(
    name="C4B_t61", category="linear", factory=_build_c4b_t61,
    paper_bound="0.060606*|[0, l - 1]| + |[0, l]|", source="reconstructed",
    description="Countdown with a rare double decrement.",
    paper_time_seconds=0.028, paper_error_percent="0.754",
    simulation=SimulationPlan("l", (50, 100, 200, 400, 800), {}, runs=400)))


# ---------------------------------------------------------------------------
# Remaining literature benchmarks
# ---------------------------------------------------------------------------

def _build_robot():
    """A robot advancing by randomly chosen step sizes (deeply nested choices)."""
    return B.program(B.proc("main", ["n"],
        B.while_("n > 0",
            B.prob("1/2",
                   B.decr_sample("n", Uniform(1, 3)),
                   B.prob("1/2",
                          B.decr_sample("n", Uniform(2, 4)),
                          B.decr_sample("n", Uniform(0, 6)))),
            B.tick(1))))


register(BenchmarkProgram(
    name="robot", category="linear", factory=_build_robot,
    paper_bound="0.384615*|[0, n + 6]|", source="reconstructed",
    description="Robot motion with nested probabilistic step-size choices.",
    paper_time_seconds=2.658, paper_error_percent="R.D",
    simulation=SimulationPlan("n", (50, 100, 200, 400), {}, runs=400)))


def _build_roulette():
    """A gambler playing until the bankroll n reaches the house limit."""
    return B.program(B.proc("main", ["n"],
        B.while_("n < 10000",
            B.prob("1/2",
                   B.incr_sample("n", Uniform(0, 10)),
                   B.decr_sample("n", Uniform(0, 9))),
            B.tick(1))))


register(BenchmarkProgram(
    name="roulette", category="linear", factory=_build_roulette,
    paper_bound="4.93333*|[n, 10010]|", source="reconstructed",
    description="Roulette-style gambling walk towards a fixed target bankroll.",
    paper_time_seconds=1.216, paper_error_percent="0.282",
    simulation=SimulationPlan("n", (9600, 9700, 9800, 9900), {}, runs=200)))


def _build_sampling():
    """Per-observation sampling: a small binomially distributed inner loop."""
    return B.program(B.proc("main", ["n"],
        B.while_("n > 0",
            B.assign("n", "n - 1"),
            B.sample("i", Binomial(2, Fraction(1, 2))),
            B.while_("i > 0",
                B.assign("i", "i - 1"),
                B.tick(1)),
            B.tick(1))))


register(BenchmarkProgram(
    name="sampling", category="linear", factory=_build_sampling,
    paper_bound="2*|[0, n]|", source="reconstructed",
    description="Sampling loop: binomial inner work per observation.",
    paper_time_seconds=3.347, paper_error_percent="0.026",
    simulation=SimulationPlan("n", (50, 100, 200, 400), {}, runs=400)))
