"""The 9 polynomial-bound benchmarks of Table 1.

All of these need degree-2 potential templates (``max_degree=2`` in the
analyzer options).  ``trader`` and ``rdbub`` are transcribed from the paper
(Figures 1 and 50); the others are reconstructions.
"""

from __future__ import annotations

from fractions import Fraction

from repro.bench.registry import BenchmarkProgram, SimulationPlan, register
from repro.lang import builder as B
from repro.lang.distributions import Uniform

_POLY_OPTIONS = {"max_degree": 2, "auto_degree": False}


def _build_trader():
    """Fig. 1: stock trader; the resource is the global ``cost`` counter."""
    return B.program(
        B.proc("main", ["smin", "s"],
            B.assume("smin >= 0"),
            B.while_("s > smin",
                B.prob("1/4", B.assign("s", "s + 1"), B.assign("s", "s - 1")),
                B.call("trade"))),
        B.proc("trade", [],
            B.sample("nShares", Uniform(0, 10)),
            B.while_("nShares > 0",
                B.assign("nShares", "nShares - 1"),
                B.assign("cost", "cost + s"))))


register(BenchmarkProgram(
    name="trader", category="polynomial", factory=_build_trader,
    paper_bound="5*|[smin, s]|^2 + 5*|[smin, s]| + 10*|[smin, s]|*|[0, smin]|",
    source="paper",
    description="Stock trader of Fig. 1; bound on the expected final value of `cost`.",
    analyzer_options={"max_degree": 2, "auto_degree": False, "resource_counter": "cost"},
    paper_time_seconds=7.262, paper_error_percent="0.251",
    simulation=SimulationPlan("s", (120, 160, 200, 260), {"smin": 100}, runs=300)))


def _build_rdbub():
    """Fig. 50: probabilistic bubble sort (swaps only happen with probability 1/3)."""
    return B.program(B.proc("main", ["n"],
        B.while_("n > 0",
            B.decr_sample("n", Uniform(0, 1)),
            B.assign("m", "n"),
            B.while_("m > 0",
                B.prob("1/3", B.assign("m", "m - 1"), B.skip()),
                B.tick(1)))))


register(BenchmarkProgram(
    name="rdbub", category="polynomial", factory=_build_rdbub,
    paper_bound="3*|[0, n]|^2", source="paper",
    description="Probabilistic bubble sort (paper Appendix G, Fig. 50).",
    analyzer_options=dict(_POLY_OPTIONS),
    paper_time_seconds=0.190, paper_error_percent="0.106",
    simulation=SimulationPlan("n", (20, 40, 60, 100), {}, runs=300)))


def _build_complex():
    """Nested probabilistic loops over n and m plus a trailing linear loop."""
    return B.program(B.proc("main", ["n", "m", "y"],
        B.while_("n > 0",
            B.assign("n", "n - 1"),
            B.assign("j", "m"),
            B.while_("j > 0",
                B.prob("1/2", B.assign("j", "j - 1"), B.skip()),
                B.tick(3)),
            B.tick(3)),
        B.while_("y > 0",
            B.assign("y", "y - 1"),
            B.tick(1))))


register(BenchmarkProgram(
    name="complex", category="polynomial", factory=_build_complex,
    paper_bound="6*|[0, m]|*|[0, n]| + 3*|[0, n]| + |[0, y]|", source="reconstructed",
    description="Nested loops over n and m followed by a linear clean-up loop.",
    analyzer_options=dict(_POLY_OPTIONS),
    paper_time_seconds=3.415, paper_error_percent="0.118",
    simulation=SimulationPlan("n", (20, 40, 60, 100), {"m": 50, "y": 50}, runs=300)))


def _build_multirace():
    """n independent races, each of expected length 2m, plus constant overhead."""
    return B.program(B.proc("main", ["n", "m"],
        B.while_("n > 0",
            B.assign("n", "n - 1"),
            B.assign("j", "m"),
            B.while_("j > 0",
                B.prob("1/2", B.assign("j", "j - 1"), B.skip()),
                B.tick(1)),
            B.tick(4))))


register(BenchmarkProgram(
    name="multirace", category="polynomial", factory=_build_multirace,
    paper_bound="2*|[0, m]|*|[0, n]| + 4*|[0, n]|", source="reconstructed",
    description="Repeated races: n rounds of a geometric inner loop over m.",
    analyzer_options=dict(_POLY_OPTIONS),
    paper_time_seconds=9.034, paper_error_percent="0.703",
    simulation=SimulationPlan("n", (20, 40, 60, 100), {"m": 50}, runs=300)))


def _build_pol04():
    """Quadratic cost: each outer step (probabilistic) replays a linear inner loop."""
    return B.program(B.proc("main", ["x"],
        B.while_("x > 0",
            B.prob("2/3", B.assign("x", "x - 1"), B.skip()),
            B.assign("y", "x"),
            B.while_("y > 0",
                B.assign("y", "y - 1"),
                B.tick(3)),
            B.tick(1))))


register(BenchmarkProgram(
    name="pol04", category="polynomial", factory=_build_pol04,
    paper_bound="4.5*|[0, x]|^2 + 7.5*|[0, x]|", source="reconstructed",
    description="Quadratic: probabilistic outer countdown replaying a linear inner loop.",
    analyzer_options=dict(_POLY_OPTIONS),
    paper_time_seconds=0.585, paper_error_percent="0.779",
    simulation=SimulationPlan("x", (20, 40, 60, 100), {}, runs=300)))


def _build_pol05():
    return B.program(B.proc("main", ["x"],
        B.while_("x > 0",
            B.assign("x", "x - 1"),
            B.assign("y", "x"),
            B.while_("y > 0",
                B.prob("1/2", B.assign("y", "y - 1"), B.skip()),
                B.tick(1)),
            B.tick(1))))


register(BenchmarkProgram(
    name="pol05", category="polynomial", factory=_build_pol05,
    paper_bound="|[0, x]|^2 + |[0, x]|", source="reconstructed",
    description="Quadratic: deterministic outer countdown with a geometric inner loop.",
    analyzer_options=dict(_POLY_OPTIONS),
    paper_time_seconds=0.353, paper_error_percent="0.431",
    simulation=SimulationPlan("x", (20, 40, 60, 100), {}, runs=300)))


def _build_pol06():
    """Trader-like walk where the per-step work is a small uniform batch."""
    return B.program(B.proc("main", ["min", "s"],
        B.assume("min >= 0"),
        B.while_("s > min",
            B.prob("1/4", B.assign("s", "s + 1"), B.assign("s", "s - 1")),
            B.sample("k", Uniform(0, 2)),
            B.while_("k > 0",
                B.assign("k", "k - 1"),
                B.tick(B.expr("s"))))))


register(BenchmarkProgram(
    name="pol06", category="polynomial", factory=_build_pol06,
    paper_bound="0.625*|[min, s]|^2 + 2*|[min, s]|*|[0, min]| + 0.625*|[min, s]|",
    source="reconstructed",
    description="Random walk whose per-step cost is proportional to the current position.",
    analyzer_options=dict(_POLY_OPTIONS),
    paper_time_seconds=7.066, paper_error_percent="A.S",
    simulation=SimulationPlan("s", (120, 160, 200, 260), {"min": 100}, runs=300)))


def _build_pol07():
    return B.program(B.proc("main", ["n"],
        B.while_("n > 1",
            B.prob("2/3", B.assign("n", "n - 1"), B.skip()),
            B.assign("m", "n"),
            B.while_("m > 0",
                B.assign("m", "m - 1"),
                B.tick(1)))))


register(BenchmarkProgram(
    name="pol07", category="polynomial", factory=_build_pol07,
    paper_bound="1.5*|[0, n - 2]|*|[0, n - 1]|", source="reconstructed",
    description="Quadratic: the inner loop length tracks the (slowly falling) outer counter.",
    analyzer_options=dict(_POLY_OPTIONS),
    paper_time_seconds=4.534, paper_error_percent="0.008",
    simulation=SimulationPlan("n", (20, 40, 60, 100), {}, runs=300)))


def _build_recursive():
    """A recursive procedure narrowing the interval [l, h] with linear work per level."""
    return B.program(
        B.proc("main", ["l", "h"],
            B.call("narrow")),
        B.proc("narrow", [],
            B.if_("h > l",
                  B.seq(
                      B.assign("d", "h - l"),
                      B.while_("d > 0",
                          B.assign("d", "d - 1"),
                          B.tick(Fraction(1, 2))),
                      B.prob("1/2", B.assign("l", "l + 1"), B.assign("h", "h - 1")),
                      B.tick(1),
                      B.call("narrow")),
                  B.skip())))


register(BenchmarkProgram(
    name="recursive", category="polynomial", factory=_build_recursive,
    paper_bound="0.25*|[l, h]|^2 + 1.75*|[l, h]|", source="reconstructed",
    description="Recursive interval narrowing with per-level work proportional to the width.",
    analyzer_options=dict(_POLY_OPTIONS),
    paper_time_seconds=3.791, paper_error_percent="0.281",
    simulation=SimulationPlan("h", (20, 40, 60, 100), {"l": 0}, runs=300)))
