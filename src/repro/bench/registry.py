"""Benchmark registry: metadata + lookup for the 39 programs of Table 1.

Each benchmark records

* a factory building the program AST (so that node ids are fresh per use),
* the bound reported in the paper's Table 1 (for side-by-side comparison),
* whether the program text comes straight from the paper (``source ==
  'paper'``) or is a reconstruction from the benchmark's name, provenance and
  reported bound (``source == 'reconstructed'``) -- see DESIGN.md,
* analyzer options (maximal degree, resource counter, hints),
* a :class:`SimulationPlan` describing the input sweep used to measure the
  expected cost (the paper sweeps one input over a range while fixing the
  others; the default ranges here are scaled down so the whole evaluation
  runs in minutes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.lang.ast import Program


@dataclass
class SimulationPlan:
    """How to measure a benchmark's expected cost by sampling."""

    swept_variable: str
    sweep_values: Tuple[int, ...]
    fixed_state: Dict[str, int] = field(default_factory=dict)
    runs: int = 400
    max_steps: int = 2_000_000

    def states(self) -> List[Dict[str, int]]:
        states = []
        for value in self.sweep_values:
            state = dict(self.fixed_state)
            state[self.swept_variable] = int(value)
            states.append(state)
        return states


@dataclass
class BenchmarkProgram:
    """One row of Table 1."""

    name: str
    category: str                       # 'linear' or 'polynomial'
    factory: Callable[[], Program]
    paper_bound: str
    description: str
    source: str = "reconstructed"       # 'paper' or 'reconstructed'
    analyzer_options: Dict[str, object] = field(default_factory=dict)
    simulation: Optional[SimulationPlan] = None
    paper_time_seconds: Optional[float] = None
    paper_error_percent: Optional[str] = None

    def build(self) -> Program:
        return self.factory()

    def source_text(self) -> str:
        """The program rendered back to concrete syntax.

        This is the text shipped to scheduler workers and hashed by the
        persistent store: printing is a bound-preserving round trip (see
        ``tests/test_parser_printer.py``), and a stable text form means the
        cache key only changes when the program itself does.
        """
        from repro.lang.printer import program_to_source

        return program_to_source(self.factory())

    def build_for_simulation(self) -> Program:
        """The program whose ``tick`` cost matches the analysed resource.

        Benchmarks whose cost model is a resource-counter variable (e.g.
        ``trader``'s ``cost``) are lowered with
        :func:`repro.lang.transform.counter_as_resource` so that the
        interpreter's tick count measures the same quantity the bound talks
        about.
        """
        from repro.lang.transform import counter_as_resource

        program = self.factory()
        counter = self.analyzer_options.get("resource_counter")
        if counter:
            program = counter_as_resource(program, str(counter))
        return program

    def __repr__(self) -> str:
        return f"BenchmarkProgram({self.name!r}, {self.category})"


_REGISTRY: Dict[str, BenchmarkProgram] = {}


def register(benchmark: BenchmarkProgram) -> BenchmarkProgram:
    """Add a benchmark to the global registry (used by the program modules)."""
    if benchmark.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark name {benchmark.name!r}")
    _REGISTRY[benchmark.name] = benchmark
    return benchmark


def _ensure_loaded() -> None:
    # Importing the program modules populates the registry.
    from repro.bench.programs import linear, polynomial  # noqa: F401


def all_benchmarks() -> List[BenchmarkProgram]:
    _ensure_loaded()
    return sorted(_REGISTRY.values(), key=lambda b: (b.category, b.name))


def linear_benchmarks() -> List[BenchmarkProgram]:
    return [b for b in all_benchmarks() if b.category == "linear"]


def polynomial_benchmarks() -> List[BenchmarkProgram]:
    return [b for b in all_benchmarks() if b.category == "polynomial"]


def benchmark_names() -> List[str]:
    return [b.name for b in all_benchmarks()]


def get_benchmark(name: str) -> BenchmarkProgram:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(f"unknown benchmark {name!r}; known: {benchmark_names()}") from exc


def select_benchmarks(patterns: Sequence[str]) -> List[BenchmarkProgram]:
    """Resolve user-facing benchmark selectors to a sorted benchmark list.

    Each pattern is either a group selector (``@all``, ``@linear``,
    ``@polynomial``), an exact benchmark name, or an ``fnmatch``-style glob
    (``C4B_*``).  The union of all matches is returned in registry order
    (category, then name).  Unknown selectors raise ``KeyError`` so typos
    fail loudly instead of silently running an empty suite.
    """
    import fnmatch

    groups = {"@all": all_benchmarks, "@linear": linear_benchmarks,
              "@polynomial": polynomial_benchmarks}
    selected: Dict[str, BenchmarkProgram] = {}
    for pattern in patterns:
        if pattern in groups:
            matches = groups[pattern]()
        elif any(char in pattern for char in "*?["):
            matches = [b for b in all_benchmarks()
                       if fnmatch.fnmatchcase(b.name, pattern)]
            if not matches:
                raise KeyError(f"pattern {pattern!r} matches no benchmark")
        else:
            matches = [get_benchmark(pattern)]
        for benchmark in matches:
            selected[benchmark.name] = benchmark
    return sorted(selected.values(), key=lambda b: (b.category, b.name))
