"""Plain-text and CSV rendering of evaluation results."""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an ASCII table (used for the Table 1 reproduction)."""
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(header.ljust(width)
                            for header, width in zip(headers, widths)))
    lines.append(separator)
    for row in materialised:
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(row, widths)))
    return "\n".join(lines)


def rows_to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render the same data as CSV (for plotting / archiving)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow([str(cell) for cell in row])
    return buffer.getvalue()


def format_float(value: float, digits: int = 3) -> str:
    if value != value:  # NaN
        return "n/a"
    return f"{value:.{digits}f}"


def format_percentage(value: float, digits: int = 3) -> str:
    if value != value:
        return "n/a"
    if value == float("inf"):
        return "inf"
    return f"{value:.{digits}f}"
