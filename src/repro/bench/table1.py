"""Regenerate Table 1: inferred bound, measured error and analysis time.

For every benchmark the harness

1. runs the analyzer and records the inferred bound and the analysis time
   (the paper's "Expected bound" and "Time(s)" columns),
2. simulates the program over the benchmark's input sweep and compares the
   bound's value with the measured expected cost (the "Error(%)" column --
   the mean relative gap between bound and measurement over the sweep),
3. renders the rows grouped into linear and polynomial programs, exactly as
   the paper's table is split.

The absolute numbers differ from the paper (different machine, LP solver,
RNG, scaled-down simulation sizes, and reconstructed program texts for the
benchmarks whose sources are not printed in the paper); EXPERIMENTS.md
records the side-by-side comparison.

With ``--workers N`` the analysis phase runs through the
:mod:`repro.service` scheduler: benchmarks are converted to content-hashed
jobs and fanned out over ``N`` worker processes (the per-benchmark analysis
is self-contained, so the suite parallelises across cores), while the
simulation sweep stays in the parent process.  Bounds are byte-identical to
a sequential run -- the analysis is deterministic and results come back in
input order.

Command line::

    python -m repro.bench.table1 [--group linear|polynomial|all] [--quick]
                                 [--csv out.csv] [--names rdwalk race ...]
                                 [--workers N]
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.registry import (
    BenchmarkProgram,
    get_benchmark,
    select_benchmarks,
)
from repro.bench.reporting import format_float, format_percentage, render_table, rows_to_csv
from repro.core.analyzer import analyze_program
from repro.semantics.sampler import (estimate_expected_cost, relative_error,
                                     spawn_seeds)


@dataclass
class Table1Row:
    """One evaluated benchmark."""

    name: str
    category: str
    bound: Optional[str]
    paper_bound: str
    error_percent: float
    paper_error: Optional[str]
    analysis_seconds: float
    paper_seconds: Optional[float]
    success: bool
    source: str
    measurements: List[Tuple[Dict[str, int], float, float]] = field(default_factory=list)
    message: str = ""
    #: "" on success; otherwise the failure class ("no-bound",
    #: "analysis-error", ...) used to pick the process exit code.
    failure_kind: str = ""

    @property
    def status(self) -> str:
        return "ok" if self.success else (self.failure_kind or "analysis-error")

    def as_table_row(self) -> Sequence[object]:
        return (
            self.name,
            self.bound if self.success else f"<none: {self.message[:30]}>",
            format_percentage(self.error_percent),
            format_float(self.analysis_seconds),
            self.paper_bound,
            self.paper_error if self.paper_error is not None else "",
            format_float(self.paper_seconds) if self.paper_seconds is not None else "",
        )


TABLE_HEADERS = ("Program", "Expected bound (this repro)", "Error(%)", "Time(s)",
                 "Paper bound", "Paper err(%)", "Paper time(s)")


def _measure_error(benchmark: BenchmarkProgram, bound,
                   runs: Optional[int], seed: int
                   ) -> Tuple[float, List[Tuple[Dict[str, int], float, float]]]:
    """Simulate the benchmark's input sweep against an evaluable bound.

    ``bound`` is anything with ``evaluate(state)`` -- the in-process
    :class:`~repro.core.bounds.ExpectedBound` or one reconstructed from a
    scheduler/store record.
    """
    # Simulate the program whose tick count measures the analysed
    # resource (resource-counter benchmarks are lowered to ticks).
    simulated = benchmark.build_for_simulation()
    plan = benchmark.simulation
    measurements: List[Tuple[Dict[str, int], float, float]] = []
    pairs = []
    states = plan.states()
    seeds = spawn_seeds(seed, len(states))
    for state, run_seed in zip(states, seeds):
        stats = estimate_expected_cost(
            simulated, state, runs=runs if runs is not None else plan.runs,
            seed=run_seed, max_steps=plan.max_steps)
        bound_value = float(bound.evaluate(state))
        measurements.append((state, stats.mean, bound_value))
        pairs.append((bound_value, stats.mean))
    errors = [relative_error(bound_value, mean) for bound_value, mean in pairs
              if mean == mean]
    error = sum(errors) / len(errors) if errors else float("nan")
    return error, measurements


def _options_for(benchmark: BenchmarkProgram, domain: Optional[str],
                 solver: Optional[str] = None) -> Dict[str, object]:
    """The benchmark's analyzer options, with backend choices applied."""
    options: Dict[str, object] = dict(benchmark.analyzer_options)
    if domain is not None:
        options["domain"] = domain
    if solver is not None:
        options["solver"] = solver
    return options


def evaluate_benchmark(benchmark: BenchmarkProgram,
                       runs: Optional[int] = None,
                       simulate: bool = True,
                       seed: int = 0,
                       domain: Optional[str] = None,
                       solver: Optional[str] = None) -> Table1Row:
    """Analyze + (optionally) simulate one benchmark."""
    program = benchmark.build()
    start = time.perf_counter()
    result = analyze_program(program,
                             **_options_for(benchmark, domain, solver))
    analysis_seconds = time.perf_counter() - start

    error = float("nan")
    measurements: List[Tuple[Dict[str, int], float, float]] = []
    if simulate and result.success and benchmark.simulation is not None:
        error, measurements = _measure_error(benchmark, result.bound, runs, seed)

    return Table1Row(
        name=benchmark.name,
        category=benchmark.category,
        bound=result.bound.pretty() if result.success else None,
        paper_bound=benchmark.paper_bound,
        error_percent=error,
        paper_error=benchmark.paper_error_percent,
        analysis_seconds=analysis_seconds,
        paper_seconds=benchmark.paper_time_seconds,
        success=result.success,
        source=benchmark.source,
        measurements=measurements,
        message=result.message,
        failure_kind=result.failure_kind,
    )


def evaluate_parallel(benchmarks: Sequence[BenchmarkProgram], workers: int,
                      runs: Optional[int] = None, simulate: bool = True,
                      seed: int = 0, store=None,
                      domain: Optional[str] = None,
                      solver: Optional[str] = None) -> List[Table1Row]:
    """Analyze ``benchmarks`` through the service scheduler, then simulate.

    Analyses fan out over ``workers`` processes (0 = inline through the same
    job pipeline); the simulation sweep runs in the parent against bounds
    reconstructed from the job results.  Per-benchmark analysis time is the
    wall time measured inside the worker.
    """
    from repro.service.jobs import job_from_benchmark
    from repro.service.scheduler import run_jobs

    jobs = [job_from_benchmark(benchmark, domain=domain, solver=solver)
            for benchmark in benchmarks]
    results = run_jobs(jobs, workers=workers, store=store)
    rows = []
    for benchmark, result in zip(benchmarks, results):
        bound = result.expected_bound()
        error = float("nan")
        measurements: List[Tuple[Dict[str, int], float, float]] = []
        if simulate and bound is not None and benchmark.simulation is not None:
            error, measurements = _measure_error(benchmark, bound, runs, seed)
        rows.append(Table1Row(
            name=benchmark.name,
            category=benchmark.category,
            bound=result.bound_pretty,
            paper_bound=benchmark.paper_bound,
            error_percent=error,
            paper_error=benchmark.paper_error_percent,
            analysis_seconds=result.wall_seconds,
            paper_seconds=benchmark.paper_time_seconds,
            success=result.success,
            source=benchmark.source,
            measurements=measurements,
            message=result.message,
            failure_kind="" if result.success else result.status,
        ))
    return rows


def select_group(group: str = "all",
                 names: Optional[Sequence[str]] = None) -> List[BenchmarkProgram]:
    if names:
        # Explicit names keep their given order (unlike select_benchmarks,
        # which returns registry order) -- callers rely on it.
        return [get_benchmark(name) for name in names]
    return select_benchmarks([f"@{group}"])


def run_table1(group: str = "all", names: Optional[Sequence[str]] = None,
               runs: Optional[int] = None, simulate: bool = True,
               seed: int = 0, workers: Optional[int] = None,
               store=None, domain: Optional[str] = None,
               solver: Optional[str] = None) -> List[Table1Row]:
    """Evaluate a group of benchmarks and return the rows.

    ``workers=None`` keeps the classic in-process path; any integer routes
    the analyses through the service scheduler (0 = inline jobs, N >= 1 = a
    pool of N processes) with identical bounds either way.  ``domain``
    selects the abstract-domain backend and ``solver`` the LP backend
    selector (None = process defaults); bounds are byte-identical across
    both choices by construction.
    """
    benchmarks = select_group(group, names)
    if workers is not None:
        return evaluate_parallel(benchmarks, workers, runs=runs,
                                 simulate=simulate, seed=seed, store=store,
                                 domain=domain, solver=solver)
    return [evaluate_benchmark(b, runs=runs, simulate=simulate, seed=seed,
                               domain=domain, solver=solver)
            for b in benchmarks]


def render_rows(rows: Sequence[Table1Row]) -> str:
    """Render the rows as the paper does: linear programs first, then polynomial."""
    chunks = []
    for category, title in (("linear", "Linear programs"),
                            ("polynomial", "Polynomial programs")):
        selected = [row for row in rows if row.category == category]
        if not selected:
            continue
        chunks.append(render_table(TABLE_HEADERS,
                                   [row.as_table_row() for row in selected],
                                   title=title))
    return "\n\n".join(chunks)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate Table 1 of the paper")
    parser.add_argument("--group", choices=("all", "linear", "polynomial"), default="all")
    parser.add_argument("--names", nargs="*", default=None,
                        help="evaluate only these benchmarks")
    parser.add_argument("--runs", type=int, default=None,
                        help="override the number of simulation runs per input")
    parser.add_argument("--quick", action="store_true",
                        help="use few simulation runs (fast smoke run)")
    parser.add_argument("--no-simulation", action="store_true",
                        help="skip the simulation (bounds and times only)")
    parser.add_argument("--csv", default=None, help="also write the rows to a CSV file")
    parser.add_argument("--workers", type=int, default=None,
                        help="run the analyses through the service scheduler "
                             "with this many worker processes (0 = inline)")
    from repro.logic.entailment import available_domains

    parser.add_argument("--domain", choices=available_domains(), default=None,
                        help="abstract-domain backend for the analyses "
                             "(default: $REPRO_DOMAIN or fm)")
    from repro.core.lpsession import solver_choices

    parser.add_argument("--solver", choices=solver_choices(), default=None,
                        help="LP solver backend selector "
                             "(default: $REPRO_SOLVER or auto)")
    args = parser.parse_args(argv)

    runs = args.runs
    if args.quick and runs is None:
        runs = 50
    rows = run_table1(group=args.group, names=args.names, runs=runs,
                      simulate=not args.no_simulation, workers=args.workers,
                      domain=args.domain, solver=args.solver)
    print(render_rows(rows))
    failures = [row.name for row in rows if not row.success]
    if failures:
        print(f"\nbenchmarks without a bound: {failures}")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(rows_to_csv(TABLE_HEADERS,
                                     [row.as_table_row() for row in rows]))
        print(f"\nwrote {args.csv}")
    from repro.exitcodes import exit_code_for_statuses

    return exit_code_for_statuses(row.status for row in rows)


if __name__ == "__main__":
    raise SystemExit(main())
