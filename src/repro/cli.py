"""Command-line front end (the Python counterpart of the ``absynth`` binary).

Usage::

    absynth-py analyze program.imp [--degree 2] [--counter cost] [--certificate]
    absynth-py simulate program.imp --input x=100 n=500 [--runs 1000]
    absynth-py sample program.imp|benchmark --input x=100 [--engine vec] [--runs 10000]
    absynth-py figures [--figure 8|appendix] [--engine vec] [--runs N]
    absynth-py bench [--group linear|polynomial|all] [--quick] [--workers N]
    absynth-py batch DIR|FILE|@group|name... [--workers N] [--cache-dir DIR]
    absynth-py serve [--workers N] [--cache-dir DIR]
    absynth-py serve --async [--port P] [--queue-limit N] [--hot-cache-size N]
    absynth-py store stats [--cache-dir DIR] [--json]
    absynth-py store prune [--max-age AGE] [--max-bytes SIZE]
    absynth-py lint program.imp|@all|name... [--strict] [--json]
    absynth-py list [--lint]

``analyze`` parses a program in the concrete syntax (see
:mod:`repro.lang.parser`), runs the expected-cost analysis and prints the
bound; ``simulate`` estimates the expected cost by sampling; ``sample`` is
the batch-scale sampling surface (scalar or vectorised engine, registry
benchmarks accepted by name, unfinished-run accounting); ``figures``
regenerates the Figure 8 / Appendix F data series; ``bench`` regenerates
Table 1; ``batch`` fans a set of programs out over the
:mod:`repro.service` scheduler with the persistent result cache; ``serve``
runs the line-oriented JSON analysis service on stdin/stdout, or -- with
``--async`` -- the concurrent TCP gateway (request coalescing, tiered
cache, backpressure; see :mod:`repro.service.gateway`); ``store`` inspects
and prunes the shared on-disk result cache.

Exit codes are distinct per failure class so scripts can tell them apart:
``0`` success, ``2`` parse error, ``3`` no bound found (the LP is
infeasible for every attempted degree), ``4`` the analysis could not be set
up (lowering/derivation failure), ``5`` certificate validation failed,
``6`` a service could not start (gateway address already in use), ``7``
lint diagnostics at the failing severity (errors, plus warnings under
``lint --strict``), and ``1`` for anything else (timeouts, cancelled jobs,
internal errors).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.bench.registry import benchmark_names
from repro.core.analyzer import analyze_program
from repro.core.lpsession import solver_choices
from repro.logic.entailment import available_domains
from repro.core.certificates import check_certificate
from repro.exitcodes import (EXIT_ANALYSIS_ERROR, EXIT_CERTIFICATE_ERROR,
                             EXIT_FAILURE, EXIT_NO_BOUND, EXIT_OK,
                             EXIT_PARSE_ERROR, STATUS_EXIT,
                             exit_code_for_statuses)
from repro.lang.errors import ParseError
from repro.lang.parser import parse_program
from repro.semantics.sampler import estimate_expected_cost


def _parse_assignments(pairs: Sequence[str]) -> Dict[str, int]:
    state: Dict[str, int] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"invalid input assignment {pair!r}; expected name=value")
        name, _, value = pair.partition("=")
        state[name.strip()] = int(value)
    return state


def _load_program(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return parse_program(handle.read())


def _cmd_analyze(args: argparse.Namespace) -> int:
    try:
        program = _load_program(args.program)
    except ParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return EXIT_PARSE_ERROR
    options = {"max_degree": args.degree, "auto_degree": not args.no_auto_degree,
               "domain": args.domain, "solver": args.solver}
    if args.prefilter is not None:
        options["prefilter"] = args.prefilter == "on"
    if args.counter:
        options["resource_counter"] = args.counter
    if args.degree_limit is not None:
        options["degree_limit"] = args.degree_limit
    result = analyze_program(program, **options)
    if not result.success:
        print(f"no bound found: {result.message}")
        return STATUS_EXIT.get(result.failure_kind or "analysis-error",
                               EXIT_FAILURE)
    print(f"expected cost bound: {result.bound}")
    attempted = result.stats.attempted_degrees if result.stats else [result.degree]
    print(f"degree: {result.degree} (attempted {attempted})   "
          f"time: {result.time_seconds:.3f}s attempt / "
          f"{result.total_seconds:.3f}s total   "
          f"LP size: {result.lp_variables} variables / {result.lp_constraints} constraints")
    reuse = result.stats.escalation_reuse_ratio if result.stats else None
    if reuse is not None:
        print(f"degree escalation reused {reuse:.1%} of the lower-degree system")
    if args.certificate:
        problems = check_certificate(result.certificate)
        if problems:
            print("certificate check FAILED:")
            for problem in problems[:10]:
                print(f"  - {problem}")
            return EXIT_CERTIFICATE_ERROR
        print(f"certificate check passed "
              f"({len(result.certificate.points)} annotated program points, "
              f"{len(result.certificate.weakenings)} weakenings)")
    return EXIT_OK


def _cmd_simulate(args: argparse.Namespace) -> int:
    try:
        program = _load_program(args.program)
    except ParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return EXIT_PARSE_ERROR
    state = _parse_assignments(args.input or [])
    from repro.semantics.vexec import VectorisationError, VexecRangeError

    try:
        stats = estimate_expected_cost(
            program, state, runs=args.runs, seed=args.seed,
            engine=getattr(args, "engine", "scalar"))
    except (VectorisationError, VexecRangeError) as exc:
        print(f"vectorised engine cannot run {args.program}: {exc} "
              f"(use --engine scalar or auto)", file=sys.stderr)
        return EXIT_FAILURE
    _print_statistics(stats)
    return EXIT_OK


def _print_statistics(stats) -> None:
    print(f"runs: {stats.runs}   mean cost: {stats.mean:.3f}   std: {stats.std:.3f}")
    print(f"min/q1/median/q3/max: {stats.minimum:.1f} / {stats.first_quartile:.1f} / "
          f"{stats.median:.1f} / {stats.third_quartile:.1f} / {stats.maximum:.1f}")
    if stats.unfinished_runs:
        print(f"unfinished runs (step budget exceeded): {stats.unfinished_runs}")


def _resolve_sample_target(target: str):
    """A program path or a registry benchmark name -> (program, label).

    Benchmarks resolve to their *simulation* variant, whose tick count
    measures the analysed resource.
    """
    if os.path.isfile(target):
        return _load_program(target), target
    from repro.bench.registry import get_benchmark

    try:
        benchmark = get_benchmark(target)
    except KeyError:
        raise SystemExit(
            f"{target!r} is neither a program file nor a known benchmark "
            f"(see 'absynth-py list')")
    return benchmark.build_for_simulation(), benchmark.name


def _cmd_sample(args: argparse.Namespace) -> int:
    from repro.semantics.vexec import VectorisationError, VexecRangeError

    try:
        program, label = _resolve_sample_target(args.program)
    except ParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return EXIT_PARSE_ERROR
    state = _parse_assignments(args.input or [])
    try:
        stats = estimate_expected_cost(
            program, state, runs=args.runs, seed=args.seed,
            max_steps=args.max_steps, engine=args.engine,
            batch_size=args.batch_size)
    except (VectorisationError, VexecRangeError) as exc:
        print(f"vectorised engine cannot run {label}: {exc} "
              f"(use --engine scalar or auto)", file=sys.stderr)
        return EXIT_FAILURE
    fallback = " (fallback from auto)" \
        if args.engine == "auto" and stats.engine == "scalar" else ""
    print(f"{label}: engine={stats.engine}{fallback}")
    if stats.fallback_reason:
        print(f"  fallback reason: {stats.fallback_reason}")
    _print_statistics(stats)
    return EXIT_OK


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.bench import figures

    forwarded: List[str] = ["--figure", args.figure, "--engine", args.engine,
                            "--seed", str(args.seed)]
    if args.runs is not None:
        forwarded.extend(["--runs", str(args.runs)])
    if args.names:
        forwarded.extend(["--names", *args.names])
    return figures.main(forwarded)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import table1

    forwarded: List[str] = ["--group", args.group]
    if args.quick:
        forwarded.append("--quick")
    if args.no_simulation:
        forwarded.append("--no-simulation")
    if args.names:
        forwarded.extend(["--names", *args.names])
    if args.workers is not None:
        forwarded.extend(["--workers", str(args.workers)])
    if args.domain is not None:
        forwarded.extend(["--domain", args.domain])
    if args.solver is not None:
        forwarded.extend(["--solver", args.solver])
    return table1.main(forwarded)


def _lint_text(source: str, counter: Optional[str] = None,
               main: Optional[str] = None):
    """Lint one source text, seeding the resource counter as initialized.

    The counter variable (``analyzer_options['resource_counter']`` for
    registry benchmarks, ``--counter`` for files) is zero-initialized by
    convention, so ``cost = cost + s`` must not read as uninitialized.
    """
    from repro.lang.analysis import lint_source

    initial = None
    if counter:
        try:
            program = parse_program(source, main=main)
            initial = set(program.main_procedure.params) | {counter}
        except ParseError:
            initial = None   # lint_source will report the R001 itself
    return lint_source(source, main=main, initial_state=initial)


def _collect_lint_targets(targets: Sequence[str],
                          counter: Optional[str] = None):
    """Resolve lint targets to ``(name, source, resource_counter)`` triples.

    Accepts the same shapes as ``batch``: directories of ``.imp`` files,
    single files, and registry selectors (``@all``, names, globs).
    Registry benchmarks lint the same printed source text the service
    layer hashes, with their own ``resource_counter`` option.
    """
    from repro.bench.registry import select_benchmarks

    triples = []
    registry_selectors: List[str] = []
    for target in targets:
        if os.path.isdir(target):
            entries = sorted(entry for entry in os.listdir(target)
                             if entry.endswith(".imp"))
            if not entries:
                raise SystemExit(f"no .imp programs under {target!r}")
            for entry in entries:
                path = os.path.join(target, entry)
                with open(path, "r", encoding="utf-8") as handle:
                    triples.append((path, handle.read(), counter))
        elif os.path.isfile(target):
            with open(target, "r", encoding="utf-8") as handle:
                triples.append((target, handle.read(), counter))
        else:
            registry_selectors.append(target)
    if registry_selectors:
        try:
            benchmarks = select_benchmarks(registry_selectors)
        except KeyError as exc:
            raise SystemExit(str(exc.args[0] if exc.args else exc))
        for benchmark in benchmarks:
            bench_counter = benchmark.analyzer_options.get("resource_counter")
            triples.append((benchmark.name, benchmark.source_text(),
                            bench_counter))
    return triples


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.lang.analysis import severity_counts

    triples = _collect_lint_targets(args.targets, counter=args.counter)
    if not triples:
        raise SystemExit("nothing to lint")
    statuses: List[str] = []
    reports: List[Dict[str, object]] = []
    for name, source, counter in triples:
        diagnostics = _lint_text(source, counter=counter)
        counts = severity_counts(diagnostics)
        if any(diag.code == "R001" for diag in diagnostics):
            status = "parse-error"
        elif counts["error"]:
            status = "lint-error"
        elif args.strict and counts["warning"]:
            status = "lint-error"
        else:
            status = "ok"
        statuses.append(status)
        if args.json:
            reports.append({
                "name": name,
                "status": status,
                "counts": counts,
                "diagnostics": [diag.to_dict() for diag in diagnostics],
            })
            continue
        if not diagnostics:
            if not args.quiet:
                print(f"{name}: clean")
            continue
        print(f"{name}: {counts['error']} errors, "
              f"{counts['warning']} warnings, {counts['info']} info")
        for diag in diagnostics:
            print(f"  {diag.format()}")
    if args.json:
        json.dump({"schema": 1, "strict": bool(args.strict),
                   "targets": reports}, sys.stdout, indent=1, sort_keys=True)
        print()
    return exit_code_for_statuses(statuses)


def _cmd_list(args: argparse.Namespace) -> int:
    # Stable, plainly sorted output so scripts can diff/bisect the listing.
    names = sorted(benchmark_names())
    if not getattr(args, "lint", False):
        for name in names:
            print(name)
        return EXIT_OK
    from repro.bench.registry import get_benchmark
    from repro.lang.analysis import severity_counts

    for name in names:
        benchmark = get_benchmark(name)
        diagnostics = _lint_text(
            benchmark.source_text(),
            counter=benchmark.analyzer_options.get("resource_counter"))
        if not diagnostics:
            summary = "clean"
        else:
            counts = severity_counts(diagnostics)
            summary = " ".join(f"{severity}:{count}"
                               for severity, count in counts.items() if count)
        print(f"{name}\t{summary}")
    return EXIT_OK


# -- repro.service front ends -------------------------------------------------

def _make_store(args: argparse.Namespace):
    from repro.service.store import ResultStore

    if getattr(args, "no_cache", False):
        return None
    return ResultStore(args.cache_dir)


def _collect_batch_jobs(targets: Sequence[str],
                        extra_options: Optional[Dict[str, object]] = None):
    """Resolve batch targets (directories, files, registry selectors) to jobs.

    ``extra_options`` (e.g. ``--degree-limit``) are merged over each job's
    own analyzer options; they participate in the job hash, so cached
    results never alias across different option values.
    """
    from repro.bench.registry import select_benchmarks
    from repro.service.jobs import AnalysisJob, job_from_benchmark, job_from_file

    jobs = []
    registry_selectors: List[str] = []
    for target in targets:
        if os.path.isdir(target):
            entries = sorted(entry for entry in os.listdir(target)
                             if entry.endswith(".imp"))
            if not entries:
                raise SystemExit(f"no .imp programs under {target!r}")
            for entry in entries:
                path = os.path.join(target, entry)
                jobs.append(job_from_file(path, name=os.path.splitext(entry)[0]))
        elif os.path.isfile(target):
            name = os.path.splitext(os.path.basename(target))[0]
            jobs.append(job_from_file(target, name=name))
        else:
            registry_selectors.append(target)
    if registry_selectors:
        try:
            benchmarks = select_benchmarks(registry_selectors)
        except KeyError as exc:
            raise SystemExit(str(exc.args[0] if exc.args else exc))
        jobs.extend(job_from_benchmark(benchmark) for benchmark in benchmarks)
    if extra_options:
        jobs = [AnalysisJob.create(job.name, job.source,
                                   {**job.options_dict, **extra_options})
                for job in jobs]
    return jobs


def _cmd_batch(args: argparse.Namespace) -> int:
    import json

    from repro.bench.reporting import render_table
    from repro.service.retry import RetryPolicy
    from repro.service.scheduler import SchedulerConfig, run_batch

    extra_options: Dict[str, object] = {}
    if args.degree_limit is not None:
        extra_options["degree_limit"] = args.degree_limit
    if args.domain is not None:
        # Part of every job's content hash: results computed under one
        # abstract domain are never served to the other.
        extra_options["domain"] = args.domain
    if args.solver is not None:
        # The LP backend selector is hashed the same way (see SCHEMA v5).
        extra_options["solver"] = args.solver
    if args.prefilter is not None:
        # Observational, but stamped into the job hash (SCHEMA v7).
        extra_options["prefilter"] = args.prefilter == "on"
    jobs = _collect_batch_jobs(args.targets, extra_options)
    if not jobs:
        raise SystemExit("nothing to analyze")
    store = _make_store(args)
    retry = None
    if args.retry_budget is not None:
        retry = RetryPolicy(budget=args.retry_budget)
    report = run_batch(jobs, SchedulerConfig(
        workers=args.workers, timeout=args.timeout, store=store,
        refresh=args.refresh, retry=retry, degrade=not args.no_degrade))

    rows = []
    for outcome in report.outcomes:
        result = outcome.result
        rows.append((result.name, result.status,
                     result.bound_pretty or f"<{result.message[:40]}>",
                     f"{result.wall_seconds:.3f}",
                     "store" if outcome.cached else "computed"))
    if not args.quiet:
        print(render_table(("program", "status", "bound", "time(s)", "from"),
                           rows, title=f"batch: {len(jobs)} jobs, "
                                       f"{args.workers} workers"))
        print(f"\nwall {report.wall_seconds:.2f}s; {report.executed} executed, "
              f"{report.cache_hits} served from store "
              f"({report.cache_hit_rate():.0%} hit rate)")
        if report.retries or report.degraded or report.fault_events:
            print(f"supervision: {report.retries} retries, "
                  f"{len(report.degraded)} degraded results, "
                  f"{report.fault_events} fault events recorded")
        if store is not None:
            quarantined = store.stats.quarantined
            note = f", {quarantined} corrupt records quarantined" \
                if quarantined else ""
            print(f"cache: {store.root} "
                  f"({store.stats.writes} records written{note})")
    if args.json:
        payload = {
            "wall_seconds": report.wall_seconds,
            "workers": report.workers,
            "cache_hits": report.cache_hits,
            "results": [outcome.result.to_record()
                        for outcome in report.outcomes],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        if not args.quiet:
            print(f"wrote {args.json}")
    return exit_code_for_statuses(result.status for result in report.results)


def _cmd_serve(args: argparse.Namespace) -> int:
    default_options: Dict[str, object] = {}
    if args.degree_limit is not None:
        default_options["degree_limit"] = args.degree_limit
    if args.domain is not None:
        default_options["domain"] = args.domain
    if args.solver is not None:
        default_options["solver"] = args.solver
    if args.prefilter is not None:
        default_options["prefilter"] = args.prefilter == "on"
    if args.async_gateway:
        from repro.service import gateway
        from repro.service.retry import RetryPolicy

        retry = None
        if args.retry_budget is not None:
            retry = RetryPolicy(budget=args.retry_budget)
        return gateway.run_gateway(
            store=_make_store(args), workers=args.workers,
            host=args.host if args.host is not None else gateway.DEFAULT_HOST,
            port=args.port if args.port is not None else gateway.DEFAULT_PORT,
            queue_limit=(args.queue_limit if args.queue_limit is not None
                         else gateway.DEFAULT_QUEUE_LIMIT),
            hot_cache_size=(args.hot_cache_size
                            if args.hot_cache_size is not None
                            else gateway.DEFAULT_HOT_CACHE_SIZE),
            default_options=default_options,
            timeout=args.timeout, retry=retry)
    from repro.service.server import serve_stdio

    return serve_stdio(store=_make_store(args), workers=args.workers,
                       default_options=default_options)


def _parse_age(text: str) -> float:
    """A human age -- ``90``, ``45s``, ``30m``, ``12h``, ``7d`` -- in seconds."""
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    text = text.strip().lower()
    scale = units.get(text[-1:], None)
    digits = text[:-1] if scale is not None else text
    try:
        value = float(digits)
    except ValueError:
        raise SystemExit(f"invalid age {text!r}; expected e.g. 90, 30m, "
                         f"12h or 7d")
    return value * (scale if scale is not None else 1.0)


def _parse_size(text: str) -> int:
    """A human size -- ``4096``, ``64K``, ``100M``, ``2G`` -- in bytes."""
    units = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    text = text.strip().lower()
    scale = units.get(text[-1:], None)
    digits = text[:-1] if scale is not None else text
    try:
        value = float(digits)
    except ValueError:
        raise SystemExit(f"invalid size {text!r}; expected e.g. 4096, "
                         f"64K, 100M or 2G")
    return int(value * (scale if scale is not None else 1))


def _cmd_store(args: argparse.Namespace) -> int:
    import json

    from repro.service.store import ResultStore

    store = ResultStore(args.cache_dir)
    if args.store_command == "stats":
        payload = store.disk_stats()
        if args.json:
            json.dump(payload, sys.stdout, indent=1, sort_keys=True)
            print()
            return EXIT_OK
        print(f"store root: {payload['root']}")
        print(f"records: {payload['entries']} "
              f"({payload['total_bytes']} bytes)")
        print(f"quarantined: {payload['quarantine_records']} "
              f"({payload['quarantine_bytes']} bytes)")
        if payload["entries"]:
            print(f"record age: {payload['newest_age_seconds']:.0f}s newest, "
                  f"{payload['oldest_age_seconds']:.0f}s oldest")
        session = payload["session"]
        total = session["hits"] + session["misses"]
        if total:
            print(f"this session: {session['hits']}/{total} hits "
                  f"({session['hits'] / total:.0%})")
        return EXIT_OK
    # prune
    if args.max_age is None and args.max_bytes is None:
        raise SystemExit("prune needs --max-age and/or --max-bytes "
                         "(nothing to evict by)")
    max_age = _parse_age(args.max_age) if args.max_age is not None else None
    max_bytes = _parse_size(args.max_bytes) \
        if args.max_bytes is not None else None
    report = store.prune(max_age_seconds=max_age, max_total_bytes=max_bytes)
    print(f"pruned {report.removed} records ({report.bytes_freed} bytes), "
          f"{report.kept} kept")
    if args.json:
        json.dump(report.as_dict(), sys.stdout, indent=1, sort_keys=True)
        print()
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="absynth-py",
        description="Expected-cost bound analysis for probabilistic programs "
                    "(reproduction of PLDI 2018 'Bounded Expectations').")
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="infer an expected-cost bound")
    analyze.add_argument("program", help="path to a program in the concrete syntax")
    analyze.add_argument("--degree", type=int, default=1, help="maximal bound degree")
    analyze.add_argument("--no-auto-degree", action="store_true",
                         help="do not retry with a higher degree on failure")
    analyze.add_argument("--degree-limit", type=int, default=None,
                         help="highest degree the automatic retry may "
                              "escalate to (default: 2); escalation reuses "
                              "the lower-degree derivation incrementally")
    analyze.add_argument("--counter", default=None,
                         help="treat this global variable as the resource counter")
    analyze.add_argument("--certificate", action="store_true",
                         help="re-check the derivation certificate")
    analyze.add_argument("--domain", choices=available_domains(), default=None,
                         help="abstract-domain backend for entailment "
                              "queries (default: $REPRO_DOMAIN or fm)")
    analyze.add_argument("--prefilter", choices=("on", "off"), default=None,
                         help="interval pre-filter tier in front of the "
                              "exact domain; bounds are identical either "
                              "way (default: $REPRO_PREFILTER or on)")
    analyze.add_argument("--solver", choices=solver_choices(), default=None,
                         help="LP solver backend: auto picks the native "
                              "warm-started highs session when highspy is "
                              "installed, scipy otherwise (default: "
                              "$REPRO_SOLVER or auto)")
    analyze.set_defaults(func=_cmd_analyze)

    simulate = subparsers.add_parser("simulate", help="estimate the expected cost by sampling")
    simulate.add_argument("program")
    simulate.add_argument("--input", nargs="*", default=[], help="initial values, e.g. x=10 n=100")
    simulate.add_argument("--runs", type=int, default=1000)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--engine", choices=("scalar", "vec", "auto"),
                          default="scalar",
                          help="sampler engine (default: scalar oracle)")
    simulate.set_defaults(func=_cmd_simulate)

    sample = subparsers.add_parser(
        "sample", help="batch-scale sampling (vectorised engine, benchmarks "
                       "by name, unfinished-run accounting)")
    sample.add_argument("program",
                        help="path to a program file, or the name of a "
                             "registry benchmark (sampled in its simulation "
                             "variant)")
    sample.add_argument("--input", nargs="*", default=[],
                        help="initial values, e.g. x=10 n=100")
    sample.add_argument("--runs", type=int, default=10_000)
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument("--max-steps", type=int, default=1_000_000,
                        help="per-run step budget")
    sample.add_argument("--batch-size", type=int, default=None,
                        help="lanes executed at once by the vectorised "
                             "engine (bounds peak memory; results are "
                             "identical for every split)")
    sample.add_argument("--engine", choices=("scalar", "vec", "auto"),
                        default="auto",
                        help="sampler engine (default: auto = vectorised "
                             "with scalar fallback)")
    sample.set_defaults(func=_cmd_sample)

    figures = subparsers.add_parser(
        "figures", help="regenerate the Figure 8 / Appendix F data series")
    figures.add_argument("--figure", choices=("8", "appendix"), default="8")
    figures.add_argument("--names", nargs="*", default=None)
    figures.add_argument("--runs", type=int, default=None)
    figures.add_argument("--seed", type=int, default=0)
    figures.add_argument("--engine", choices=("scalar", "vec", "auto"),
                         default="auto",
                         help="sampler engine (default: auto)")
    figures.set_defaults(func=_cmd_figures)

    bench = subparsers.add_parser("bench", help="regenerate Table 1")
    bench.add_argument("--group", choices=("all", "linear", "polynomial"), default="all")
    bench.add_argument("--names", nargs="*", default=None)
    bench.add_argument("--quick", action="store_true")
    bench.add_argument("--no-simulation", action="store_true")
    bench.add_argument("--workers", type=int, default=None,
                       help="analyze benchmarks through the service scheduler "
                            "with this many worker processes (0 = inline)")
    bench.add_argument("--domain", choices=available_domains(), default=None,
                       help="abstract-domain backend for the analyses "
                            "(default: $REPRO_DOMAIN or fm)")
    bench.add_argument("--solver", choices=solver_choices(), default=None,
                       help="LP solver backend selector for the analyses "
                            "(default: $REPRO_SOLVER or auto)")
    bench.set_defaults(func=_cmd_bench)

    batch = subparsers.add_parser(
        "batch", help="analyze many programs through the scheduler + cache")
    batch.add_argument("targets", nargs="+",
                       help="directories of .imp files, single files, or "
                            "registry selectors (@all, @linear, @polynomial, "
                            "names, globs)")
    batch.add_argument("--workers", type=int, default=0,
                       help="worker processes (0 = inline, default)")
    batch.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock budget in seconds "
                            "(requires --workers >= 1)")
    batch.add_argument("--cache-dir", default=None,
                       help="persistent result cache directory "
                            "(default: $REPRO_CACHE_DIR or .repro-cache)")
    batch.add_argument("--no-cache", action="store_true",
                       help="disable the persistent result cache")
    batch.add_argument("--refresh", action="store_true",
                       help="re-analyze even on cache hits (results are "
                            "written back)")
    batch.add_argument("--degree-limit", type=int, default=None,
                       help="apply this auto-degree escalation limit to "
                            "every job (part of the cache key)")
    batch.add_argument("--domain", choices=available_domains(), default=None,
                       help="abstract-domain backend for every job (part "
                            "of the cache key; default: $REPRO_DOMAIN or fm)")
    batch.add_argument("--prefilter", choices=("on", "off"), default=None,
                       help="interval pre-filter tier for every job (part "
                            "of the cache key; default: $REPRO_PREFILTER "
                            "or on)")
    batch.add_argument("--solver", choices=solver_choices(), default=None,
                       help="LP solver backend selector for every job (part "
                            "of the cache key; default: $REPRO_SOLVER or "
                            "auto)")
    batch.add_argument("--json", default=None,
                       help="also write the full result records to this file")
    batch.add_argument("--quiet", action="store_true")
    batch.add_argument("--no-degrade", action="store_true",
                       help="disable the graceful-degradation ladder "
                            "(domain fallback on resource-limit, one "
                            "lower-degree retry on timeout)")
    batch.add_argument("--retry-budget", type=int, default=None,
                       help="per-batch cap on supervised retries after "
                            "worker-pool breaks (default: 8)")
    batch.set_defaults(func=_cmd_batch, _subparser=batch)

    serve = subparsers.add_parser(
        "serve", help="serve analysis requests as JSON lines on "
                      "stdin/stdout, or over TCP with --async")
    serve.add_argument("--workers", type=int, default=0,
                       help="worker processes (stdio: for 'batch' requests; "
                            "--async: the supervised analysis pool, "
                            "0 = inline)")
    serve.add_argument("--cache-dir", default=None,
                       help="persistent result cache directory")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the persistent result cache")
    serve.add_argument("--degree-limit", type=int, default=None,
                       help="default auto-degree escalation limit for "
                            "requests that do not set one (part of the "
                            "job hash)")
    serve.add_argument("--domain", choices=available_domains(), default=None,
                       help="default abstract-domain backend for requests "
                            "that do not set one (part of the job hash)")
    serve.add_argument("--prefilter", choices=("on", "off"), default=None,
                       help="default interval pre-filter setting for "
                            "requests that do not set one (part of the "
                            "job hash)")
    serve.add_argument("--solver", choices=solver_choices(), default=None,
                       help="default LP solver backend selector for "
                            "requests that do not set one (part of the "
                            "job hash)")
    serve.add_argument("--async", dest="async_gateway", action="store_true",
                       help="run the concurrent TCP gateway (JSON lines, "
                            "request coalescing, tiered cache, "
                            "backpressure) instead of the stdio loop")
    serve.add_argument("--host", default=None,
                       help="gateway bind address (default: 127.0.0.1; "
                            "requires --async)")
    serve.add_argument("--port", type=int, default=None,
                       help="gateway TCP port (default: 9471, 0 = "
                            "ephemeral; requires --async)")
    serve.add_argument("--queue-limit", type=int, default=None,
                       help="jobs admitted but not yet resolved before "
                            "the gateway answers 'busy' (default: 64; "
                            "requires --async)")
    serve.add_argument("--hot-cache-size", type=int, default=None,
                       help="entries in the in-memory LRU above the disk "
                            "store, 0 disables the hot tier (default: "
                            "256; requires --async)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock budget in seconds "
                            "(requires --async and --workers >= 1)")
    serve.add_argument("--retry-budget", type=int, default=None,
                       help="supervised retry cap after worker-pool "
                            "breaks (requires --async)")
    serve.set_defaults(func=_cmd_serve, _subparser=serve)

    store = subparsers.add_parser(
        "store", help="inspect or prune the shared on-disk result cache")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_stats = store_sub.add_parser(
        "stats", help="record/byte/quarantine counts and hit rates")
    store_prune = store_sub.add_parser(
        "prune", help="evict records by age and/or total-size cap")
    store_prune.add_argument("--max-age", default=None,
                             help="evict records older than this "
                                  "(e.g. 90, 30m, 12h, 7d)")
    store_prune.add_argument("--max-bytes", default=None,
                             help="then evict oldest-first until the "
                                  "store fits this total (e.g. 100M, 2G)")
    for sub in (store_stats, store_prune):
        sub.add_argument("--cache-dir", default=None,
                         help="result cache directory (default: "
                              "$REPRO_CACHE_DIR or .repro-cache)")
        sub.add_argument("--json", action="store_true",
                         help="emit the report as JSON on stdout")
        sub.set_defaults(func=_cmd_store)

    lint = subparsers.add_parser(
        "lint", help="run the static diagnostics passes (no analysis)")
    lint.add_argument("targets", nargs="+",
                      help="directories of .imp files, single files, or "
                           "registry selectors (@all, names, globs)")
    lint.add_argument("--counter", default=None,
                      help="treat this global variable as the (zero-"
                           "initialized) resource counter in file targets; "
                           "registry benchmarks use their own option")
    lint.add_argument("--strict", action="store_true",
                      help="fail (exit 7) on warnings too, not just errors")
    lint.add_argument("--json", action="store_true",
                      help="emit one JSON report on stdout instead of text")
    lint.add_argument("--quiet", action="store_true",
                      help="do not print a line for clean targets")
    lint.set_defaults(func=_cmd_lint)

    listing = subparsers.add_parser("list", help="list the benchmark programs")
    listing.add_argument("--lint", action="store_true",
                         help="add a lint-summary column (clean, or "
                              "severity:count pairs)")
    listing.set_defaults(func=_cmd_list)
    return parser


def _validate_args(parser: argparse.ArgumentParser,
                   args: argparse.Namespace) -> None:
    """Cross-argument checks, reported as argparse usage errors (exit 2).

    ``--timeout`` needs a preemptable worker pool; catching the combination
    here (instead of deep inside ``run_batch``) gives the user the standard
    usage + message on stderr and the conventional exit code 2.
    """
    subparser = getattr(args, "_subparser", parser)
    if getattr(args, "timeout", None) is not None \
            and getattr(args, "workers", 1) < 1:
        subparser.error("--timeout requires --workers >= 1 (inline "
                        "execution cannot preempt a running job)")
    if args.command == "serve" and not args.async_gateway:
        for flag, name in ((args.host, "--host"), (args.port, "--port"),
                           (args.queue_limit, "--queue-limit"),
                           (args.hot_cache_size, "--hot-cache-size"),
                           (args.timeout, "--timeout"),
                           (args.retry_budget, "--retry-budget")):
            if flag is not None:
                subparser.error(f"{name} requires --async (the stdio loop "
                                f"has no gateway)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate_args(parser, args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
