"""Command-line front end (the Python counterpart of the ``absynth`` binary).

Usage::

    absynth-py analyze program.imp [--degree 2] [--counter cost] [--certificate]
    absynth-py simulate program.imp --input x=100 n=500 [--runs 1000]
    absynth-py bench [--group linear|polynomial|all] [--quick]
    absynth-py list

``analyze`` parses a program in the concrete syntax (see
:mod:`repro.lang.parser`), runs the expected-cost analysis and prints the
bound; ``simulate`` estimates the expected cost by sampling; ``bench``
regenerates Table 1.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.bench.registry import benchmark_names
from repro.core.analyzer import analyze_program
from repro.core.certificates import check_certificate
from repro.lang.parser import parse_program
from repro.semantics.sampler import estimate_expected_cost


def _parse_assignments(pairs: Sequence[str]) -> Dict[str, int]:
    state: Dict[str, int] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"invalid input assignment {pair!r}; expected name=value")
        name, _, value = pair.partition("=")
        state[name.strip()] = int(value)
    return state


def _load_program(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return parse_program(handle.read())


def _cmd_analyze(args: argparse.Namespace) -> int:
    program = _load_program(args.program)
    options = {"max_degree": args.degree, "auto_degree": not args.no_auto_degree}
    if args.counter:
        options["resource_counter"] = args.counter
    result = analyze_program(program, **options)
    if not result.success:
        print(f"no bound found: {result.message}")
        return 1
    print(f"expected cost bound: {result.bound}")
    print(f"degree: {result.degree}   analysis time: {result.time_seconds:.3f}s   "
          f"LP size: {result.lp_variables} variables / {result.lp_constraints} constraints")
    if args.certificate:
        problems = check_certificate(result.certificate)
        if problems:
            print("certificate check FAILED:")
            for problem in problems[:10]:
                print(f"  - {problem}")
            return 2
        print(f"certificate check passed "
              f"({len(result.certificate.points)} annotated program points, "
              f"{len(result.certificate.weakenings)} weakenings)")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    program = _load_program(args.program)
    state = _parse_assignments(args.input or [])
    stats = estimate_expected_cost(program, state, runs=args.runs, seed=args.seed)
    print(f"runs: {stats.runs}   mean cost: {stats.mean:.3f}   std: {stats.std:.3f}")
    print(f"min/q1/median/q3/max: {stats.minimum:.1f} / {stats.first_quartile:.1f} / "
          f"{stats.median:.1f} / {stats.third_quartile:.1f} / {stats.maximum:.1f}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import table1

    forwarded: List[str] = ["--group", args.group]
    if args.quick:
        forwarded.append("--quick")
    if args.no_simulation:
        forwarded.append("--no-simulation")
    if args.names:
        forwarded.extend(["--names", *args.names])
    return table1.main(forwarded)


def _cmd_list(_args: argparse.Namespace) -> int:
    for name in benchmark_names():
        print(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="absynth-py",
        description="Expected-cost bound analysis for probabilistic programs "
                    "(reproduction of PLDI 2018 'Bounded Expectations').")
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="infer an expected-cost bound")
    analyze.add_argument("program", help="path to a program in the concrete syntax")
    analyze.add_argument("--degree", type=int, default=1, help="maximal bound degree")
    analyze.add_argument("--no-auto-degree", action="store_true",
                         help="do not retry with a higher degree on failure")
    analyze.add_argument("--counter", default=None,
                         help="treat this global variable as the resource counter")
    analyze.add_argument("--certificate", action="store_true",
                         help="re-check the derivation certificate")
    analyze.set_defaults(func=_cmd_analyze)

    simulate = subparsers.add_parser("simulate", help="estimate the expected cost by sampling")
    simulate.add_argument("program")
    simulate.add_argument("--input", nargs="*", default=[], help="initial values, e.g. x=10 n=100")
    simulate.add_argument("--runs", type=int, default=1000)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(func=_cmd_simulate)

    bench = subparsers.add_parser("bench", help="regenerate Table 1")
    bench.add_argument("--group", choices=("all", "linear", "polynomial"), default="all")
    bench.add_argument("--names", nargs="*", default=None)
    bench.add_argument("--quick", action="store_true")
    bench.add_argument("--no-simulation", action="store_true")
    bench.set_defaults(func=_cmd_bench)

    listing = subparsers.add_parser("list", help="list the benchmark programs")
    listing.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
