"""The expected potential method: derivation system, LP inference, bounds.

This package is the reproduction of the paper's primary contribution
(Sections 4, 5 and 7): automatic inference of symbolic upper bounds on the
expected resource consumption of probabilistic programs by

1. fixing the shape of potential functions to linear combinations of base
   functions (monomials over interval atoms, :mod:`repro.core.basegen`),
2. applying the derivation rules of Fig. 6 backwards over the program while
   collecting linear constraints over the unknown coefficients
   (:mod:`repro.core.derivation`, :mod:`repro.core.annotations`),
3. justifying weakenings with non-negative rewrite functions
   (:mod:`repro.core.rewrite`),
4. solving the resulting linear program with an off-the-shelf LP solver and
   the paper's iterative degree-by-degree objective
   (:mod:`repro.core.solver`),
5. reporting the bound (:mod:`repro.core.bounds`) together with a checkable
   derivation certificate (:mod:`repro.core.certificates`).

The top-level entry point is :class:`repro.core.analyzer.ExpectedCostAnalyzer`
(or the convenience function :func:`repro.core.analyzer.analyze_program`).
"""

from repro.core.analyzer import AnalysisResult, AnalyzerConfig, ExpectedCostAnalyzer, analyze_program
from repro.core.bounds import ExpectedBound

__all__ = [
    "AnalysisResult",
    "AnalyzerConfig",
    "ExpectedCostAnalyzer",
    "analyze_program",
    "ExpectedBound",
]
