"""The top-level expected-cost analyzer (the Python "Absynth").

:class:`ExpectedCostAnalyzer` wires the pipeline of the paper together
(see :mod:`repro.core.pipeline` for the staged implementation):

1. *prepare*: resource-counter lowering, inlining of non-recursive calls
   (:mod:`repro.lang.transform`) and abstract interpretation
   (:mod:`repro.logic.absint`) -- degree independent, computed once;
2. *templates + derivation*: loop-invariant/branch-join/procedure templates
   plus the derivation rules of Fig. 6 (:mod:`repro.core.derivation`),
   built incrementally degree by degree;
3. *LP solving* with the iterative degree-by-degree objective over an
   in-place-grown assembly (:mod:`repro.core.solver`);
4. *bound extraction* and certificate construction
   (:mod:`repro.core.bounds`, :mod:`repro.core.certificates`).

If no bound exists within the chosen maximal degree the analyzer can
optionally retry with a higher degree (``auto_degree``), mirroring how users
drive Absynth by specifying a maximal degree.  Retries are *incremental*:
the degree-``d`` derivation and LP are extended in place instead of being
rebuilt (the escalated system is byte-identical to a cold run at the higher
degree by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple, TYPE_CHECKING

from repro.core.basegen import BaseGenConfig
from repro.core.bounds import ExpectedBound
from repro.core.certificates import Certificate
from repro.lang import ast
from repro.lang.errors import NoBoundFoundError
from repro.utils.linear import LinExpr

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.pipeline import PipelineStats
    from repro.lang.analysis import Diagnostic


@dataclass
class AnalyzerConfig:
    """User-facing knobs of the analysis."""

    #: Maximal degree of the inferred polynomial bound.
    max_degree: int = 1
    #: Abstract-domain backend answering entailment queries: ``"fm"``
    #: (Fourier-Motzkin, the default), ``"polyhedra"`` (generator
    #: representation / Chernikova), or ``None`` for the process default
    #: (``$REPRO_DOMAIN`` or ``fm``).  Part of the service job hash, so the
    #: result store never serves one domain's results to the other.
    domain: Optional[str] = None
    #: LP solver backend answering the assembled linear programs:
    #: ``"auto"`` (native ``highspy`` when importable, SciPy otherwise),
    #: ``"highs"`` (require the native warm-started session), ``"scipy"``
    #: (always-available ``linprog`` reference path), or ``None`` for the
    #: process default (``$REPRO_SOLVER`` or ``auto``).  Hashed into the
    #: service job key like ``domain`` (the *selector*, not the machine-
    #: dependent resolution, so ``auto`` keys identically everywhere --
    #: backends are byte-identical by the warm/cold identity pin).
    solver: Optional[str] = None
    #: Front the exact domain with the interval pre-filter tier
    #: (:mod:`repro.logic.intervals`): ``True``/``False``, or ``None`` for
    #: the process default (``$REPRO_PREFILTER`` or on).  Observational --
    #: bounds and certificates are byte-identical either way (the tier only
    #: answers when it provably matches the exact backend) -- but hashed
    #: into the service job key like ``domain`` so provenance is explicit.
    prefilter: Optional[bool] = None
    #: Retry with higher degrees (up to ``degree_limit``) when no bound is found.
    auto_degree: bool = True
    degree_limit: int = 2
    #: Inline non-recursive procedure calls before the analysis.
    inline: bool = True
    #: Interpret this global variable as the resource counter (``cost``).
    resource_counter: Optional[str] = None
    #: Extra interval atoms (``max(0, expr)``) supplied by the user as hints.
    hint_atoms: Tuple[LinExpr, ...] = ()
    #: Base-function heuristic limits (see :class:`BaseGenConfig`).
    atom_limit: int = 40
    monomial_limit: int = 600
    max_offsets: int = 16
    #: LP tolerance used when fixing intermediate objectives.
    lp_tolerance: float = 1e-7
    #: Coefficients below this magnitude are treated as floating-point noise.
    coefficient_epsilon: float = 1e-6
    #: Run the static lint passes (:mod:`repro.lang.analysis`) before the
    #: derivation.  Diagnostics are attached to the result in every case;
    #: error-severity diagnostics abort the analysis with
    #: ``failure_kind="lint-error"``.  For accepted programs the gate is
    #: observe-only: bounds and certificates are byte-identical to a run
    #: without it.
    preflight: bool = False

    def basegen(self, degree: int) -> BaseGenConfig:
        return BaseGenConfig(max_degree=degree,
                             max_offsets=self.max_offsets,
                             atom_limit=self.atom_limit,
                             monomial_limit=self.monomial_limit,
                             hint_atoms=tuple(self.hint_atoms))


@dataclass
class AnalysisResult:
    """Outcome of one analysis run.

    ``time_seconds`` is the wall time of the attempt that produced this
    result (the successful degree, or the last failed one);
    ``total_seconds`` covers the whole analysis including preparation and
    earlier failed attempts.  ``stats`` carries the per-stage breakdown
    (:class:`~repro.core.pipeline.PipelineStats`).
    """

    success: bool
    bound: Optional[ExpectedBound]
    degree: int
    time_seconds: float
    lp_variables: int
    lp_constraints: int
    certificate: Optional[Certificate] = None
    message: str = ""
    #: ``""`` on success; ``"no-bound"`` when the LP is infeasible for every
    #: attempted degree; ``"analysis-error"`` when the derivation could not
    #: even be set up (lowering failures, unsupported constructs, ...);
    #: ``"resource-limit"`` when the backend ran out of resources (the
    #: Fourier-Motzkin constraint cap) -- a failure of the *backend*, not
    #: the program, so the service layer may retry under another domain.
    #: Front ends map these to distinct exit codes.
    failure_kind: str = ""
    total_seconds: float = 0.0
    stats: Optional["PipelineStats"] = None
    #: Lint diagnostics from the pre-flight gate (empty unless
    #: ``AnalyzerConfig.preflight`` was enabled).
    diagnostics: Tuple["Diagnostic", ...] = ()

    def require_bound(self) -> ExpectedBound:
        if not self.success or self.bound is None:
            raise NoBoundFoundError(self.message or "no bound was found")
        return self.bound

    def __repr__(self) -> str:
        if self.success and self.bound is not None:
            return (f"AnalysisResult(bound={self.bound.pretty()!r}, "
                    f"degree={self.degree}, time={self.time_seconds:.3f}s)")
        return f"AnalysisResult(failure: {self.message!r})"


class ExpectedCostAnalyzer:
    """Derives upper bounds on the expected resource usage of a program."""

    def __init__(self, program: ast.Program,
                 config: Optional[AnalyzerConfig] = None, **overrides) -> None:
        self.program = program
        base = config if config is not None else AnalyzerConfig()
        if overrides:
            base = replace(base, **overrides)
        self.config = base

    # -- public API ----------------------------------------------------------------

    def analyze(self) -> AnalysisResult:
        """Run the staged pipeline, escalating the degree incrementally.

        With ``preflight`` enabled the lint passes run first: error-severity
        diagnostics stop the analysis (``failure_kind="lint-error"``);
        otherwise the diagnostics ride along on the result and the pipeline
        runs exactly as without the gate.
        """
        from repro.core.pipeline import AnalysisPipeline

        diagnostics: Tuple["Diagnostic", ...] = ()
        if self.config.preflight:
            import time

            from repro.lang.analysis import lint_program

            # The resource counter is zero-initialized by convention, so
            # counter updates such as ``cost = cost + s`` are not
            # uninitialized reads.
            initial = set(self.program.main_procedure.params)
            if self.config.resource_counter:
                initial.add(self.config.resource_counter)
            start = time.perf_counter()
            diagnostics = tuple(lint_program(self.program,
                                             initial_state=initial))
            elapsed = time.perf_counter() - start
            errors = [diag for diag in diagnostics
                      if diag.severity == "error"]
            if errors:
                return AnalysisResult(
                    success=False, bound=None, degree=0,
                    time_seconds=elapsed, lp_variables=0, lp_constraints=0,
                    message="pre-flight lint rejected the program: "
                            + errors[0].format(),
                    failure_kind="lint-error", total_seconds=elapsed,
                    diagnostics=diagnostics)
        result = AnalysisPipeline(self.program, self.config).run()
        if diagnostics:
            result.diagnostics = diagnostics
        return result


def analyze_program(program: ast.Program, **options) -> AnalysisResult:
    """Convenience wrapper: ``analyze_program(prog, max_degree=2, ...)``."""
    return ExpectedCostAnalyzer(program, **options).analyze()


def analyze_source(source: str, **options) -> AnalysisResult:
    """Parse concrete syntax and analyze it: the pure batch entry point.

    A module-level function of picklable inputs (source text + keyword
    options) and a picklable :class:`AnalysisResult`, so it can be shipped
    to worker processes by :mod:`repro.service.scheduler` as-is.
    :class:`~repro.lang.errors.ParseError` propagates to the caller.
    """
    from repro.lang.parser import parse_program

    return ExpectedCostAnalyzer(parse_program(source), **options).analyze()
