"""The top-level expected-cost analyzer (the Python "Absynth").

:class:`ExpectedCostAnalyzer` wires the pipeline of the paper together:

1. *front-end transformations*: optional resource-counter lowering and
   inlining of non-recursive calls (:mod:`repro.lang.transform`);
2. *abstract interpretation* to obtain logical contexts at every program
   point (:mod:`repro.logic.absint`);
3. *constraint generation*: templates for loop invariants, branch joins and
   procedure specifications plus the derivation rules of Fig. 6
   (:mod:`repro.core.derivation`);
4. *LP solving* with the iterative degree-by-degree objective
   (:mod:`repro.core.solver`);
5. *bound extraction* and certificate construction
   (:mod:`repro.core.bounds`, :mod:`repro.core.certificates`).

If no bound exists within the chosen maximal degree the analyzer can
optionally retry with a higher degree (``auto_degree``), mirroring how users
drive Absynth by specifying a maximal degree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.annotations import PotentialAnnotation
from repro.core.basegen import BaseGenConfig, template_monomials_for_procedure
from repro.core.bounds import ExpectedBound
from repro.core.certificates import Certificate, build_certificate
from repro.core.constraints import AffExpr, ConstraintSystem
from repro.core.derivation import DerivationBuilder
from repro.core.solver import IterativeMinimizer, LPSolution
from repro.core.specs import ProcedureSpec, SpecContext
from repro.lang import ast
from repro.lang.errors import AnalysisError, NoBoundFoundError
from repro.lang.transform import counter_as_resource, inline_calls, modified_variables
from repro.logic.absint import AbstractInterpreter
from repro.logic.contexts import Context
from repro.utils.linear import LinExpr
from repro.utils.polynomials import Monomial, Polynomial


@dataclass
class AnalyzerConfig:
    """User-facing knobs of the analysis."""

    #: Maximal degree of the inferred polynomial bound.
    max_degree: int = 1
    #: Retry with higher degrees (up to ``degree_limit``) when no bound is found.
    auto_degree: bool = True
    degree_limit: int = 2
    #: Inline non-recursive procedure calls before the analysis.
    inline: bool = True
    #: Interpret this global variable as the resource counter (``cost``).
    resource_counter: Optional[str] = None
    #: Extra interval atoms (``max(0, expr)``) supplied by the user as hints.
    hint_atoms: Tuple[LinExpr, ...] = ()
    #: Base-function heuristic limits (see :class:`BaseGenConfig`).
    atom_limit: int = 40
    monomial_limit: int = 600
    max_offsets: int = 16
    #: LP tolerance used when fixing intermediate objectives.
    lp_tolerance: float = 1e-7
    #: Coefficients below this magnitude are treated as floating-point noise.
    coefficient_epsilon: float = 1e-6

    def basegen(self, degree: int) -> BaseGenConfig:
        return BaseGenConfig(max_degree=degree,
                             max_offsets=self.max_offsets,
                             atom_limit=self.atom_limit,
                             monomial_limit=self.monomial_limit,
                             hint_atoms=tuple(self.hint_atoms))


@dataclass
class AnalysisResult:
    """Outcome of one analysis run."""

    success: bool
    bound: Optional[ExpectedBound]
    degree: int
    time_seconds: float
    lp_variables: int
    lp_constraints: int
    certificate: Optional[Certificate] = None
    message: str = ""
    #: ``""`` on success; ``"no-bound"`` when the LP is infeasible for every
    #: attempted degree; ``"analysis-error"`` when the derivation could not
    #: even be set up (lowering failures, unsupported constructs, ...).
    #: Front ends map these to distinct exit codes.
    failure_kind: str = ""

    def require_bound(self) -> ExpectedBound:
        if not self.success or self.bound is None:
            raise NoBoundFoundError(self.message or "no bound was found")
        return self.bound

    def __repr__(self) -> str:
        if self.success and self.bound is not None:
            return (f"AnalysisResult(bound={self.bound.pretty()!r}, "
                    f"degree={self.degree}, time={self.time_seconds:.3f}s)")
        return f"AnalysisResult(failure: {self.message!r})"


class ExpectedCostAnalyzer:
    """Derives upper bounds on the expected resource usage of a program."""

    def __init__(self, program: ast.Program,
                 config: Optional[AnalyzerConfig] = None, **overrides) -> None:
        self.program = program
        base = config if config is not None else AnalyzerConfig()
        if overrides:
            base = replace(base, **overrides)
        self.config = base

    # -- public API ----------------------------------------------------------------

    def analyze(self) -> AnalysisResult:
        """Run the analysis, possibly retrying with a higher degree."""
        start = time.perf_counter()
        degrees = [self.config.max_degree]
        if self.config.auto_degree:
            degrees += list(range(self.config.max_degree + 1,
                                  self.config.degree_limit + 1))
        last_failure: Optional[AnalysisResult] = None
        for degree in degrees:
            result = self._attempt(degree)
            result = replace(result, time_seconds=time.perf_counter() - start)
            if result.success:
                return result
            last_failure = result
        assert last_failure is not None
        return last_failure

    # -- one attempt at a fixed degree ----------------------------------------------------

    def _prepare_program(self) -> ast.Program:
        program = self.program
        if self.config.resource_counter:
            program = counter_as_resource(program, self.config.resource_counter)
        if self.config.inline:
            program = inline_calls(program)
        return program

    def _attempt(self, degree: int) -> AnalysisResult:
        try:
            program = self._prepare_program()
        except AnalysisError as exc:
            return AnalysisResult(False, None, degree, 0.0, 0, 0, None, str(exc),
                                  failure_kind="analysis-error")

        interpreter = AbstractInterpreter(program)
        interpreter.analyze_procedure(program.main)
        recursive = sorted(program.recursive_procedures())
        for name in recursive:
            interpreter.analyze_procedure(name)

        system = ConstraintSystem()
        basegen_config = self.config.basegen(degree)
        specs = SpecContext()
        builder = DerivationBuilder(program, interpreter, system, basegen_config, specs)

        try:
            # Specifications for (mutually) recursive procedures.
            for name in recursive:
                proc = program.procedures[name]
                entry_context = interpreter.context_before(proc.body)
                monomials = template_monomials_for_procedure(
                    proc.body, entry_context, basegen_config)
                pre = PotentialAnnotation.template(system, monomials,
                                                   f"spec_{name}", nonneg=True)
                specs.register(ProcedureSpec(
                    name=name, pre=pre, post=PotentialAnnotation.zero(),
                    modified_variables=modified_variables(program, name)))
            for name in recursive:
                builder.constrain_specification(name)

            initial = builder.analyze_command(program.main_procedure.body,
                                              PotentialAnnotation.zero())
        except AnalysisError as exc:
            return AnalysisResult(False, None, degree, 0.0,
                                  system.num_variables, system.num_constraints,
                                  None, str(exc), failure_kind="analysis-error")

        objectives = self._objectives(initial)
        solver = IterativeMinimizer(system, tolerance=self.config.lp_tolerance)
        solution = solver.solve(objectives)
        if solution is None:
            return AnalysisResult(
                False, None, degree, 0.0,
                system.num_variables, system.num_constraints, None,
                f"the LP is infeasible for degree {degree} "
                "(no bound exists for the chosen base functions)",
                failure_kind="no-bound")

        bound_poly = self._extract_bound(initial, solution)
        certificate = build_certificate(bound_poly, builder.steps, builder.weakens,
                                        solution.assignment)
        return AnalysisResult(True, ExpectedBound(bound_poly), degree, 0.0,
                              system.num_variables, system.num_constraints,
                              certificate, "")

    # -- objective construction ---------------------------------------------------------------

    #: Reference scale and sample count for the objective weights.  The range
    #: is asymmetric because the paper's benchmarks (and inputs in general)
    #: are predominantly non-negative; a small negative tail keeps atoms such
    #: as ``|[n, 0]|`` from being weightless.
    _WEIGHT_SAMPLES = 300
    _WEIGHT_LOW = -250
    _WEIGHT_HIGH = 1000
    _WEIGHT_SEED = 12345

    def _weight_matrix(self, variables: Sequence[str]) -> "np.ndarray":
        """Deterministic pseudo-random reference states, one row per sample.

        The single vectorised ``integers`` call draws the exact same stream
        as per-variable scalar draws, so the reference states themselves are
        reproducible.  The downstream weighting evaluates monomials in
        float64 (rather than exact rationals converted at the end), so
        weights may differ in the last ulp for non-dyadic coefficients
        before ``limit_denominator`` snaps them.
        """
        import numpy as np

        rng = np.random.default_rng(self._WEIGHT_SEED)
        samples = rng.integers(self._WEIGHT_LOW, self._WEIGHT_HIGH + 1,
                               size=(self._WEIGHT_SAMPLES, len(variables)))
        return samples.astype(np.float64)

    def _objectives(self, initial: PotentialAnnotation) -> List[AffExpr]:
        """One weighted objective per degree, highest degree first.

        The LP minimises the bound itself, so each base function is weighted
        by its average magnitude over a set of reference input states (the
        paper weighs larger intervals more for the same reason: the objective
        should reflect how much each base function contributes to the bound's
        value).  Coefficients of higher-degree base functions are minimised
        first, then fixed, following the paper's iterative scheme.  Monomial
        magnitudes are evaluated with NumPy over the whole sample matrix at
        once, caching the shared ``max(0, D)`` atom columns.
        """
        import numpy as np

        variables = sorted({var for monomial in initial.terms
                            for var in monomial.variables()})
        column: Dict[str, int] = {var: i for i, var in enumerate(variables)}
        states = self._weight_matrix(variables) if variables else None
        atom_values: Dict[object, "np.ndarray"] = {}

        def values_of(atom) -> "np.ndarray":
            values = atom_values.get(atom)
            if values is None:
                coeffs = np.zeros(len(variables))
                for var, coeff in atom.diff.coeff_items:
                    coeffs[column[var]] = float(coeff)
                values = np.maximum(0.0, states @ coeffs
                                    + float(atom.diff.const_term))
                atom_values[atom] = values
            return values

        by_degree: Dict[int, AffExpr] = {}
        for monomial, coeff in initial.terms.items():
            degree = monomial.degree()
            if monomial.is_constant() or states is None:
                weight = Fraction(1)
            else:
                magnitudes = np.ones(self._WEIGHT_SAMPLES)
                for atom, power in monomial.factors:
                    magnitudes = magnitudes * values_of(atom) ** power
                mean = float(magnitudes.sum()) / self._WEIGHT_SAMPLES
                weight = Fraction(max(1.0, mean)).limit_denominator(1000)
            weighted = coeff * weight
            by_degree[degree] = by_degree.get(degree, AffExpr.zero()) + weighted
        return [by_degree[d] for d in sorted(by_degree, reverse=True)]

    # -- bound extraction --------------------------------------------------------------------------

    def _extract_bound(self, initial: PotentialAnnotation,
                       solution: LPSolution) -> Polynomial:
        polynomial = initial.instantiate(solution.assignment)
        cleaned = {monomial: coeff for monomial, coeff in polynomial.terms.items()
                   if abs(float(coeff)) > self.config.coefficient_epsilon}
        return Polynomial(cleaned)


def analyze_program(program: ast.Program, **options) -> AnalysisResult:
    """Convenience wrapper: ``analyze_program(prog, max_degree=2, ...)``."""
    return ExpectedCostAnalyzer(program, **options).analyze()


def analyze_source(source: str, **options) -> AnalysisResult:
    """Parse concrete syntax and analyze it: the pure batch entry point.

    A module-level function of picklable inputs (source text + keyword
    options) and a picklable :class:`AnalysisResult`, so it can be shipped
    to worker processes by :mod:`repro.service.scheduler` as-is.
    :class:`~repro.lang.errors.ParseError` propagates to the caller.
    """
    from repro.lang.parser import parse_program

    return ExpectedCostAnalyzer(parse_program(source), **options).analyze()
