"""Potential annotations: symbolic-coefficient linear combinations of base functions.

A potential annotation ``Q`` (paper Sec. 4.1) assigns to every base function
(a :class:`~repro.utils.polynomials.Monomial`) a coefficient.  During
constraint generation the coefficients are *symbolic*: affine expressions
over LP variables (:class:`~repro.core.constraints.AffExpr`).  The vector
space structure of annotations (``Q:PIf`` takes weighted sums, ``Q:Tick``
shifts the constant coefficient, ``Q:Assign`` applies an exact substitution)
is implemented directly on this representation.

After the LP has been solved an annotation can be *instantiated* into a
concrete :class:`~repro.utils.polynomials.Polynomial` potential function.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.core.constraints import AffExpr, ConstraintSystem, LPVar
from repro.utils.linear import LinExpr
from repro.utils.polynomials import Monomial, Polynomial
from repro.utils.rationals import Number, to_fraction

CoeffLike = Union[AffExpr, Number]


def _as_coeff(value: CoeffLike) -> AffExpr:
    if isinstance(value, AffExpr):
        return value
    return AffExpr.constant(value)


class PotentialAnnotation:
    """A map from monomials to symbolic coefficients."""

    __slots__ = ("_terms",)

    def __init__(self, terms: Optional[Mapping[Monomial, CoeffLike]] = None) -> None:
        clean: Dict[Monomial, AffExpr] = {}
        if terms:
            for monomial, coeff in terms.items():
                expr = _as_coeff(coeff)
                if not expr.is_zero():
                    existing = clean.get(monomial)
                    clean[monomial] = expr if existing is None else existing + expr
        self._terms = clean

    # -- constructors ------------------------------------------------------------

    @classmethod
    def zero(cls) -> "PotentialAnnotation":
        return cls()

    @classmethod
    def constant(cls, value: CoeffLike) -> "PotentialAnnotation":
        return cls({Monomial.one(): value})

    @classmethod
    def of_polynomial(cls, polynomial: Polynomial) -> "PotentialAnnotation":
        return cls({monomial: coeff for monomial, coeff in polynomial.terms.items()})

    @classmethod
    def template(cls, system: ConstraintSystem, monomials: Iterable[Monomial],
                 name: str, nonneg: bool = True) -> "PotentialAnnotation":
        """Create a fresh template: one LP variable per base function.

        Non-constant coefficients are declared non-negative (potential
        functions are non-negative linear combinations of non-negative base
        functions); the constant coefficient is non-negative as well, matching
        the implicit ``Q >= 0`` side conditions of the derivation rules at
        junction points.
        """
        terms: Dict[Monomial, AffExpr] = {}
        ordered = sorted(set(monomials), key=lambda m: m.sort_key())
        if Monomial.one() not in ordered:
            ordered.insert(0, Monomial.one())
        for position, monomial in enumerate(ordered):
            label = f"{name}[{monomial}]"
            terms[monomial] = system.new_var(label, nonneg=nonneg)
        return cls(terms)

    @classmethod
    def extend_template(cls, system: ConstraintSystem,
                        base: "PotentialAnnotation",
                        monomials: Iterable[Monomial], name: str,
                        nonneg: bool = True
                        ) -> Tuple["PotentialAnnotation", "PotentialAnnotation"]:
        """Degree-monotone template growth: ``(merged, delta)``.

        Reuses the LP variables of ``base`` for every base function it
        already covers and mints fresh variables only for the new monomials
        (the degree-``d+1`` products added by escalation).  The ``delta``
        part carries exclusively new variables, which is what keeps the
        extension constraints of :class:`~repro.core.derivation`
        append-only.  Base monomials are kept even when absent from the
        candidate list, so templates never shrink across degrees.
        """
        known = set(base._terms)
        fresh = sorted({m for m in monomials if m not in known},
                       key=lambda m: m.sort_key())
        delta_terms: Dict[Monomial, AffExpr] = {
            monomial: system.new_var(f"{name}[{monomial}]", nonneg=nonneg)
            for monomial in fresh}
        delta = cls(delta_terms)
        return base.plus(delta), delta

    # -- accessors -------------------------------------------------------------------

    @property
    def terms(self) -> Dict[Monomial, AffExpr]:
        return dict(self._terms)

    def coefficient(self, monomial: Monomial) -> AffExpr:
        return self._terms.get(monomial, AffExpr.zero())

    def constant_coefficient(self) -> AffExpr:
        return self.coefficient(Monomial.one())

    def monomials(self) -> Tuple[Monomial, ...]:
        return tuple(sorted(self._terms, key=lambda m: m.sort_key()))

    def degree(self) -> int:
        if not self._terms:
            return 0
        return max(monomial.degree() for monomial in self._terms)

    def is_zero(self) -> bool:
        return not self._terms

    # -- vector-space operations ----------------------------------------------------------

    def plus(self, other: "PotentialAnnotation") -> "PotentialAnnotation":
        terms: Dict[Monomial, AffExpr] = dict(self._terms)
        for monomial, coeff in other._terms.items():
            existing = terms.get(monomial)
            terms[monomial] = coeff if existing is None else existing + coeff
        return PotentialAnnotation(terms)

    def __add__(self, other: "PotentialAnnotation") -> "PotentialAnnotation":
        return self.plus(other)

    def scale(self, factor: Number) -> "PotentialAnnotation":
        frac = to_fraction(factor)
        if frac == 0:
            return PotentialAnnotation.zero()
        return PotentialAnnotation(
            {monomial: coeff * frac for monomial, coeff in self._terms.items()})

    def add_constant(self, amount: CoeffLike) -> "PotentialAnnotation":
        """``Q + q`` in the paper's notation: shift the constant coefficient."""
        terms = dict(self._terms)
        one = Monomial.one()
        terms[one] = self.coefficient(one) + _as_coeff(amount)
        return PotentialAnnotation(terms)

    def add_polynomial(self, polynomial: Polynomial,
                       scale: CoeffLike = 1) -> "PotentialAnnotation":
        """Add ``scale * polynomial`` (polynomial has rational coefficients)."""
        scale_expr = _as_coeff(scale)
        terms = dict(self._terms)
        for monomial, coeff in polynomial.terms.items():
            contribution = scale_expr * coeff
            existing = terms.get(monomial)
            terms[monomial] = contribution if existing is None else existing + contribution
        return PotentialAnnotation(terms)

    @staticmethod
    def weighted_sum(parts: Sequence[Tuple[Number, "PotentialAnnotation"]]
                     ) -> "PotentialAnnotation":
        """``sum(p_i * Q_i)`` -- used by ``Q:PIf`` and ``Q:Sample``."""
        total = PotentialAnnotation.zero()
        for weight, annotation in parts:
            total = total.plus(annotation.scale(weight))
        return total

    # -- program-state substitution (Q:Assign) -----------------------------------------------

    def substitute(self, var: str, replacement: LinExpr) -> "PotentialAnnotation":
        """Exact ``Q[replacement / var]``: substitute inside every base function."""
        terms: Dict[Monomial, AffExpr] = {}
        for monomial, coeff in self._terms.items():
            scale, new_monomial = monomial.substitute(var, replacement)
            if scale == 0:
                continue
            contribution = coeff * scale
            existing = terms.get(new_monomial)
            terms[new_monomial] = contribution if existing is None \
                else existing + contribution
        return PotentialAnnotation(terms)

    def drop_monomials_with_variable(self, var: str,
                                     system: ConstraintSystem,
                                     origin: str = "",
                                     rows: Optional[Dict[Monomial, int]] = None
                                     ) -> "PotentialAnnotation":
        """Force coefficients of base functions mentioning ``var`` to zero.

        Used when an assignment cannot be tracked (non-linear right-hand
        side): the continuation potential must not depend on the overwritten
        variable.  When ``rows`` is given, the emitted constraint indices
        are recorded per monomial so degree escalation can extend exactly
        these rows instead of re-deriving them.
        """
        kept: Dict[Monomial, AffExpr] = {}
        for monomial, coeff in self._terms.items():
            if var in monomial.variables():
                index = system.add_eq(coeff, 0, origin=origin or f"drop[{var}]")
                if rows is not None and index is not None:
                    rows[monomial] = index
            else:
                kept[monomial] = coeff
        return PotentialAnnotation(kept)

    # -- solution extraction ------------------------------------------------------------------

    def instantiate(self, assignment: Mapping[LPVar, Union[float, Fraction]]
                    ) -> Polynomial:
        """Evaluate the symbolic coefficients under an LP solution."""
        terms: Dict[Monomial, Fraction] = {}
        for monomial, coeff in self._terms.items():
            value = coeff.evaluate(assignment)
            if value != 0:
                terms[monomial] = value
        return Polynomial(terms)

    # -- rendering ---------------------------------------------------------------------------

    def __repr__(self) -> str:
        if not self._terms:
            return "PotentialAnnotation(0)"
        inner = " + ".join(f"({coeff})*{monomial}"
                           for monomial, coeff in sorted(
                               self._terms.items(), key=lambda kv: kv[0].sort_key()))
        return f"PotentialAnnotation({inner})"
