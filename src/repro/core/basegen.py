"""Heuristic generation of base functions (paper Sec. 7.1).

The analysis needs, at every *junction point* (loop head, branch join,
procedure boundary), a finite template of base functions over which the
unknown potential is expressed.  The heuristic mirrors Absynth's:

* the abstract interpreter's linear inequalities and the guards of the loop
  contribute interval atoms ``|[L, U]| = max(0, U - L)``;
* atoms are *widened* by constant offsets drawn from the constants occurring
  in the loop body (increments, distribution ranges, comparison constants),
  which yields the ``|[h, t+9]|``-style base functions needed when sampled
  increments can overshoot a guard;
* ``|[0, x]|`` and ``|[x, 0]|`` are added for every variable modified in the
  loop;
* the base functions of the continuation (post-annotation) are always
  included so potential can flow through the loop;
* finally all monomials up to the requested degree are formed.

User-provided *hints* (extra interval atoms) are honoured exactly like the
paper's hint mechanism: they are simply added to the atom pool and never
compromise soundness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from itertools import combinations_with_replacement
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.lang import ast
from repro.lang.errors import LoweringError
from repro.logic.conditions import facts_from_condition
from repro.logic.contexts import Context
from repro.utils.linear import LinExpr
from repro.utils.polynomials import IntervalAtom, Monomial, atom_product


@dataclass
class BaseGenConfig:
    """Tunables of the base-function heuristic."""

    max_degree: int = 1
    #: Maximum number of distinct offsets applied to each seed atom.
    max_offsets: int = 16
    #: Hard cap on the number of atoms per template.
    atom_limit: int = 40
    #: Hard cap on the number of monomials per template.
    monomial_limit: int = 600
    #: Extra interval atoms supplied by the user (``repro`` hint mechanism).
    hint_atoms: Tuple[LinExpr, ...] = ()


def _normalise_atom(diff: LinExpr) -> Optional[IntervalAtom]:
    scale, atom = atom_product(diff)
    del scale
    return atom


def _collect_constants(command: ast.Command) -> Set[int]:
    """Constants occurring in assignments, guards and distributions of a loop body."""
    constants: Set[int] = set()

    def from_expr(expr: ast.Expr) -> None:
        if isinstance(expr, ast.Const):
            value = expr.value
            if value.denominator == 1:
                constants.add(abs(int(value)))
        for child in expr.children():
            from_expr(child)

    for node in command.iter_nodes():
        if isinstance(node, (ast.If, ast.While, ast.Assert, ast.Assume)):
            from_expr(node.condition)
        if isinstance(node, ast.Assign):
            from_expr(node.expr)
        if isinstance(node, ast.Sample):
            from_expr(node.expr)
            support = node.distribution.support()
            values = [value for value, _ in support]
            constants.add(abs(max(values)))
            constants.add(abs(min(values)))
            constants.add(max(values) - min(values))
        if isinstance(node, ast.Tick) and not node.is_constant:
            from_expr(node.amount)
    constants.discard(0)
    return constants


def _offset_candidates(body: ast.Command, config: BaseGenConfig) -> List[int]:
    """Offsets by which guard atoms are widened."""
    constants = _collect_constants(body)
    small = sorted(c for c in constants if c <= 64)
    offsets: Set[int] = {0}
    # Dense small offsets cover sampled-increment overshoot (e.g. unif(0,10)).
    dense_limit = min(max(small, default=1), 12)
    offsets.update(range(0, dense_limit + 1))
    # Sparse larger offsets cover explicit constants (e.g. thresholds of 50/100).
    for constant in small:
        offsets.update({constant - 1, constant, constant + 1})
    for first in small:
        for second in small:
            if first + second <= 128:
                offsets.add(first + second)
    cleaned = sorted(o for o in offsets if o >= 0)
    if len(cleaned) > config.max_offsets:
        # Keep the small dense ones and the largest few.
        head = cleaned[:config.max_offsets - 4]
        tail = cleaned[-4:]
        cleaned = sorted(set(head + tail))
    return cleaned


def _first_use_kind(command: ast.Command, var: str) -> str:
    """How ``command`` first touches ``var``: 'defined', 'read' or 'transparent'.

    'defined' means every execution path assigns ``var`` before reading it;
    'read' means some path may read it first; 'transparent' means the command
    neither reads nor (definitely) defines it.
    """
    def reads(expr: ast.Expr) -> bool:
        return var in expr.variables()

    if isinstance(command, (ast.Skip, ast.Abort, ast.Call)):
        return "transparent"
    if isinstance(command, (ast.Assert, ast.Assume)):
        return "read" if reads(command.condition) else "transparent"
    if isinstance(command, ast.Tick):
        if not command.is_constant and reads(command.amount):
            return "read"
        return "transparent"
    if isinstance(command, (ast.Assign, ast.Sample)):
        if reads(command.expr):
            return "read"
        return "defined" if command.target == var else "transparent"
    if isinstance(command, ast.Seq):
        for sub in command.commands:
            kind = _first_use_kind(sub, var)
            if kind != "transparent":
                return kind
        return "transparent"
    if isinstance(command, ast.If):
        if reads(command.condition):
            return "read"
        kinds = {_first_use_kind(command.then_branch, var),
                 _first_use_kind(command.else_branch, var)}
        if "read" in kinds:
            return "read"
        if kinds == {"defined"}:
            return "defined"
        return "transparent"
    if isinstance(command, (ast.NonDetChoice, ast.ProbChoice)):
        kinds = {_first_use_kind(command.left, var),
                 _first_use_kind(command.right, var)}
        if "read" in kinds:
            return "read"
        if kinds == {"defined"}:
            return "defined"
        return "transparent"
    if isinstance(command, ast.While):
        if reads(command.condition):
            return "read"
        if _first_use_kind(command.body, var) == "read":
            return "read"
        return "transparent"
    return "read"


def dead_at_loop_head(loop: ast.While, var: str) -> bool:
    """Whether ``var`` is definitely overwritten before being read in the body.

    Such a variable cannot carry potential across the loop head, so interval
    atoms mentioning it are pointless in the loop-invariant template (e.g.
    ``nShares`` in the outer loop of the paper's ``trader`` example).
    """
    if var in loop.condition.variables():
        return False
    return _first_use_kind(loop.body, var) == "defined"


def _seed_differences(loop: ast.While, context: Context
                      ) -> Tuple[List[LinExpr], List[LinExpr]]:
    """Linear expressions ``D`` seeding interval atoms ``max(0, D)``.

    Returns ``(primary, secondary)``: primary seeds (guards, inner guards,
    symbolic tick amounts) are widened by the full offset range, secondary
    seeds (modified variables, context facts) only by small offsets -- this
    keeps the atom budget focused on the intervals that actually drive the
    loop's cost.
    """
    primary: List[LinExpr] = []
    secondary: List[LinExpr] = []
    dead_vars = {var for var in loop.body.assigned_variables()
                 if dead_at_loop_head(loop, var)}

    def push(bucket: List[LinExpr], expr: LinExpr) -> None:
        if expr.is_constant():
            return
        if dead_vars & set(expr.variables()):
            return
        if expr not in bucket:
            bucket.append(expr)

    for fact in facts_from_condition(loop.condition):
        push(primary, fact)
        push(primary, fact + 1)
    for node in loop.body.iter_nodes():
        if isinstance(node, (ast.If, ast.While)):
            for fact in facts_from_condition(node.condition):
                push(primary, fact)
                push(primary, fact + 1)
        if isinstance(node, ast.Tick) and not node.is_constant:
            try:
                push(primary, ast.expr_to_linexpr(node.amount))
            except LoweringError:
                pass
    for var in sorted(loop.body.used_variables() | loop.condition.variables()):
        push(secondary, LinExpr.var(var))
        push(secondary, -LinExpr.var(var))
    for fact in context.facts:
        push(secondary, fact)
    return primary, secondary


def atoms_for_loop(loop: ast.While, context: Context,
                   post_monomials: Iterable[Monomial],
                   config: BaseGenConfig) -> List[IntervalAtom]:
    """The atom pool for a loop-invariant template.

    The atoms of the continuation (post-annotation) are always included --
    potential must be able to flow through the loop -- and do not count
    against the heuristic atom budget.  The heuristic atoms are added in
    priority order: primary seeds (guards, symbolic ticks) widened by the
    full offset range, then secondary seeds (modified variables, abstract
    interpretation facts) widened only by small offsets.
    """
    atoms: List[IntervalAtom] = []
    seen: Set[IntervalAtom] = set()
    heuristic_count = 0

    def add(diff: LinExpr, budgeted: bool = True) -> None:
        nonlocal heuristic_count
        if budgeted and heuristic_count >= config.atom_limit:
            return
        atom = _normalise_atom(diff)
        if atom is None or atom in seen:
            return
        seen.add(atom)
        atoms.append(atom)
        if budgeted:
            heuristic_count += 1

    # The loop's own atoms come first: when higher-degree monomials are
    # formed only a prefix of the atom list participates in products, and the
    # products that matter combine the loop's guards with its symbolic costs.
    offsets = _offset_candidates(loop.body, config)
    primary, secondary = _seed_differences(loop, context)
    for hint in config.hint_atoms:
        add(hint, budgeted=False)
    # Offsets iterate in the outer loop: every primary seed contributes its
    # small offsets before any seed contributes large ones, so the prefix of
    # the atom list (used for higher-degree products) covers all seeds.
    for offset in offsets:
        for seed in primary:
            add(seed + offset)
    for seed in secondary:
        for offset in (0, 1):
            add(seed + offset)

    # Atoms of the continuation (post-annotation): potential must be able to
    # flow through the loop.  These never count against the budget.
    for monomial in post_monomials:
        for atom in monomial.atoms():
            if atom not in seen:
                seen.add(atom)
                atoms.append(atom)
    return atoms


def monomials_up_to_degree(atoms: Sequence[IntervalAtom], max_degree: int,
                           limit: int = 600,
                           higher_degree_atom_limit: int = 16) -> List[Monomial]:
    """All monomials of degree <= ``max_degree`` over ``atoms`` (plus 1).

    Degree-1 monomials are formed over the full atom pool; monomials of
    degree >= 2 only combine the first ``higher_degree_atom_limit`` atoms
    (seed order puts the most relevant atoms first), which keeps quadratic
    and cubic templates at a size the LP solver handles comfortably.

    **Degree monotonicity** (relied on by the incremental escalation of
    :mod:`repro.core.pipeline`): for a fixed atom sequence the degree-``d``
    list is a *prefix* of the degree-``d+1`` list -- lower-degree monomials
    are emitted first, in the same order, and raising the degree only
    appends new products.  Template extension therefore never renames or
    reorders existing LP variables.
    """
    monomials: List[Monomial] = [Monomial.one()]
    seen: Set[Monomial] = {Monomial.one()}
    for atom in atoms:
        monomial = Monomial.of_atom(atom)
        if monomial not in seen:
            seen.add(monomial)
            monomials.append(monomial)
        if len(monomials) >= limit:
            return monomials
    higher_pool = list(atoms[:higher_degree_atom_limit])
    for degree in range(2, max(1, max_degree) + 1):
        for combo in combinations_with_replacement(higher_pool, degree):
            monomial = Monomial(combo)
            if monomial not in seen:
                seen.add(monomial)
                monomials.append(monomial)
            if len(monomials) >= limit:
                return monomials
    return monomials


def append_missing(monomials: List[Monomial],
                   extra: Iterable[Monomial]) -> List[Monomial]:
    """Append the monomials of ``extra`` not already present, in order.

    The deduplicated-append used wherever continuation (post-annotation)
    monomials must be folded into a template: keeping the heuristic
    monomials first preserves the prefix stability that degree escalation
    depends on.
    """
    known = set(monomials)
    for monomial in extra:
        if monomial not in known:
            monomials.append(monomial)
            known.add(monomial)
    return monomials


def template_monomials_for_loop(loop: ast.While, context: Context,
                                post_monomials: Iterable[Monomial],
                                config: BaseGenConfig) -> List[Monomial]:
    """The full base-function template for a loop head.

    Degree-monotone: with a degree-``d+1`` config and a continuation whose
    monomials extend the degree-``d`` continuation, the returned template
    is a superset of the degree-``d`` one (the atom pool only grows with
    the continuation, and :func:`monomials_up_to_degree` is prefix-stable).
    :meth:`repro.core.annotations.PotentialAnnotation.extend_template`
    additionally keeps any base monomial dropped by budget truncation, so
    escalation can only ever *add* base functions.
    """
    post_list = list(post_monomials)
    atoms = atoms_for_loop(loop, context, post_list, config)
    degree = max([config.max_degree] + [m.degree() for m in post_list])
    monomials = monomials_up_to_degree(atoms, degree, config.monomial_limit)
    return append_missing(monomials, post_list)


def template_monomials_for_join(post_monomials_a: Iterable[Monomial],
                                post_monomials_b: Iterable[Monomial]
                                ) -> List[Monomial]:
    """Template used at branch joins: the union of both branch requirements."""
    merged: Set[Monomial] = {Monomial.one()}
    merged.update(post_monomials_a)
    merged.update(post_monomials_b)
    return sorted(merged, key=lambda m: m.sort_key())


def template_monomials_for_procedure(body: ast.Command, context: Context,
                                     config: BaseGenConfig) -> List[Monomial]:
    """Base functions for a procedure specification (recursive procedures)."""
    atoms: List[IntervalAtom] = []
    seen: Set[IntervalAtom] = set()

    def add(diff: LinExpr) -> None:
        atom = _normalise_atom(diff)
        if atom is None or atom in seen:
            return
        seen.add(atom)
        atoms.append(atom)

    offsets = _offset_candidates(body, config)
    seeds: List[LinExpr] = []
    for node in body.iter_nodes():
        if isinstance(node, (ast.If, ast.While, ast.Assert, ast.Assume)):
            for fact in facts_from_condition(node.condition):
                seeds.append(fact)
                seeds.append(fact + 1)
        if isinstance(node, ast.Tick) and not node.is_constant:
            try:
                seeds.append(ast.expr_to_linexpr(node.amount))
            except LoweringError:
                pass
    for var in sorted(body.used_variables()):
        seeds.append(LinExpr.var(var))
        seeds.append(-LinExpr.var(var))
    for fact in context.facts:
        seeds.append(fact)
    for seed in seeds:
        if seed.is_constant():
            continue
        for offset in offsets:
            if len(atoms) >= config.atom_limit:
                break
            add(seed + offset)
    for hint in config.hint_atoms:
        add(hint)
    return monomials_up_to_degree(atoms[:config.atom_limit], config.max_degree,
                                  config.monomial_limit)
