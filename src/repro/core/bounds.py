"""Expected-cost bounds: the analyzer's user-facing result objects."""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.utils.polynomials import Monomial, Polynomial
from repro.utils.rationals import pretty_fraction

State = Mapping[str, Union[int, float, Fraction]]


@dataclass(frozen=True)
class ExpectedBound:
    """A symbolic upper bound on the expected resource consumption.

    The bound is a polynomial over interval base functions, e.g.
    ``2*|[x, n]| + 1`` or ``4.5*|[0, x]|^2 + 7.5*|[0, x]|`` -- exactly the
    shape reported in Table 1 of the paper.
    """

    polynomial: Polynomial

    # -- queries -------------------------------------------------------------

    def degree(self) -> int:
        return self.polynomial.degree()

    def is_constant(self) -> bool:
        return self.polynomial.is_constant()

    def variables(self) -> Tuple[str, ...]:
        return self.polynomial.variables()

    def evaluate(self, state: State) -> Fraction:
        """The bound's value for a concrete input valuation."""
        return self.polynomial.evaluate(state)

    def evaluate_float(self, state: State) -> float:
        return float(self.evaluate(state))

    def coefficient(self, monomial: Monomial) -> Fraction:
        return self.polynomial.coefficient(monomial)

    def dominates_value(self, state: State, measured: float,
                        tolerance: float = 1e-9) -> bool:
        """Whether the bound is at least ``measured`` on ``state``."""
        return float(self.evaluate(state)) + tolerance >= measured

    # -- presentation -------------------------------------------------------------

    def pretty(self) -> str:
        """Table-1 style rendering, e.g. ``2*|[x, n]|``."""
        return str(self.polynomial)

    def as_dict(self) -> Dict[str, str]:
        return {str(monomial): pretty_fraction(coeff)
                for monomial, coeff in self.polynomial.terms.items()}

    def __str__(self) -> str:
        return self.pretty()

    def __repr__(self) -> str:
        return f"ExpectedBound({self.pretty()})"
