"""Derivation certificates and their checker.

A successful analysis does not only produce a bound: it produces a
*derivation* in the quantitative program logic (the paper stresses that the
analysis "generates certificates that are derivations in a quantitative
program logic").  The :class:`Certificate` gathers

* the potential annotation at every program point (instantiated with the LP
  solution), and
* every application of ``Q:Weaken`` together with the rewrite functions and
  multipliers that justify it.

The :func:`check_certificate` routine re-validates the weakenings: the
instantiated difference must equal the non-negative combination of rewrite
functions (an exact polynomial identity), and each rewrite function used with
a non-zero multiplier must be non-negative on states satisfying its logical
context (checked on sampled integer states).  This is the cheap, independent
evidence a sceptical user can re-run; full soundness is established by the
paper's Theorem 6.1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.annotations import PotentialAnnotation
from repro.core.constraints import LPVar
from repro.core.derivation import DerivationStep, WeakenStep
from repro.lang.errors import CertificateError
from repro.logic.contexts import Context
from repro.utils.polynomials import Polynomial


@dataclass
class AnnotatedPoint:
    """The solved potential annotation around one command."""

    node_id: int
    rule: str
    description: str
    pre: Polynomial
    post: Polynomial


@dataclass
class WeakenEvidence:
    """The solved justification of one weakening."""

    origin: str
    context: Context
    stronger: Polynomial
    weaker: Polynomial
    combination: List[Tuple[Fraction, Polynomial, str]]


@dataclass
class Certificate:
    """A complete, solved derivation."""

    bound: Polynomial
    points: List[AnnotatedPoint] = field(default_factory=list)
    weakenings: List[WeakenEvidence] = field(default_factory=list)

    def annotation_at(self, node_id: int) -> Optional[AnnotatedPoint]:
        for point in self.points:
            if point.node_id == node_id:
                return point
        return None

    def __len__(self) -> int:
        return len(self.points)


def build_certificate(bound: Polynomial,
                      steps: Sequence[DerivationStep],
                      weakens: Sequence[WeakenStep],
                      assignment: Mapping[LPVar, Fraction]) -> Certificate:
    """Instantiate all symbolic annotations with the LP solution."""
    points = [AnnotatedPoint(step.node_id, step.rule, step.description,
                             step.pre.instantiate(assignment),
                             step.post.instantiate(assignment))
              for step in steps]
    weakenings = []
    for weaken in weakens:
        combination = []
        for multiplier, rewrite in zip(weaken.multipliers, weaken.rewrites):
            value = multiplier.evaluate(assignment)
            if value != 0:
                combination.append((value, rewrite.polynomial, rewrite.reason))
        weakenings.append(WeakenEvidence(
            weaken.origin, weaken.context,
            weaken.stronger.instantiate(assignment),
            weaken.weaker.instantiate(assignment),
            combination))
    return Certificate(bound=bound, points=points, weakenings=weakenings)


# ---------------------------------------------------------------------------
# Checking
# ---------------------------------------------------------------------------

def _sample_states(context: Context, variables: Sequence[str], samples: int,
                   rng: np.random.Generator, radius: int = 50) -> List[Dict[str, int]]:
    """Random integer states satisfying ``context`` (best effort)."""
    states: List[Dict[str, int]] = []
    attempts = 0
    while len(states) < samples and attempts < samples * 40:
        attempts += 1
        state = {var: int(rng.integers(-radius, radius + 1)) for var in variables}
        if context.satisfied_by(state):
            states.append(state)
    return states


def check_certificate(certificate: Certificate, samples: int = 30,
                      seed: int = 0, tolerance: float = 1e-6) -> List[str]:
    """Return a list of human-readable problems (empty = certificate accepted).

    Two families of checks are performed per weakening:

    1. *algebraic*: ``stronger - sum(u_k * F_k) == weaker`` as polynomials
       (up to the floating-point snapping tolerance of the LP solution);
    2. *semantic*: each rewrite function used with ``u_k > 0`` evaluates to a
       non-negative number on sampled states satisfying the logical context.
    """
    problems: List[str] = []
    rng = np.random.default_rng(seed)
    for evidence in certificate.weakenings:
        residual = evidence.stronger - evidence.weaker
        for value, poly, _reason in evidence.combination:
            residual = residual - poly * value
        for monomial, coeff in residual.terms.items():
            if abs(float(coeff)) > tolerance:
                problems.append(
                    f"{evidence.origin}: combination mismatch at {monomial} "
                    f"(residual {float(coeff):.2e})")
                break
        variables = sorted(set(
            itertools.chain(evidence.stronger.variables(),
                            evidence.weaker.variables(),
                            evidence.context.variables())))
        if not variables:
            continue
        states = _sample_states(evidence.context, variables, samples, rng)
        for value, poly, reason in evidence.combination:
            if value <= 0:
                continue
            for state in states:
                if float(poly.evaluate(state)) < -tolerance:
                    problems.append(
                        f"{evidence.origin}: rewrite function not non-negative "
                        f"({reason}) at state {state}")
                    break
        for state in states:
            gap = float(evidence.stronger.evaluate(state)) \
                - float(evidence.weaker.evaluate(state))
            if gap < -1e-4:
                problems.append(
                    f"{evidence.origin}: weakening violated at state {state} "
                    f"(gap {gap:.3g})")
                break
    return problems


def assert_certificate(certificate: Certificate, samples: int = 30,
                       seed: int = 0) -> None:
    """Raise :class:`CertificateError` when :func:`check_certificate` finds problems."""
    problems = check_certificate(certificate, samples=samples, seed=seed)
    if problems:
        raise CertificateError("; ".join(problems[:5]))
