"""Linear constraint system over symbolic potential-annotation coefficients.

During the first phase of the analysis (Sec. 5) the coefficients of potential
annotations are left symbolic; each symbolic coefficient becomes a variable
of a linear program.  This module provides

* :class:`LPVar` -- a single LP variable,
* :class:`AffExpr` -- affine expressions ``const + sum(coeff_i * var_i)`` with
  exact rational coefficients; annotation coefficients are such expressions so
  that rules like ``Q:PIf`` (weighted sums) or ``Q:Tick`` need no fresh
  variables,
* :class:`ConstraintSystem` -- collects equality and inequality constraints
  and hands them to the LP solver (:mod:`repro.core.solver`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.utils.rationals import Number, pretty_fraction, to_fraction


@dataclass(frozen=True, eq=False)
class LPVar:
    """One variable of the linear program.

    Instances are created exactly once per variable (by
    :meth:`ConstraintSystem.new_var`), so identity equality/hashing is both
    correct and much faster than field-based hashing -- LPVars key the term
    dicts of every :class:`AffExpr` on the analyzer's hottest path.
    """

    index: int
    name: str
    nonneg: bool = False

    def __str__(self) -> str:
        return self.name


class AffExpr:
    """An affine expression over LP variables with rational coefficients."""

    __slots__ = ("_terms", "_const")

    def __init__(self, terms: Optional[Mapping[LPVar, Number]] = None,
                 const: Number = 0) -> None:
        clean: Dict[LPVar, Fraction] = {}
        if terms:
            for var, coeff in terms.items():
                frac = to_fraction(coeff)
                if frac != 0:
                    clean[var] = frac
        self._terms = clean
        self._const = to_fraction(const)

    # -- constructors -------------------------------------------------------

    @classmethod
    def of_var(cls, var: LPVar) -> "AffExpr":
        return cls({var: 1})

    @classmethod
    def constant(cls, value: Number) -> "AffExpr":
        return cls({}, value)

    @classmethod
    def zero(cls) -> "AffExpr":
        return cls()

    @classmethod
    def _raw(cls, terms: Dict[LPVar, Fraction], const: Fraction) -> "AffExpr":
        """Wrap an already-clean term dict without re-validating it.

        Internal fast path: ``terms`` must map LPVars to non-zero Fractions
        and is owned by the new expression (not copied).
        """
        self = object.__new__(cls)
        self._terms = terms
        self._const = const
        return self

    @classmethod
    def linear_combination(cls,
                           items: Iterable[Tuple["AffExpr", Number]]) -> "AffExpr":
        """``sum(expr * factor)`` built with a single dict accumulation.

        Equivalent to chaining ``+``/``*`` but allocates one expression
        instead of one per step; used by the constraint-assembly hot paths.
        """
        terms: Dict[LPVar, Fraction] = {}
        const = Fraction(0)
        for expr, factor in items:
            factor = to_fraction(factor)
            if factor == 0:
                continue
            const += expr._const * factor
            for var, coeff in expr._terms.items():
                value = terms.get(var)
                value = coeff * factor if value is None else value + coeff * factor
                if value == 0:
                    del terms[var]
                else:
                    terms[var] = value
        return cls._raw(terms, const)

    # -- accessors -----------------------------------------------------------

    @property
    def terms(self) -> Dict[LPVar, Fraction]:
        return dict(self._terms)

    def term_items(self):
        """Items view of the term dict (no copy; do not mutate)."""
        return self._terms.items()

    @property
    def const(self) -> Fraction:
        return self._const

    def is_constant(self) -> bool:
        return not self._terms

    def is_zero(self) -> bool:
        return not self._terms and self._const == 0

    def variables(self) -> Tuple[LPVar, ...]:
        return tuple(self._terms)

    # -- algebra ----------------------------------------------------------------

    def __add__(self, other: Union["AffExpr", Number]) -> "AffExpr":
        other_expr = _as_affexpr(other)
        terms = dict(self._terms)
        for var, coeff in other_expr._terms.items():
            value = terms.get(var)
            value = coeff if value is None else value + coeff
            if value == 0:
                del terms[var]
            else:
                terms[var] = value
        return AffExpr._raw(terms, self._const + other_expr._const)

    __radd__ = __add__

    def __neg__(self) -> "AffExpr":
        return AffExpr._raw({var: -coeff for var, coeff in self._terms.items()},
                            -self._const)

    def __sub__(self, other: Union["AffExpr", Number]) -> "AffExpr":
        return self + (-_as_affexpr(other))

    def __rsub__(self, other: Union["AffExpr", Number]) -> "AffExpr":
        return _as_affexpr(other) + (-self)

    def __mul__(self, scalar: Number) -> "AffExpr":
        factor = to_fraction(scalar)
        if factor == 0:
            return AffExpr._raw({}, Fraction(0))
        return AffExpr._raw({var: coeff * factor for var, coeff in self._terms.items()},
                            self._const * factor)

    __rmul__ = __mul__

    def evaluate(self, assignment: Mapping[LPVar, Union[float, Fraction]]) -> Fraction:
        total = self._const
        for var, coeff in self._terms.items():
            total += coeff * to_fraction(assignment[var])
        return total

    # -- rendering --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffExpr):
            return NotImplemented
        return self._terms == other._terms and self._const == other._const

    def __hash__(self) -> int:
        return hash((tuple(sorted(((v.index, c) for v, c in self._terms.items()))),
                     self._const))

    def __repr__(self) -> str:
        return f"AffExpr({self})"

    def __str__(self) -> str:
        parts = []
        for var, coeff in sorted(self._terms.items(), key=lambda item: item[0].index):
            if coeff == 1:
                parts.append(str(var))
            else:
                parts.append(f"{pretty_fraction(coeff)}*{var}")
        if self._const != 0 or not parts:
            parts.append(pretty_fraction(self._const))
        return " + ".join(parts)


def _as_affexpr(value: Union[AffExpr, Number]) -> AffExpr:
    if isinstance(value, AffExpr):
        return value
    return AffExpr.constant(value)


@dataclass
class Constraint:
    """``expr == 0`` (kind 'eq') or ``expr >= 0`` (kind 'ge')."""

    expr: AffExpr
    kind: str
    origin: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("eq", "ge"):
            raise ValueError(f"unknown constraint kind {self.kind!r}")


@dataclass
class SystemExtension:
    """Journal of one append-only extension round of a :class:`ConstraintSystem`.

    Produced by :meth:`ConstraintSystem.begin_extension` /
    :meth:`ConstraintSystem.end_extension`.  During a round the system may
    only *grow*: new variables, new constraints, and per-constraint deltas
    that mention new variables exclusively.  The journal carries everything
    :meth:`repro.core.solver.AssembledSystem.extend` needs to update the LP
    matrices in place: pre-round sizes plus the accumulated delta expression
    of every extended row (entries land in fresh columns only, so the base
    CSR blocks survive verbatim).
    """

    base_variables: int
    base_constraints: int
    #: Constraint index -> accumulated delta (an ``AffExpr`` over variables
    #: created during this round; its constant part is always zero).
    extended: Dict[int, AffExpr] = field(default_factory=dict)

    @property
    def constraints_extended(self) -> int:
        return len(self.extended)


class ConstraintSystem:
    """Accumulates LP variables and linear constraints.

    Besides plain accumulation the system supports an *append-only
    extension protocol* used by the incremental degree-escalation pipeline
    (:mod:`repro.core.pipeline`): between :meth:`begin_extension` and
    :meth:`end_extension` existing constraints may be extended with delta
    expressions over newly created variables, while their original terms
    stay untouched.  This is exactly the shape of degree escalation: the
    degree-``d`` rows keep their coefficients, and the degree-``d+1``
    template variables / weakening multipliers only add new columns.
    """

    def __init__(self) -> None:
        self.variables: List[LPVar] = []
        self.constraints: List[Constraint] = []
        self._extension: Optional[SystemExtension] = None

    # -- variables ------------------------------------------------------------

    def new_var(self, name: str, nonneg: bool = False) -> AffExpr:
        """Create a fresh LP variable and return it wrapped in an expression."""
        var = LPVar(len(self.variables), name, nonneg)
        self.variables.append(var)
        return AffExpr.of_var(var)

    def new_vars(self, count: int, prefix: str, nonneg: bool = False) -> List[AffExpr]:
        return [self.new_var(f"{prefix}_{i}", nonneg) for i in range(count)]

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    # -- constraints -------------------------------------------------------------

    def add_eq(self, left: Union[AffExpr, Number], right: Union[AffExpr, Number] = 0,
               origin: str = "") -> Optional[int]:
        """Add ``left == right``; return the constraint index (None if trivial)."""
        if isinstance(left, AffExpr) and not isinstance(right, AffExpr) and right == 0:
            expr = left
        else:
            expr = _as_affexpr(left) - _as_affexpr(right)
        if expr.is_constant():
            if expr.const != 0:
                # Record an obviously infeasible constraint so the solver
                # reports failure instead of silently dropping it.
                self.constraints.append(Constraint(expr, "eq", origin or "contradiction"))
                return len(self.constraints) - 1
            return None
        self.constraints.append(Constraint(expr, "eq", origin))
        return len(self.constraints) - 1

    def add_ge(self, left: Union[AffExpr, Number], right: Union[AffExpr, Number] = 0,
               origin: str = "") -> Optional[int]:
        """Add ``left >= right``; return the constraint index (None if trivial)."""
        if isinstance(left, AffExpr) and not isinstance(right, AffExpr) and right == 0:
            expr = left
        else:
            expr = _as_affexpr(left) - _as_affexpr(right)
        if expr.is_constant():
            if expr.const < 0:
                self.constraints.append(Constraint(expr, "ge", origin or "contradiction"))
                return len(self.constraints) - 1
            return None
        self.constraints.append(Constraint(expr, "ge", origin))
        return len(self.constraints) - 1

    def add_le(self, left: Union[AffExpr, Number], right: Union[AffExpr, Number] = 0,
               origin: str = "") -> Optional[int]:
        return self.add_ge(_as_affexpr(right), _as_affexpr(left), origin)

    # -- append-only extension protocol ------------------------------------------

    def begin_extension(self) -> None:
        """Open an extension round (degree escalation) over the current state."""
        if self._extension is not None:
            raise RuntimeError("an extension round is already open")
        self._extension = SystemExtension(self.num_variables, self.num_constraints)

    def extend_constraint(self, index: int, delta: AffExpr) -> None:
        """Append ``delta`` to an existing constraint's expression.

        The delta must be constant-free and may only mention variables
        created during the current extension round: existing rows keep
        their old columns verbatim and only grow into new columns, which is
        what lets :meth:`repro.core.solver.AssembledSystem.extend` reuse
        the previously assembled CSR blocks as-is.
        """
        extension = self._extension
        if extension is None:
            raise RuntimeError("extend_constraint outside an extension round")
        if delta.const != 0:
            raise ValueError(
                f"extension delta has a constant part ({delta}): degree "
                "escalation deltas are linear in the new variables")
        for var, _coeff in delta.term_items():
            if var.index < extension.base_variables:
                raise ValueError(
                    f"extension delta mentions pre-extension variable "
                    f"{var.name!r}; only new columns may be touched")
        constraint = self.constraints[index]
        self.constraints[index] = Constraint(constraint.expr + delta,
                                             constraint.kind, constraint.origin)
        if index < extension.base_constraints:
            previous = extension.extended.get(index)
            extension.extended[index] = delta if previous is None \
                else previous + delta

    def end_extension(self) -> SystemExtension:
        """Close the round and return its journal (for LP matrix growth)."""
        extension = self._extension
        if extension is None:
            raise RuntimeError("end_extension without begin_extension")
        self._extension = None
        return extension

    # -- statistics / debugging ------------------------------------------------------

    def describe(self) -> str:
        return (f"ConstraintSystem with {self.num_variables} variables and "
                f"{self.num_constraints} constraints")

    def __repr__(self) -> str:
        return self.describe()
