"""Backward constraint generation over the derivation rules of Fig. 6.

The :class:`DerivationBuilder` walks a command *backwards*: given the
annotation that must hold *after* the command (the continuation's potential),
it constructs the annotation that suffices *before* it, collecting linear
constraints in a :class:`~repro.core.constraints.ConstraintSystem` along the
way.  The correspondence with the paper's rules:

=====================  ========================================================
rule                   implementation
=====================  ========================================================
``Q:Skip``             pre = post
``Q:Abort``            pre = 0
``Q:Assert``           pre = post (context refinement happens in the AI)
``Q:Tick``             pre = post + q  (symbolic ticks add ``max(0, e)``)
``Q:Assign``           pre = post[e/x] -- *exact* substitution on base
                       functions (see DESIGN.md for the relation to the
                       paper's stable-set formulation)
``Q:Sample``           probability-weighted sum of the per-outcome assignments
``Q:PIf``              pre = p * pre_left + (1-p) * pre_right
``Q:If``/``Q:NonDet``  fresh join template constrained to dominate both
                       branches under their respective contexts (Q:Weaken)
``Q:Loop``             fresh invariant template; dominates the loop-exit
                       post-annotation and the body's pre-annotation
``Q:Call``             specification lookup + frame over unmodified monomials
``Q:Weaken``/``Relax``  difference expressed as a non-negative combination of
                       rewrite functions (:mod:`repro.core.rewrite`)
=====================  ========================================================

All generated constraints are linear in the unknown coefficients, so bound
inference reduces to LP solving exactly as in Sec. 5 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.annotations import PotentialAnnotation
from repro.core.basegen import (
    BaseGenConfig,
    template_monomials_for_join,
    template_monomials_for_loop,
)
from repro.core.constraints import AffExpr, ConstraintSystem
from repro.core.rewrite import RewriteFunction, generate_rewrites
from repro.core.specs import SpecContext
from repro.lang import ast
from repro.lang.errors import AnalysisError, LoweringError
from repro.logic.absint import AbstractInterpreter
from repro.logic.conditions import facts_from_condition, negated_facts_from_condition
from repro.logic.contexts import Context
from repro.utils.linear import LinExpr
from repro.utils.polynomials import Monomial, Polynomial


@dataclass
class DerivationStep:
    """One application of a syntax-directed rule (for the certificate)."""

    node_id: int
    rule: str
    description: str
    pre: PotentialAnnotation
    post: PotentialAnnotation


@dataclass
class WeakenStep:
    """One application of ``Q:Weaken`` (for the certificate checker)."""

    origin: str
    context: Context
    stronger: PotentialAnnotation
    weaker: PotentialAnnotation
    rewrites: List[RewriteFunction]
    multipliers: List[AffExpr]


class DerivationBuilder:
    """Generates templates and constraints for one program."""

    def __init__(self, program: ast.Program, interpreter: AbstractInterpreter,
                 system: ConstraintSystem, basegen_config: BaseGenConfig,
                 specs: Optional[SpecContext] = None) -> None:
        self.program = program
        self.interpreter = interpreter
        self.system = system
        self.basegen_config = basegen_config
        self.specs = specs if specs is not None else SpecContext()
        self.steps: List[DerivationStep] = []
        self.weakens: List[WeakenStep] = []
        self._counter = 0

    # -- bookkeeping -----------------------------------------------------------

    def _fresh_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _record(self, command: ast.Command, rule: str,
                pre: PotentialAnnotation, post: PotentialAnnotation) -> None:
        description = type(command).__name__
        self.steps.append(DerivationStep(command.node_id, rule, description, pre, post))

    def _context_before(self, command: ast.Command) -> Context:
        return self.interpreter.context_before(command)

    # -- weakening ----------------------------------------------------------------

    def weaken(self, context: Context, stronger: PotentialAnnotation,
               weaker: PotentialAnnotation, origin: str) -> None:
        """Constrain ``Phi_stronger >= Phi_weaker`` on all states satisfying ``context``.

        Following the ``Relax`` rule the difference must equal a non-negative
        combination of rewrite functions valid under ``context``; one fresh
        non-negative multiplier is introduced per rewrite function.
        """
        if context.is_unreachable or not context.is_satisfiable():
            # T(Gamma; Q) is infinite outside Gamma: nothing to prove for an
            # unreachable program point (e.g. a branch contradicting an assume).
            return
        monomials: Set[Monomial] = set(stronger.monomials()) | set(weaker.monomials())
        monomials.add(Monomial.one())
        max_degree = max((m.degree() for m in monomials), default=1)
        rewrites = generate_rewrites(context, monomials, max_degree)
        multipliers = [self.system.new_var(self._fresh_name(f"u_{origin}_"), nonneg=True)
                       for _ in rewrites]
        # Index the rewrite columns by monomial once, so each equation below
        # is assembled from exactly its non-zero entries (instead of scanning
        # every rewrite per monomial) with a single linear combination.
        by_monomial: Dict[Monomial, List[Tuple[AffExpr, Fraction]]] = {}
        for multiplier, rewrite in zip(multipliers, rewrites):
            for monomial, coeff in rewrite.polynomial.term_items():
                by_monomial.setdefault(monomial, []).append((multiplier, -coeff))
        all_monomials: Set[Monomial] = set(monomials)
        all_monomials.update(by_monomial)
        for monomial in sorted(all_monomials, key=lambda m: m.sort_key()):
            pairs = [(stronger.coefficient(monomial), 1),
                     (weaker.coefficient(monomial), -1)]
            pairs.extend(by_monomial.get(monomial, ()))
            self.system.add_eq(AffExpr.linear_combination(pairs),
                               origin=f"weaken:{origin}:{monomial}")
        self.weakens.append(WeakenStep(origin, context, stronger, weaker,
                                       rewrites, multipliers))

    # -- rule dispatch -----------------------------------------------------------------

    def analyze_command(self, command: ast.Command,
                        post: PotentialAnnotation) -> PotentialAnnotation:
        """Return a pre-annotation valid for ``command`` with continuation ``post``."""
        handler = getattr(self, f"_rule_{type(command).__name__.lower()}", None)
        if handler is None:
            raise AnalysisError(f"no derivation rule for {type(command).__name__}")
        pre = handler(command, post)
        self._record(command, handler.__name__.replace("_rule_", "Q:"), pre, post)
        return pre

    # -- simple rules ---------------------------------------------------------------------

    def _rule_skip(self, command: ast.Skip, post: PotentialAnnotation) -> PotentialAnnotation:
        return post

    def _rule_abort(self, command: ast.Abort, post: PotentialAnnotation) -> PotentialAnnotation:
        return PotentialAnnotation.zero()

    def _rule_assert(self, command: ast.Assert, post: PotentialAnnotation) -> PotentialAnnotation:
        return post

    def _rule_assume(self, command: ast.Assume, post: PotentialAnnotation) -> PotentialAnnotation:
        return post

    def _rule_tick(self, command: ast.Tick, post: PotentialAnnotation) -> PotentialAnnotation:
        if command.is_constant:
            return post.add_constant(command.amount)
        context = self._context_before(command)
        try:
            amount = ast.expr_to_linexpr(command.amount)
        except LoweringError as exc:
            raise AnalysisError(f"tick amount is not linear: {command.amount}") from exc
        # max(0, e) >= e, so charging the interval atom is a sound upper bound
        # on the consumed amount (and exact whenever the context proves e >= 0).
        return post.add_polynomial(Polynomial.interval(amount))

    # -- assignments -------------------------------------------------------------------------

    def _rule_assign(self, command: ast.Assign, post: PotentialAnnotation) -> PotentialAnnotation:
        try:
            rhs = ast.expr_to_linexpr(command.expr)
        except LoweringError:
            return post.drop_monomials_with_variable(
                command.target, self.system,
                origin=f"nonlinear-assign:{command.target}@{command.node_id}")
        return post.substitute(command.target, rhs)

    def _rule_sample(self, command: ast.Sample, post: PotentialAnnotation) -> PotentialAnnotation:
        try:
            base = ast.expr_to_linexpr(command.expr)
        except LoweringError:
            return post.drop_monomials_with_variable(
                command.target, self.system,
                origin=f"nonlinear-sample:{command.target}@{command.node_id}")
        parts: List[Tuple[Fraction, PotentialAnnotation]] = []
        for value, probability in command.distribution.support():
            if command.op == "+":
                outcome = base + value
            elif command.op == "-":
                outcome = base - value
            else:
                outcome = base * value
            parts.append((probability, post.substitute(command.target, outcome)))
        return PotentialAnnotation.weighted_sum(parts)

    # -- branching ---------------------------------------------------------------------------------

    def _rule_probchoice(self, command: ast.ProbChoice,
                         post: PotentialAnnotation) -> PotentialAnnotation:
        left_pre = self.analyze_command(command.left, post)
        right_pre = self.analyze_command(command.right, post)
        return PotentialAnnotation.weighted_sum([
            (command.probability, left_pre),
            (1 - command.probability, right_pre),
        ])

    def _rule_if(self, command: ast.If, post: PotentialAnnotation) -> PotentialAnnotation:
        context = self._context_before(command)
        then_ctx = context.add_facts(facts_from_condition(command.condition))
        else_ctx = context.add_facts(negated_facts_from_condition(command.condition))
        then_pre = self.analyze_command(command.then_branch, post)
        else_pre = self.analyze_command(command.else_branch, post)
        monomials = template_monomials_for_join(then_pre.monomials(), else_pre.monomials())
        joined = PotentialAnnotation.template(
            self.system, monomials, self._fresh_name("if"), nonneg=True)
        self.weaken(then_ctx, joined, then_pre, origin=f"if-then@{command.node_id}")
        self.weaken(else_ctx, joined, else_pre, origin=f"if-else@{command.node_id}")
        return joined

    def _rule_nondetchoice(self, command: ast.NonDetChoice,
                           post: PotentialAnnotation) -> PotentialAnnotation:
        context = self._context_before(command)
        left_pre = self.analyze_command(command.left, post)
        right_pre = self.analyze_command(command.right, post)
        monomials = template_monomials_for_join(left_pre.monomials(), right_pre.monomials())
        joined = PotentialAnnotation.template(
            self.system, monomials, self._fresh_name("nd"), nonneg=True)
        self.weaken(context, joined, left_pre, origin=f"nondet-left@{command.node_id}")
        self.weaken(context, joined, right_pre, origin=f"nondet-right@{command.node_id}")
        return joined

    # -- sequencing ----------------------------------------------------------------------------------

    def _rule_seq(self, command: ast.Seq, post: PotentialAnnotation) -> PotentialAnnotation:
        current = post
        for sub in reversed(command.commands):
            current = self.analyze_command(sub, current)
        return current

    # -- loops ----------------------------------------------------------------------------------------

    def _rule_while(self, command: ast.While, post: PotentialAnnotation) -> PotentialAnnotation:
        invariant_ctx = self._context_before(command)
        monomials = template_monomials_for_loop(command, invariant_ctx,
                                                post.monomials(), self.basegen_config)
        invariant = PotentialAnnotation.template(
            self.system, monomials, self._fresh_name("inv"), nonneg=True)
        exit_ctx = invariant_ctx.add_facts(
            negated_facts_from_condition(command.condition))
        body_ctx = invariant_ctx.add_facts(facts_from_condition(command.condition))
        # Loop exit: the invariant must cover the continuation's requirement.
        self.weaken(exit_ctx, invariant, post, origin=f"loop-exit@{command.node_id}")
        # Loop body: the invariant must be restored after one iteration.
        body_pre = self.analyze_command(command.body, invariant)
        self.weaken(body_ctx, invariant, body_pre, origin=f"loop-head@{command.node_id}")
        return invariant

    # -- procedure calls ----------------------------------------------------------------------------------

    def _rule_call(self, command: ast.Call, post: PotentialAnnotation) -> PotentialAnnotation:
        spec = self.specs.lookup(command.procedure)
        if spec is None:
            raise AnalysisError(
                f"no specification for procedure {command.procedure!r}; "
                "non-recursive calls should have been inlined")
        frame_terms: Dict[Monomial, AffExpr] = {}
        for monomial, coeff in post.terms.items():
            if spec.frameable(monomial):
                frame_terms[monomial] = coeff
            else:
                # The callee may change this base function: its potential
                # cannot be framed across the call, and the (zero) callee
                # post-annotation cannot supply it either.
                self.system.add_eq(coeff, 0,
                                   origin=f"call-frame:{command.procedure}:{monomial}")
        frame = PotentialAnnotation(frame_terms)
        return spec.pre.plus(frame)

    # -- procedure bodies ----------------------------------------------------------------------------------

    def derive_procedure(self, name: str, post: PotentialAnnotation,
                         entry_context: Optional[Context] = None
                         ) -> PotentialAnnotation:
        """Derive a pre-annotation for the body of procedure ``name``."""
        proc = self.program.procedures[name]
        return self.analyze_command(proc.body, post)

    def constrain_specification(self, name: str) -> None:
        """Emit the ``ValidCtx`` obligation for the registered spec of ``name``."""
        spec = self.specs.lookup(name)
        if spec is None:
            raise AnalysisError(f"procedure {name!r} has no registered specification")
        proc = self.program.procedures[name]
        body_pre = self.analyze_command(proc.body, spec.post)
        entry_context = self.interpreter.context_before(proc.body)
        self.weaken(entry_context, spec.pre, body_pre, origin=f"spec:{name}")
