"""Backward constraint generation over the derivation rules of Fig. 6.

The :class:`DerivationBuilder` walks a command *backwards*: given the
annotation that must hold *after* the command (the continuation's potential),
it constructs the annotation that suffices *before* it, collecting linear
constraints in a :class:`~repro.core.constraints.ConstraintSystem` along the
way.  The correspondence with the paper's rules:

=====================  ========================================================
rule                   implementation
=====================  ========================================================
``Q:Skip``             pre = post
``Q:Abort``            pre = 0
``Q:Assert``           pre = post (context refinement happens in the AI)
``Q:Tick``             pre = post + q  (symbolic ticks add ``max(0, e)``)
``Q:Assign``           pre = post[e/x] -- *exact* substitution on base
                       functions (see DESIGN.md for the relation to the
                       paper's stable-set formulation)
``Q:Sample``           probability-weighted sum of the per-outcome assignments
``Q:PIf``              pre = p * pre_left + (1-p) * pre_right
``Q:If``/``Q:NonDet``  fresh join template constrained to dominate both
                       branches under their respective contexts (Q:Weaken)
``Q:Loop``             fresh invariant template; dominates the loop-exit
                       post-annotation and the body's pre-annotation
``Q:Call``             specification lookup + frame over unmodified monomials
``Q:Weaken``/``Relax``  difference expressed as a non-negative combination of
                       rewrite functions (:mod:`repro.core.rewrite`)
=====================  ========================================================

All generated constraints are linear in the unknown coefficients, so bound
inference reduces to LP solving exactly as in Sec. 5 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.annotations import PotentialAnnotation
from repro.core.basegen import (
    BaseGenConfig,
    template_monomials_for_join,
    template_monomials_for_loop,
)
from repro.core.constraints import AffExpr, ConstraintSystem
from repro.core.rewrite import RewriteFunction, generate_rewrites
from repro.core.specs import SpecContext
from repro.lang import ast
from repro.lang.errors import AnalysisError, LoweringError
from repro.logic.absint import AbstractInterpreter
from repro.logic.conditions import facts_from_condition, negated_facts_from_condition
from repro.logic.contexts import Context
from repro.utils.linear import LinExpr
from repro.utils.polynomials import Monomial, Polynomial


@dataclass
class DerivationStep:
    """One application of a syntax-directed rule (for the certificate)."""

    node_id: int
    rule: str
    description: str
    pre: PotentialAnnotation
    post: PotentialAnnotation


@dataclass
class WeakenStep:
    """One application of ``Q:Weaken`` (for the certificate checker).

    ``rows`` maps each constrained monomial to the index of its equality in
    the :class:`~repro.core.constraints.ConstraintSystem`; degree escalation
    extends exactly these rows (new multiplier/template columns) instead of
    re-emitting them.
    """

    origin: str
    context: Context
    stronger: PotentialAnnotation
    weaker: PotentialAnnotation
    rewrites: List[RewriteFunction]
    multipliers: List[AffExpr]
    rows: Dict[Monomial, int] = field(default_factory=dict)


@dataclass
class TemplateRecord:
    """One template created during the base derivation (extendable later)."""

    name: str
    annotation: PotentialAnnotation


class DerivationBuilder:
    """Generates templates and constraints for one program.

    The builder has two modes.  The *base* walk (:meth:`analyze_command`)
    derives a fixed degree from scratch, journaling every template, weaken
    and coefficient-drop it performs.  The *extension* walk
    (:meth:`extend_command`) replays the exact same syntax-directed rule
    sequence for the next degree, carrying ``(full, delta)`` annotation
    pairs: the full annotation is the degree-``d+1`` value, the delta part
    is its projection onto the freshly created LP variables.  Because every
    derivation rule is affine in the template coefficients and the rational
    constants are identical across degrees, the delta of each derived
    annotation mentions only new variables -- so escalation appends new
    rows / extends old rows into new columns without ever rewriting the
    degree-``d`` system.
    """

    def __init__(self, program: ast.Program, interpreter: AbstractInterpreter,
                 system: ConstraintSystem, basegen_config: BaseGenConfig,
                 specs: Optional[SpecContext] = None) -> None:
        self.program = program
        self.interpreter = interpreter
        self.system = system
        self.basegen_config = basegen_config
        self.specs = specs if specs is not None else SpecContext()
        self.steps: List[DerivationStep] = []
        self.weakens: List[WeakenStep] = []
        self.templates: List[TemplateRecord] = []
        #: Ordered journal of per-monomial constraint rows emitted outside
        #: weakenings (nonlinear-assignment drops, call frames).
        self.row_events: List[Tuple[str, Dict[Monomial, int]]] = []
        self._counter = 0
        # -- extension-walk state --
        self._extending = False
        self._step_cursor = 0
        self._template_cursor = 0
        self._weaken_cursor = 0
        self._row_event_cursor = 0
        self._spec_deltas: Dict[str, PotentialAnnotation] = {}

    # -- bookkeeping -----------------------------------------------------------

    def _fresh_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _record(self, command: ast.Command, rule: str,
                pre: PotentialAnnotation, post: PotentialAnnotation) -> None:
        description = type(command).__name__
        self.steps.append(DerivationStep(command.node_id, rule, description, pre, post))

    def _context_before(self, command: ast.Command) -> Context:
        return self.interpreter.context_before(command)

    def _new_template(self, monomials, prefix: str) -> PotentialAnnotation:
        """Create and journal a fresh template (base walk only)."""
        name = self._fresh_name(prefix)
        annotation = PotentialAnnotation.template(self.system, monomials,
                                                  name, nonneg=True)
        self.templates.append(TemplateRecord(name, annotation))
        return annotation

    def _log_rows(self, tag: str) -> Dict[Monomial, int]:
        """Journal (base walk) a per-monomial constraint-row map."""
        rows: Dict[Monomial, int] = {}
        self.row_events.append((tag, rows))
        return rows

    # -- weakening ----------------------------------------------------------------

    def weaken(self, context: Context, stronger: PotentialAnnotation,
               weaker: PotentialAnnotation, origin: str) -> None:
        """Constrain ``Phi_stronger >= Phi_weaker`` on all states satisfying ``context``.

        Following the ``Relax`` rule the difference must equal a non-negative
        combination of rewrite functions valid under ``context``; one fresh
        non-negative multiplier is introduced per rewrite function.
        """
        if context.is_unreachable or not context.is_satisfiable():
            # T(Gamma; Q) is infinite outside Gamma: nothing to prove for an
            # unreachable program point (e.g. a branch contradicting an assume).
            return
        monomials: Set[Monomial] = set(stronger.monomials()) | set(weaker.monomials())
        monomials.add(Monomial.one())
        max_degree = max((m.degree() for m in monomials), default=1)
        rewrites = generate_rewrites(context, monomials, max_degree)
        multipliers = [self.system.new_var(self._fresh_name(f"u_{origin}_"), nonneg=True)
                       for _ in rewrites]
        # Index the rewrite columns by monomial once, so each equation below
        # is assembled from exactly its non-zero entries (instead of scanning
        # every rewrite per monomial) with a single linear combination.
        by_monomial: Dict[Monomial, List[Tuple[AffExpr, Fraction]]] = {}
        for multiplier, rewrite in zip(multipliers, rewrites):
            for monomial, coeff in rewrite.polynomial.term_items():
                by_monomial.setdefault(monomial, []).append((multiplier, -coeff))
        all_monomials: Set[Monomial] = set(monomials)
        all_monomials.update(by_monomial)
        rows: Dict[Monomial, int] = {}
        for monomial in sorted(all_monomials, key=lambda m: m.sort_key()):
            pairs = [(stronger.coefficient(monomial), 1),
                     (weaker.coefficient(monomial), -1)]
            pairs.extend(by_monomial.get(monomial, ()))
            index = self.system.add_eq(AffExpr.linear_combination(pairs),
                                       origin=f"weaken:{origin}:{monomial}")
            if index is not None:
                rows[monomial] = index
        self.weakens.append(WeakenStep(origin, context, stronger, weaker,
                                       rewrites, multipliers, rows))

    # -- rule dispatch -----------------------------------------------------------------

    def analyze_command(self, command: ast.Command,
                        post: PotentialAnnotation) -> PotentialAnnotation:
        """Return a pre-annotation valid for ``command`` with continuation ``post``."""
        assert not self._extending, "use extend_command during escalation"
        handler = getattr(self, f"_rule_{type(command).__name__.lower()}", None)
        if handler is None:
            raise AnalysisError(f"no derivation rule for {type(command).__name__}")
        pre = handler(command, post)
        self._record(command, handler.__name__.replace("_rule_", "Q:"), pre, post)
        return pre

    # -- simple rules ---------------------------------------------------------------------

    def _rule_skip(self, command: ast.Skip, post: PotentialAnnotation) -> PotentialAnnotation:
        return post

    def _rule_abort(self, command: ast.Abort, post: PotentialAnnotation) -> PotentialAnnotation:
        return PotentialAnnotation.zero()

    def _rule_assert(self, command: ast.Assert, post: PotentialAnnotation) -> PotentialAnnotation:
        return post

    def _rule_assume(self, command: ast.Assume, post: PotentialAnnotation) -> PotentialAnnotation:
        return post

    def _rule_tick(self, command: ast.Tick, post: PotentialAnnotation) -> PotentialAnnotation:
        if command.is_constant:
            return post.add_constant(command.amount)
        context = self._context_before(command)
        try:
            amount = ast.expr_to_linexpr(command.amount)
        except LoweringError as exc:
            raise AnalysisError(f"tick amount is not linear: {command.amount}") from exc
        # max(0, e) >= e, so charging the interval atom is a sound upper bound
        # on the consumed amount (and exact whenever the context proves e >= 0).
        return post.add_polynomial(Polynomial.interval(amount))

    # -- assignments -------------------------------------------------------------------------

    def _rule_assign(self, command: ast.Assign, post: PotentialAnnotation) -> PotentialAnnotation:
        try:
            rhs = ast.expr_to_linexpr(command.expr)
        except LoweringError:
            return post.drop_monomials_with_variable(
                command.target, self.system,
                origin=f"nonlinear-assign:{command.target}@{command.node_id}",
                rows=self._log_rows("drop"))
        return post.substitute(command.target, rhs)

    def _rule_sample(self, command: ast.Sample, post: PotentialAnnotation) -> PotentialAnnotation:
        try:
            base = ast.expr_to_linexpr(command.expr)
        except LoweringError:
            return post.drop_monomials_with_variable(
                command.target, self.system,
                origin=f"nonlinear-sample:{command.target}@{command.node_id}",
                rows=self._log_rows("drop"))
        parts: List[Tuple[Fraction, PotentialAnnotation]] = []
        for value, probability in command.distribution.support():
            if command.op == "+":
                outcome = base + value
            elif command.op == "-":
                outcome = base - value
            else:
                outcome = base * value
            parts.append((probability, post.substitute(command.target, outcome)))
        return PotentialAnnotation.weighted_sum(parts)

    # -- branching ---------------------------------------------------------------------------------

    def _rule_probchoice(self, command: ast.ProbChoice,
                         post: PotentialAnnotation) -> PotentialAnnotation:
        left_pre = self.analyze_command(command.left, post)
        right_pre = self.analyze_command(command.right, post)
        return PotentialAnnotation.weighted_sum([
            (command.probability, left_pre),
            (1 - command.probability, right_pre),
        ])

    def _rule_if(self, command: ast.If, post: PotentialAnnotation) -> PotentialAnnotation:
        context = self._context_before(command)
        then_ctx = context.add_facts(facts_from_condition(command.condition))
        else_ctx = context.add_facts(negated_facts_from_condition(command.condition))
        then_pre = self.analyze_command(command.then_branch, post)
        else_pre = self.analyze_command(command.else_branch, post)
        monomials = template_monomials_for_join(then_pre.monomials(), else_pre.monomials())
        joined = self._new_template(monomials, "if")
        self.weaken(then_ctx, joined, then_pre, origin=f"if-then@{command.node_id}")
        self.weaken(else_ctx, joined, else_pre, origin=f"if-else@{command.node_id}")
        return joined

    def _rule_nondetchoice(self, command: ast.NonDetChoice,
                           post: PotentialAnnotation) -> PotentialAnnotation:
        context = self._context_before(command)
        left_pre = self.analyze_command(command.left, post)
        right_pre = self.analyze_command(command.right, post)
        monomials = template_monomials_for_join(left_pre.monomials(), right_pre.monomials())
        joined = self._new_template(monomials, "nd")
        self.weaken(context, joined, left_pre, origin=f"nondet-left@{command.node_id}")
        self.weaken(context, joined, right_pre, origin=f"nondet-right@{command.node_id}")
        return joined

    # -- sequencing ----------------------------------------------------------------------------------

    def _rule_seq(self, command: ast.Seq, post: PotentialAnnotation) -> PotentialAnnotation:
        current = post
        for sub in reversed(command.commands):
            current = self.analyze_command(sub, current)
        return current

    # -- loops ----------------------------------------------------------------------------------------

    def _rule_while(self, command: ast.While, post: PotentialAnnotation) -> PotentialAnnotation:
        invariant_ctx = self._context_before(command)
        monomials = template_monomials_for_loop(command, invariant_ctx,
                                                post.monomials(), self.basegen_config)
        invariant = self._new_template(monomials, "inv")
        exit_ctx = invariant_ctx.add_facts(
            negated_facts_from_condition(command.condition))
        body_ctx = invariant_ctx.add_facts(facts_from_condition(command.condition))
        # Loop exit: the invariant must cover the continuation's requirement.
        self.weaken(exit_ctx, invariant, post, origin=f"loop-exit@{command.node_id}")
        # Loop body: the invariant must be restored after one iteration.
        body_pre = self.analyze_command(command.body, invariant)
        self.weaken(body_ctx, invariant, body_pre, origin=f"loop-head@{command.node_id}")
        return invariant

    # -- procedure calls ----------------------------------------------------------------------------------

    def _rule_call(self, command: ast.Call, post: PotentialAnnotation) -> PotentialAnnotation:
        spec = self.specs.lookup(command.procedure)
        if spec is None:
            raise AnalysisError(
                f"no specification for procedure {command.procedure!r}; "
                "non-recursive calls should have been inlined")
        frame_terms: Dict[Monomial, AffExpr] = {}
        rows = self._log_rows("call")
        for monomial, coeff in post.terms.items():
            if spec.frameable(monomial):
                frame_terms[monomial] = coeff
            else:
                # The callee may change this base function: its potential
                # cannot be framed across the call, and the (zero) callee
                # post-annotation cannot supply it either.
                index = self.system.add_eq(
                    coeff, 0, origin=f"call-frame:{command.procedure}:{monomial}")
                if index is not None:
                    rows[monomial] = index
        frame = PotentialAnnotation(frame_terms)
        return spec.pre.plus(frame)

    # -- procedure bodies ----------------------------------------------------------------------------------

    def derive_procedure(self, name: str, post: PotentialAnnotation,
                         entry_context: Optional[Context] = None
                         ) -> PotentialAnnotation:
        """Derive a pre-annotation for the body of procedure ``name``."""
        proc = self.program.procedures[name]
        return self.analyze_command(proc.body, post)

    def constrain_specification(self, name: str) -> None:
        """Emit the ``ValidCtx`` obligation for the registered spec of ``name``."""
        spec = self.specs.lookup(name)
        if spec is None:
            raise AnalysisError(f"procedure {name!r} has no registered specification")
        proc = self.program.procedures[name]
        body_pre = self.analyze_command(proc.body, spec.post)
        entry_context = self.interpreter.context_before(proc.body)
        self.weaken(entry_context, spec.pre, body_pre, origin=f"spec:{name}")

    # ======================================================================
    # Degree escalation: the append-only extension walk
    # ======================================================================

    def begin_extension(self, basegen_config: BaseGenConfig) -> None:
        """Start replaying the derivation at the next degree.

        The caller must have opened an extension round on the constraint
        system first.  The walk consumes the journals (steps, templates,
        weakens, row events) in the exact order the base walk produced
        them -- the derivation is syntax-directed, so replaying the same
        AST visits the same rule sequence.
        """
        if self._extending:
            raise RuntimeError("extension walk already in progress")
        self.basegen_config = basegen_config
        self._extending = True
        self._step_cursor = 0
        self._template_cursor = 0
        self._weaken_cursor = 0
        self._row_event_cursor = 0
        self._spec_deltas = {}

    def end_extension(self) -> None:
        """Finish the replay; assert every journal entry was consumed."""
        if not self._extending:
            raise RuntimeError("no extension walk in progress")
        if (self._step_cursor != len(self.steps)
                or self._template_cursor != len(self.templates)
                or self._weaken_cursor != len(self.weakens)
                or self._row_event_cursor != len(self.row_events)):
            raise AnalysisError(
                "degree-escalation replay diverged from the base derivation "
                f"(steps {self._step_cursor}/{len(self.steps)}, templates "
                f"{self._template_cursor}/{len(self.templates)}, weakens "
                f"{self._weaken_cursor}/{len(self.weakens)}, rows "
                f"{self._row_event_cursor}/{len(self.row_events)})")
        self._extending = False

    def register_spec_delta(self, name: str, delta: PotentialAnnotation) -> None:
        """Record the new-monomial part of an extended procedure spec."""
        self._spec_deltas[name] = delta

    def _next_row_event(self, tag: str) -> Dict[Monomial, int]:
        expected_tag, rows = self.row_events[self._row_event_cursor]
        if expected_tag != tag:
            raise AnalysisError(
                f"escalation replay drift: expected a {expected_tag!r} row "
                f"event, replayed {tag!r}")
        self._row_event_cursor += 1
        return rows

    def _extend_rows(self, rows: Dict[Monomial, int], monomial: Monomial,
                     delta: AffExpr, origin: str) -> None:
        """Route a per-monomial delta to its existing row or a fresh one."""
        if delta.is_zero():
            return
        index = rows.get(monomial)
        if index is not None:
            self.system.extend_constraint(index, delta)
        else:
            index = self.system.add_eq(delta, origin=origin)
            if index is not None:
                rows[monomial] = index

    # -- extension dispatch -------------------------------------------------

    def extend_command(self, command: ast.Command, post: PotentialAnnotation,
                       dpost: PotentialAnnotation
                       ) -> Tuple[PotentialAnnotation, PotentialAnnotation]:
        """Replay one command at the next degree; return ``(pre, delta_pre)``.

        ``post`` is the full next-degree continuation annotation and
        ``dpost`` its new-variable delta (``post == base_post + dpost``).
        The recorded :class:`DerivationStep` is updated in place so the
        certificate reflects the escalated derivation.
        """
        handler = getattr(self, f"_ext_{type(command).__name__.lower()}", None)
        if handler is None:
            raise AnalysisError(f"no escalation rule for {type(command).__name__}")
        pre, dpre = handler(command, post, dpost)
        step = self.steps[self._step_cursor]
        if step.node_id != command.node_id:
            raise AnalysisError(
                f"escalation replay drift at node {command.node_id} "
                f"(recorded step has node {step.node_id})")
        self.steps[self._step_cursor] = DerivationStep(
            step.node_id, step.rule, step.description, pre, post)
        self._step_cursor += 1
        return pre, dpre

    def extend_specification(self, name: str) -> None:
        """Replay the ``ValidCtx`` obligation of a procedure spec."""
        spec = self.specs.lookup(name)
        if spec is None:
            raise AnalysisError(f"procedure {name!r} has no registered specification")
        proc = self.program.procedures[name]
        body_pre, dbody_pre = self.extend_command(
            proc.body, spec.post, PotentialAnnotation.zero())
        entry_context = self.interpreter.context_before(proc.body)
        self.extend_weaken(entry_context, spec.pre,
                           self._spec_deltas.get(name, PotentialAnnotation.zero()),
                           body_pre, dbody_pre, origin=f"spec:{name}")

    def extend_template(self, monomials
                        ) -> Tuple[PotentialAnnotation, PotentialAnnotation]:
        """Grow the next journaled template to cover ``monomials``."""
        record = self.templates[self._template_cursor]
        self._template_cursor += 1
        merged, delta = PotentialAnnotation.extend_template(
            self.system, record.annotation, monomials, record.name, nonneg=True)
        record.annotation = merged
        return merged, delta

    # -- extended weakening --------------------------------------------------

    def extend_weaken(self, context: Context,
                      stronger: PotentialAnnotation, dstronger: PotentialAnnotation,
                      weaker: PotentialAnnotation, dweaker: PotentialAnnotation,
                      origin: str) -> None:
        """Replay a ``Q:Weaken`` at the next degree.

        The degree-``d`` rows stay as they are; this emits, per monomial,
        only the *delta* contribution -- new template coefficients and the
        columns of the newly applicable rewrite functions (e.g. the lifted
        degree-2 products).  Deltas land on the recorded row of the
        monomial when one exists, else in a fresh row; either way the
        combined system is row-for-row what a from-scratch derivation at
        the higher degree would build, with the base rewrites kept as a
        (sound) superset.
        """
        if context.is_unreachable or not context.is_satisfiable():
            return  # the base walk skipped this weakening too
        record = self.weakens[self._weaken_cursor]
        self._weaken_cursor += 1
        if record.origin != origin:
            raise AnalysisError(
                f"escalation replay drift: expected weakening "
                f"{record.origin!r}, replayed {origin!r}")
        monomials: Set[Monomial] = set(stronger.monomials()) | set(weaker.monomials())
        monomials.add(Monomial.one())
        max_degree = max((m.degree() for m in monomials), default=1)
        rewrites = generate_rewrites(context, monomials, max_degree)
        known = {rewrite.polynomial for rewrite in record.rewrites}
        fresh = [rewrite for rewrite in rewrites
                 if rewrite.polynomial not in known]
        multipliers = [self.system.new_var(self._fresh_name(f"u_{origin}_"),
                                           nonneg=True)
                       for _ in fresh]
        by_monomial: Dict[Monomial, List[Tuple[AffExpr, Fraction]]] = {}
        for multiplier, rewrite in zip(multipliers, fresh):
            for monomial, coeff in rewrite.polynomial.term_items():
                by_monomial.setdefault(monomial, []).append((multiplier, -coeff))
        delta_monomials: Set[Monomial] = set(dstronger.terms) | set(dweaker.terms)
        delta_monomials.update(by_monomial)
        for monomial in sorted(delta_monomials, key=lambda m: m.sort_key()):
            pairs = [(dstronger.coefficient(monomial), 1),
                     (dweaker.coefficient(monomial), -1)]
            pairs.extend(by_monomial.get(monomial, ()))
            self._extend_rows(record.rows, monomial,
                              AffExpr.linear_combination(pairs),
                              origin=f"weaken:{origin}:{monomial}")
        record.stronger = stronger
        record.weaker = weaker
        # generate_rewrites returns shared memoised lists: concatenate into
        # fresh lists instead of mutating.
        record.rewrites = list(record.rewrites) + fresh
        record.multipliers = list(record.multipliers) + multipliers

    # -- per-rule extension handlers -----------------------------------------
    # Each mirrors its ``_rule_*`` twin on (full, delta) pairs.  Rational
    # contributions (tick amounts, probabilities, substitution scales) are
    # identical across degrees, so they act on the full annotation while the
    # delta tracks exactly the new-variable part.

    def _ext_skip(self, command, post, dpost):
        return post, dpost

    def _ext_abort(self, command, post, dpost):
        return PotentialAnnotation.zero(), PotentialAnnotation.zero()

    def _ext_assert(self, command, post, dpost):
        return post, dpost

    def _ext_assume(self, command, post, dpost):
        return post, dpost

    def _ext_tick(self, command, post, dpost):
        if command.is_constant:
            return post.add_constant(command.amount), dpost
        try:
            amount = ast.expr_to_linexpr(command.amount)
        except LoweringError as exc:
            raise AnalysisError(f"tick amount is not linear: {command.amount}") from exc
        return post.add_polynomial(Polynomial.interval(amount)), dpost

    def _ext_drop(self, var: str, post: PotentialAnnotation,
                  dpost: PotentialAnnotation, origin: str
                  ) -> Tuple[PotentialAnnotation, PotentialAnnotation]:
        rows = self._next_row_event("drop")
        kept_delta: Dict[Monomial, AffExpr] = {}
        for monomial, coeff in dpost.terms.items():
            if var in monomial.variables():
                self._extend_rows(rows, monomial, coeff, origin=origin)
            else:
                kept_delta[monomial] = coeff
        kept_full = {monomial: coeff for monomial, coeff in post.terms.items()
                     if var not in monomial.variables()}
        return PotentialAnnotation(kept_full), PotentialAnnotation(kept_delta)

    def _ext_assign(self, command, post, dpost):
        try:
            rhs = ast.expr_to_linexpr(command.expr)
        except LoweringError:
            return self._ext_drop(
                command.target, post, dpost,
                origin=f"nonlinear-assign:{command.target}@{command.node_id}")
        return (post.substitute(command.target, rhs),
                dpost.substitute(command.target, rhs))

    def _ext_sample(self, command, post, dpost):
        try:
            base = ast.expr_to_linexpr(command.expr)
        except LoweringError:
            return self._ext_drop(
                command.target, post, dpost,
                origin=f"nonlinear-sample:{command.target}@{command.node_id}")
        full_parts: List[Tuple[Fraction, PotentialAnnotation]] = []
        delta_parts: List[Tuple[Fraction, PotentialAnnotation]] = []
        for value, probability in command.distribution.support():
            if command.op == "+":
                outcome = base + value
            elif command.op == "-":
                outcome = base - value
            else:
                outcome = base * value
            full_parts.append((probability,
                               post.substitute(command.target, outcome)))
            delta_parts.append((probability,
                                dpost.substitute(command.target, outcome)))
        return (PotentialAnnotation.weighted_sum(full_parts),
                PotentialAnnotation.weighted_sum(delta_parts))

    def _ext_probchoice(self, command, post, dpost):
        left, dleft = self.extend_command(command.left, post, dpost)
        right, dright = self.extend_command(command.right, post, dpost)
        weights = [(command.probability, left), (1 - command.probability, right)]
        dweights = [(command.probability, dleft), (1 - command.probability, dright)]
        return (PotentialAnnotation.weighted_sum(weights),
                PotentialAnnotation.weighted_sum(dweights))

    def _ext_if(self, command, post, dpost):
        context = self._context_before(command)
        then_ctx = context.add_facts(facts_from_condition(command.condition))
        else_ctx = context.add_facts(negated_facts_from_condition(command.condition))
        then_pre, dthen = self.extend_command(command.then_branch, post, dpost)
        else_pre, delse = self.extend_command(command.else_branch, post, dpost)
        monomials = template_monomials_for_join(then_pre.monomials(),
                                                else_pre.monomials())
        joined, djoined = self.extend_template(monomials)
        self.extend_weaken(then_ctx, joined, djoined, then_pre, dthen,
                           origin=f"if-then@{command.node_id}")
        self.extend_weaken(else_ctx, joined, djoined, else_pre, delse,
                           origin=f"if-else@{command.node_id}")
        return joined, djoined

    def _ext_nondetchoice(self, command, post, dpost):
        context = self._context_before(command)
        left_pre, dleft = self.extend_command(command.left, post, dpost)
        right_pre, dright = self.extend_command(command.right, post, dpost)
        monomials = template_monomials_for_join(left_pre.monomials(),
                                                right_pre.monomials())
        joined, djoined = self.extend_template(monomials)
        self.extend_weaken(context, joined, djoined, left_pre, dleft,
                           origin=f"nondet-left@{command.node_id}")
        self.extend_weaken(context, joined, djoined, right_pre, dright,
                           origin=f"nondet-right@{command.node_id}")
        return joined, djoined

    def _ext_seq(self, command, post, dpost):
        current, dcurrent = post, dpost
        for sub in reversed(command.commands):
            current, dcurrent = self.extend_command(sub, current, dcurrent)
        return current, dcurrent

    def _ext_while(self, command, post, dpost):
        invariant_ctx = self._context_before(command)
        monomials = template_monomials_for_loop(command, invariant_ctx,
                                                post.monomials(),
                                                self.basegen_config)
        invariant, dinvariant = self.extend_template(monomials)
        exit_ctx = invariant_ctx.add_facts(
            negated_facts_from_condition(command.condition))
        body_ctx = invariant_ctx.add_facts(facts_from_condition(command.condition))
        self.extend_weaken(exit_ctx, invariant, dinvariant, post, dpost,
                           origin=f"loop-exit@{command.node_id}")
        body_pre, dbody = self.extend_command(command.body, invariant, dinvariant)
        self.extend_weaken(body_ctx, invariant, dinvariant, body_pre, dbody,
                           origin=f"loop-head@{command.node_id}")
        return invariant, dinvariant

    def _ext_call(self, command, post, dpost):
        spec = self.specs.lookup(command.procedure)
        if spec is None:
            raise AnalysisError(
                f"no specification for procedure {command.procedure!r}; "
                "non-recursive calls should have been inlined")
        rows = self._next_row_event("call")
        frame_terms: Dict[Monomial, AffExpr] = {}
        frame_delta: Dict[Monomial, AffExpr] = {}
        for monomial, coeff in dpost.terms.items():
            if spec.frameable(monomial):
                frame_delta[monomial] = coeff
            else:
                self._extend_rows(
                    rows, monomial, coeff,
                    origin=f"call-frame:{command.procedure}:{monomial}")
        for monomial, coeff in post.terms.items():
            if spec.frameable(monomial):
                frame_terms[monomial] = coeff
        dspec = self._spec_deltas.get(command.procedure,
                                      PotentialAnnotation.zero())
        return (spec.pre.plus(PotentialAnnotation(frame_terms)),
                dspec.plus(PotentialAnnotation(frame_delta)))
