"""Persistent, warm-started LP solver sessions (paper Sec. 5, incremental CLP).

Absynth drives one CLP instance *incrementally*: the base constraint matrix
is loaded once, each stage of the iterative objective scheme only adds its
objective-fixing row, and every solve starts from the previous solve's
simplex basis.  The staged pipeline (:mod:`repro.core.pipeline`) already
grows the :class:`~repro.core.solver.AssembledSystem` append-only across
degree escalations -- exactly the access pattern warm-starting was built
for -- but SciPy's ``linprog`` has no incremental API, so every solve was
still cold.  This module closes that gap:

* :class:`LPSession` -- one solver instance owned by the pipeline's
  ``AnalysisState``, surviving objective stages *and* degree escalations.
  Stage rows (:meth:`LPSession.fix_objective`) and extension deltas
  (:meth:`LPSession.apply_extension`) mutate the live model instead of
  re-stacking matrices.
* :class:`ScipySession` -- the always-available fallback: each solve calls
  ``linprog`` on matrices served by the (extras-cached)
  :meth:`~repro.core.solver.AssembledSystem.matrices`, byte-identical to
  the pre-session code path.
* :class:`HighsSession` -- the native backend behind the optional
  ``highspy`` dependency: the model lives inside one ``Highs`` instance,
  rows/columns are added in place, and each solve re-uses the previous
  basis (HiGHS hot-starts automatically on incremental modification).
  Any doubtful outcome -- a non-optimal/non-infeasible status, a solution
  violating the assembled constraints beyond the snap tolerance, or an
  unexpected ``highspy`` error -- triggers an automatic **cold re-solve**
  through the SciPy reference path, so a warm session can degrade but
  never diverge silently.

Backends register in the :data:`SOLVER_BACKENDS` registry (mirroring the
``DomainBackend`` registry of :mod:`repro.logic.entailment`); ``"auto"``
resolves to ``highs`` when ``highspy`` imports and ``scipy`` otherwise.
The correctness pin is the same as PR 3's: warm-started runs must produce
byte-identical bounds and certificates to cold runs registry-wide
(``tests/test_lpsession.py``).
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.constraints import AffExpr, SystemExtension
from repro.core.solver import AssembledSystem
from repro.utils.rationals import SNAP_TOLERANCE

#: Feasibility slack accepted when validating a warm solution against the
#: assembled matrices.  Anything a warm solve gets wrong beyond what
#: ``snap_fraction`` would absorb anyway forces the cold re-solve.
VALIDATION_TOLERANCE = SNAP_TOLERANCE

#: Process-default backend selector (mirrors ``$REPRO_DOMAIN``).
SOLVER_ENV = "REPRO_SOLVER"

#: The pseudo-backend that resolves to the best available real one.
AUTO = "auto"


# ---------------------------------------------------------------------------
# Session statistics
# ---------------------------------------------------------------------------

@dataclass
class SessionStats:
    """Counters of one session's life (threaded into ``PipelineStats``)."""

    #: Solves answered by the persistent native model (basis carried over).
    warm_solves: int = 0
    #: Solves that went through the from-scratch ``linprog`` reference path.
    cold_solves: int = 0
    #: Warm solves that started from a previous solve's simplex basis.
    basis_reuses: int = 0
    #: Warm solves whose outcome was rejected and re-solved cold.
    fallbacks: int = 0
    #: Objective-fixing rows added incrementally.
    stage_rows_added: int = 0
    #: Degree-escalation extensions applied to the live model.
    extensions_applied: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {"warm_solves": self.warm_solves,
                "cold_solves": self.cold_solves,
                "basis_reuses": self.basis_reuses,
                "fallbacks": self.fallbacks,
                "stage_rows_added": self.stage_rows_added,
                "extensions_applied": self.extensions_applied}

    def delta(self, before: Dict[str, int]) -> Dict[str, int]:
        return {key: value - before.get(key, 0)
                for key, value in self.snapshot().items()}


# ---------------------------------------------------------------------------
# Forced cold solving (test / fallback-drill hook)
# ---------------------------------------------------------------------------

_FORCE_COLD = False


@contextlib.contextmanager
def force_cold_solves():
    """Route every session solve through the cold reference path.

    The fallback drill: under this context a warm backend behaves exactly
    like a mid-run fallback on every stage, which is how the identity tests
    pin "a warm solve that degrades must not change the answer".
    """
    global _FORCE_COLD
    previous = _FORCE_COLD
    _FORCE_COLD = True
    try:
        yield
    finally:
        _FORCE_COLD = previous


# ---------------------------------------------------------------------------
# Session interface + the SciPy reference implementation
# ---------------------------------------------------------------------------

class LPSession:
    """A persistent solver over one growing :class:`AssembledSystem`.

    Lifecycle, as driven by :class:`~repro.core.solver.IterativeMinimizer`
    and :class:`~repro.core.pipeline.AnalysisPipeline`::

        session = create_session(backend, assembled)
        for degree attempt:
            for stage objective:
                values = session.solve(objective)     # warm where possible
                session.fix_objective(objective, bound)
            session.clear_stage_rows()                # drop the fix rows
            assembled.extend(extension)               # on escalation ...
            session.apply_extension(extension)        # ... grow the model
    """

    #: Registry name of the concrete backend ("scipy", "highs").
    name: str = ""

    def __init__(self, assembled: AssembledSystem) -> None:
        self.assembled = assembled
        self.stats = SessionStats()
        #: The per-attempt objective-fixing rows, in stage order.
        self._stage_rows: List[Tuple[AffExpr, float]] = []

    # -- the incremental protocol -------------------------------------------

    def solve(self, objective: Optional[AffExpr]) -> Optional[np.ndarray]:
        """Minimise ``objective`` subject to base + stage rows; None if infeasible."""
        raise NotImplementedError

    def fix_objective(self, objective: AffExpr, bound: float) -> None:
        """Add ``objective <= bound`` as an incremental stage row."""
        self._stage_rows.append((objective, bound))
        self.stats.stage_rows_added += 1

    def clear_stage_rows(self) -> None:
        """Drop every stage row (between degree attempts)."""
        self._stage_rows = []

    def apply_extension(self, extension: SystemExtension) -> None:
        """Mirror an ``AssembledSystem.extend`` onto the live model.

        Called *after* the assembly has grown; sessions that keep a native
        model add the new columns/rows and delta coefficients in place.
        """
        self.stats.extensions_applied += 1

    def close(self) -> None:
        """Release native solver resources (idempotent)."""

    # -- the shared cold reference path -------------------------------------

    def _cold_solve(self, objective: Optional[AffExpr]) -> Optional[np.ndarray]:
        """The from-scratch reference solve every backend can fall back to."""
        self.stats.cold_solves += 1
        return self.assembled.solve(objective, self._stage_rows)


class ScipySession(LPSession):
    """The always-available backend: cold ``linprog`` per solve.

    Byte-identical to the pre-session solver path: the matrices come from
    the same (extras-cached) :meth:`AssembledSystem.matrices` stack and the
    same ``method="highs"`` ``linprog`` call answers them.  No basis is
    carried across solves (SciPy exposes none), so ``warm_solves`` and
    ``basis_reuses`` stay 0 -- which is exactly what the pipeline counters
    should report for this backend.
    """

    name = "scipy"

    def solve(self, objective: Optional[AffExpr]) -> Optional[np.ndarray]:
        return self._cold_solve(objective)


# ---------------------------------------------------------------------------
# The native HiGHS backend (optional highspy dependency)
# ---------------------------------------------------------------------------

def _highspy():
    """Import ``highspy`` or return None (the dependency is optional)."""
    try:
        import highspy  # noqa: PLC0415 -- optional, imported on demand
    except ImportError:
        return None
    return highspy


class HighsSession(LPSession):
    """One native HiGHS instance surviving stages and degree escalations.

    The base matrices load once (:meth:`_build_model`); stage rows append
    through ``addRows`` and are deleted again between attempts; extension
    deltas become ``addCols``/``addRows``/``changeCoeff`` calls on the live
    model.  HiGHS keeps its factorised basis across incremental
    modifications, so every solve after the first starts warm.

    Anything suspicious -- a status other than optimal/infeasible, a
    solution violating the assembled constraints beyond
    :data:`VALIDATION_TOLERANCE`, or an unexpected ``highspy`` error --
    falls back to the cold SciPy reference path for that solve and rebuilds
    the native model afterwards, so one bad warm solve can never poison
    the rest of the session.
    """

    name = "highs"

    def __init__(self, assembled: AssembledSystem) -> None:
        super().__init__(assembled)
        self._hs = _highspy()
        if self._hs is None:  # pragma: no cover - guarded by the registry
            raise RuntimeError("highspy is not installed")
        self._solver = None
        #: Rows in the native model: base eq block, base ub block, then
        #: per-attempt stage rows at the tail (cleared before extensions).
        self._num_rows = 0
        self._num_cols = 0
        self._num_stage_rows = 0
        self._have_basis = False
        self._build_model()

    # -- model construction --------------------------------------------------

    def _infinity(self) -> float:
        return float(self._hs.kHighsInf)

    def _new_solver(self):
        solver = self._hs.Highs()
        solver.setOptionValue("output_flag", False)
        # One deterministic simplex instance: parallelism inside a solve
        # would trade reproducibility for nothing at these model sizes.
        solver.setOptionValue("threads", 1)
        return solver

    def _build_model(self) -> None:
        """(Re)load the assembled base matrices into a fresh Highs model."""
        hs = self._hs
        assembled = self.assembled
        inf = self._infinity()
        solver = self._new_solver()
        num_cols = assembled.num_vars
        lp = hs.HighsLp()
        lp.num_col_ = num_cols
        lp.col_cost_ = np.zeros(num_cols)
        lp.col_lower_ = np.array(
            [0.0 if low == 0.0 else -inf for low, _ in assembled.bounds])
        lp.col_upper_ = np.full(num_cols, inf)
        row_lower: List[float] = []
        row_upper: List[float] = []
        blocks = []
        if assembled.a_eq is not None:
            blocks.append(assembled.a_eq)
            row_lower.extend(assembled.b_eq.tolist())
            row_upper.extend(assembled.b_eq.tolist())
        if assembled.a_ub_base is not None:
            blocks.append(assembled.a_ub_base)
            row_lower.extend([-inf] * assembled.a_ub_base.shape[0])
            row_upper.extend(assembled.b_ub_base.tolist())
        lp.num_row_ = len(row_lower)
        lp.row_lower_ = np.asarray(row_lower, dtype=np.float64)
        lp.row_upper_ = np.asarray(row_upper, dtype=np.float64)
        if blocks:
            from scipy.sparse import vstack

            matrix = blocks[0] if len(blocks) == 1 \
                else vstack(blocks, format="csr")
            matrix = matrix.tocsr()
            matrix.sort_indices()
            lp.a_matrix_.format_ = hs.MatrixFormat.kRowwise
            lp.a_matrix_.start_ = matrix.indptr.astype(np.int32)
            lp.a_matrix_.index_ = matrix.indices.astype(np.int32)
            lp.a_matrix_.value_ = matrix.data.astype(np.float64)
        status = solver.passModel(lp)
        if status != hs.HighsStatus.kOk \
                and status != hs.HighsStatus.kWarning:
            raise RuntimeError(f"HiGHS rejected the model: {status}")
        self._solver = solver
        self._num_cols = num_cols
        self._num_rows = len(row_lower)
        self._num_stage_rows = 0
        self._have_basis = False
        # Re-append any stage rows that were live when the rebuild happened.
        for expr, bound in self._stage_rows:
            self._add_stage_row(expr, bound)

    def _row_arrays(self, expr: AffExpr,
                    sign: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
        items = [(var.index, sign * float(coeff))
                 for var, coeff in expr.term_items()]
        items.sort()
        indices = np.fromiter((index for index, _ in items), dtype=np.int32,
                              count=len(items))
        values = np.fromiter((value for _, value in items), dtype=np.float64,
                             count=len(items))
        return indices, values

    def _add_stage_row(self, expr: AffExpr, bound: float) -> None:
        """``expr <= bound`` appended at the tail of the native model."""
        indices, values = self._row_arrays(expr)
        upper = bound - float(expr.const)
        self._solver.addRows(
            1, np.array([-self._infinity()]), np.array([upper]),
            len(indices), np.array([0, len(indices)], dtype=np.int32),
            indices, values)
        self._num_rows += 1
        self._num_stage_rows += 1

    # -- the incremental protocol -------------------------------------------

    def fix_objective(self, objective: AffExpr, bound: float) -> None:
        super().fix_objective(objective, bound)
        try:
            self._add_stage_row(objective, bound)
        except Exception:  # noqa: BLE001 -- degrade to a rebuild, not a crash
            self._safe_rebuild()

    def clear_stage_rows(self) -> None:
        super().clear_stage_rows()
        if self._num_stage_rows == 0:
            return
        try:
            first = self._num_rows - self._num_stage_rows
            # Stage rows are always the trailing block: the minimizer clears
            # them before any extension rows are appended.
            self._solver.deleteRows(
                self._num_stage_rows,
                np.arange(first, self._num_rows, dtype=np.int32))
            self._num_rows = first
            self._num_stage_rows = 0
        except Exception:  # noqa: BLE001 -- degrade to a rebuild, not a crash
            self._safe_rebuild()

    def apply_extension(self, extension: SystemExtension) -> None:
        """Grow the live model: new columns, delta coefficients, new rows."""
        super().apply_extension(extension)
        assembled = self.assembled
        if self._num_stage_rows:
            # Defensive: the pipeline clears stage rows first.  If any are
            # left the tail invariant is gone; rebuild from the assembly.
            self._safe_rebuild()
            return
        try:
            inf = self._infinity()
            new_cols = assembled.num_vars - self._num_cols
            if new_cols > 0:
                lower = np.array(
                    [0.0 if low == 0.0 else -inf
                     for low, _ in assembled.bounds[self._num_cols:]])
                self._solver.addCols(
                    new_cols, np.zeros(new_cols), lower,
                    np.full(new_cols, inf),
                    0, np.zeros(new_cols + 1, dtype=np.int32),
                    np.zeros(0, dtype=np.int32), np.zeros(0))
                self._num_cols = assembled.num_vars
            # Delta entries of extended rows land in the new columns only.
            num_eq = assembled.a_eq.shape[0] if assembled.a_eq is not None \
                else 0
            for index, delta in extension.extended.items():
                kind, pos = assembled._row_pos[index]
                row = pos if kind == "eq" else num_eq + pos
                sign = 1.0 if kind == "eq" else -1.0
                for var, coeff in delta.term_items():
                    self._solver.changeCoeff(row, var.index,
                                             sign * float(coeff))
            # The round's brand-new constraints.  The assembly appended them
            # to its eq/ub blocks; the native model appends them at the tail
            # and remembers nothing about block order beyond the base split,
            # so rebuild row bounds straight from the journal window.
            system = assembled.system
            for index in range(extension.base_constraints,
                               system.num_constraints):
                constraint = system.constraints[index]
                if constraint.kind == "eq":
                    indices, values = self._row_arrays(constraint.expr)
                    value = -float(constraint.expr.const)
                    lower_b, upper_b = value, value
                else:
                    indices, values = self._row_arrays(constraint.expr,
                                                       sign=-1.0)
                    lower_b, upper_b = -inf, float(constraint.expr.const)
                self._solver.addRows(
                    1, np.array([lower_b]), np.array([upper_b]),
                    len(indices), np.array([0, len(indices)],
                                           dtype=np.int32),
                    indices, values)
                self._num_rows += 1
        except Exception:  # noqa: BLE001 -- degrade to a rebuild, not a crash
            self._safe_rebuild()
            return
        # The base-block row mapping changed shape; a rebuild keeps the
        # mapping trivial ONLY when the assembly's eq rows still precede its
        # ub rows in the native model -- which the tail-append above broke
        # for mixed extensions.  Rebuild in that case to stay exact.
        if self._model_row_order_diverged(extension):
            self._safe_rebuild()

    def _model_row_order_diverged(self, extension: SystemExtension) -> bool:
        """Whether tail-appended extension rows broke the eq/ub block split.

        The validation and delta paths address base rows as ``eq block
        first, ub block second``.  Appending a new *eq* row at the tail
        (after existing ub rows) breaks that addressing for any later
        extension, so the model is rebuilt once per such round.  Extensions
        that only add ub rows keep the split intact.
        """
        system = self.assembled.system
        return any(system.constraints[index].kind == "eq"
                   for index in range(extension.base_constraints,
                                      system.num_constraints))

    def _safe_rebuild(self) -> None:
        try:
            self._build_model()
        except Exception:  # noqa: BLE001 -- cold path still answers solves
            self._solver = None

    # -- solving -------------------------------------------------------------

    def solve(self, objective: Optional[AffExpr]) -> Optional[np.ndarray]:
        if _FORCE_COLD or self._solver is None:
            if self._solver is not None:
                self.stats.fallbacks += 1
            return self._cold_solve(objective)
        if self.assembled.num_vars == 0:
            return np.zeros(0)
        hs = self._hs
        try:
            cost = self.assembled.objective_vector(objective)
            self._solver.changeColsCostByRange(0, self._num_cols - 1, cost)
            had_basis = self._have_basis
            run_status = self._solver.run()
            if run_status != hs.HighsStatus.kOk:
                raise RuntimeError(f"HiGHS run() returned {run_status}")
            status = self._solver.getModelStatus()
            if status == hs.HighsModelStatus.kInfeasible:
                # Trust proven infeasibility: it is a property of the rows,
                # not of the starting basis, and re-deriving it cold would
                # make every failed degree attempt pay twice.
                self.stats.warm_solves += 1
                if had_basis:
                    self.stats.basis_reuses += 1
                self._have_basis = True
                return None
            if status != hs.HighsModelStatus.kOptimal:
                raise RuntimeError(f"HiGHS model status {status}")
            values = np.asarray(self._solver.getSolution().col_value,
                                dtype=np.float64)
            if values.shape != (self.assembled.num_vars,) \
                    or not self._validate(values):
                raise RuntimeError("warm solution failed validation")
        except Exception:  # noqa: BLE001 -- any doubt means a cold re-solve
            self.stats.fallbacks += 1
            self._safe_rebuild()
            return self._cold_solve(objective)
        self.stats.warm_solves += 1
        if had_basis:
            self.stats.basis_reuses += 1
        self._have_basis = True
        return values

    def _validate(self, values: np.ndarray) -> bool:
        """Check a warm solution against the assembled matrices + stage rows."""
        assembled = self.assembled
        tol = VALIDATION_TOLERANCE
        if assembled.a_eq is not None:
            residual = assembled.a_eq @ values - assembled.b_eq
            if residual.size and float(np.abs(residual).max()) > tol:
                return False
        if assembled.a_ub_base is not None:
            slack = assembled.a_ub_base @ values - assembled.b_ub_base
            if slack.size and float(slack.max()) > tol:
                return False
        for (low, _), value in zip(assembled.bounds, values):
            if low == 0.0 and value < -tol:
                return False
        for expr, bound in self._stage_rows:
            left = sum(float(coeff) * values[var.index]
                       for var, coeff in expr.term_items()) \
                + float(expr.const)
            if left > bound + tol:
                return False
        return True

    def close(self) -> None:
        self._solver = None


# ---------------------------------------------------------------------------
# The backend registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SolverBackend:
    """One registered LP backend: a name, a factory, an availability probe."""

    name: str
    factory: Callable[[AssembledSystem], LPSession]
    #: Whether the backend can run in this process (dependencies importable).
    available: Callable[[], bool] = field(default=lambda: True)


SOLVER_BACKENDS: Dict[str, SolverBackend] = {}

#: Resolution order of ``auto``: first available backend wins.
_AUTO_ORDER = ("highs", "scipy")


def register_solver_backend(backend: SolverBackend) -> None:
    SOLVER_BACKENDS[backend.name] = backend


register_solver_backend(SolverBackend("scipy", ScipySession))
register_solver_backend(SolverBackend(
    "highs", HighsSession, available=lambda: _highspy() is not None))


def solver_choices() -> Tuple[str, ...]:
    """Every accepted ``--solver`` value (registered backends + ``auto``)."""
    return (AUTO,) + tuple(sorted(SOLVER_BACKENDS))


def available_solver_backends() -> Tuple[str, ...]:
    """The registered backends whose dependencies import in this process."""
    return tuple(name for name in sorted(SOLVER_BACKENDS)
                 if SOLVER_BACKENDS[name].available())


def default_solver() -> str:
    """The process-default selector: ``$REPRO_SOLVER`` or ``auto``."""
    return os.environ.get(SOLVER_ENV, "").strip() or AUTO


def resolve_solver_backend(name: Optional[str]) -> str:
    """A user selector (None/auto/backend name) -> a concrete backend name.

    Raises ``ValueError`` for unknown names and for explicitly requested
    backends whose dependencies are missing -- mirroring
    :func:`repro.logic.entailment.resolve_domain`, so front ends report a
    structured error instead of an import crash mid-analysis.
    """
    selector = (name or default_solver()).strip() or AUTO
    if selector == AUTO:
        for candidate in _AUTO_ORDER:
            backend = SOLVER_BACKENDS.get(candidate)
            if backend is not None and backend.available():
                return candidate
        raise ValueError("no LP solver backend is available")
    backend = SOLVER_BACKENDS.get(selector)
    if backend is None:
        raise ValueError(
            f"unknown LP solver backend {selector!r} "
            f"(known: {', '.join(solver_choices())})")
    if not backend.available():
        raise ValueError(
            f"LP solver backend {selector!r} is not available in this "
            f"environment (install the optional dependency, e.g. "
            f"pip install 'absynth-repro[highs]')")
    return selector


def create_session(name: Optional[str],
                   assembled: AssembledSystem) -> LPSession:
    """Build a session on the resolved backend for ``assembled``."""
    return SOLVER_BACKENDS[resolve_solver_backend(name)].factory(assembled)
