"""The staged, incremental analysis pipeline (degree-escalation reuse).

The analyzer used to rebuild *everything* per degree retry: front-end
transforms, abstract interpretation, templates, the whole
:class:`~repro.core.constraints.ConstraintSystem` and the LP assembly.  The
pipeline splits one analysis into explicit stages with a persistent
:class:`AnalysisState`:

1. **prepare** -- program transforms + abstract interpretation.  Degree
   independent; computed exactly once per analysis.
2. **templates / derive** -- the base derivation at degree 1 (the journaled
   walk of :class:`~repro.core.derivation.DerivationBuilder`), then one
   append-only *extension* walk per further degree: templates grow
   monotonically (new monomials get new LP variables, old ones keep
   theirs), existing constraint rows are kept verbatim and only gain
   entries in the new columns, and only the constraints mentioning new
   variables are emitted.
3. **solve** -- the iterative LP over an :class:`~repro.core.solver.
   AssembledSystem` that is *grown in place* across escalations instead of
   being re-translated.

Every analysis at degree ``d`` builds its system through the same staged
construction (base degree, then extensions up to ``d``) whether or not the
intermediate degrees are solved.  Consequence: an escalating run
(``max_degree=1`` failing, retrying at 2) and a cold ``max_degree=2`` run
produce *byte-identical* constraint systems, hence byte-identical bounds
and certificates -- the escalating run simply reuses the work it already
did.  Per-stage wall times and variable/constraint deltas are recorded in
:class:`PipelineStats` and threaded through
:class:`~repro.core.analyzer.AnalysisResult` into the service layer and
``BENCH_entailment.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.core.annotations import PotentialAnnotation
from repro.core.basegen import template_monomials_for_procedure
from repro.core.bounds import ExpectedBound
from repro.core.certificates import build_certificate
from repro.core.constraints import AffExpr, ConstraintSystem
from repro.core.derivation import DerivationBuilder
from repro.core.lpsession import LPSession, create_session, \
    resolve_solver_backend
from repro.core.solver import AssembledSystem, IterativeMinimizer, LPSolution
from repro.core.specs import ProcedureSpec, SpecContext
from repro.lang import ast
from repro.lang.errors import AnalysisError
from repro.lang.transform import counter_as_resource, inline_calls, modified_variables
from repro.logic.absint import AbstractInterpreter
from repro.utils.polynomials import Polynomial

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.analyzer import AnalyzerConfig, AnalysisResult


# ---------------------------------------------------------------------------
# Stage statistics
# ---------------------------------------------------------------------------

@dataclass
class DegreeStage:
    """Build/solve statistics of one degree stage of the pipeline."""

    degree: int
    #: Whether this stage was built from scratch ("base") or appended onto
    #: the previous degree's system ("extend").
    kind: str = "base"
    build_seconds: float = 0.0
    solve_seconds: float = 0.0
    variables_added: int = 0
    constraints_added: int = 0
    #: Rows of earlier degrees that gained entries in new columns.
    constraints_extended: int = 0
    #: Rows of earlier degrees kept verbatim (no new entries at all).
    constraints_reused: int = 0
    variables_total: int = 0
    constraints_total: int = 0
    solved: bool = False
    feasible: Optional[bool] = None
    #: LP-session counters of this stage's solve attempt: solves answered by
    #: the persistent warm model, solves through the cold reference path,
    #: warm solves that reused the previous simplex basis, and warm solves
    #: rejected into a cold re-solve (see ``repro.core.lpsession``).
    warm_solves: int = 0
    cold_solves: int = 0
    basis_reuses: int = 0
    solver_fallbacks: int = 0

    def reuse_ratio(self) -> Optional[float]:
        """Fraction of this stage's system carried over from earlier degrees."""
        if self.kind != "extend":
            return None
        total = self.variables_total + self.constraints_total
        if total == 0:
            return None
        carried = (self.variables_total - self.variables_added) \
            + self.constraints_reused + self.constraints_extended
        return round(carried / total, 4)

    def to_dict(self) -> Dict[str, object]:
        return {
            "degree": self.degree,
            "kind": self.kind,
            "build_seconds": round(self.build_seconds, 4),
            "solve_seconds": round(self.solve_seconds, 4),
            "variables_added": self.variables_added,
            "constraints_added": self.constraints_added,
            "constraints_extended": self.constraints_extended,
            "constraints_reused": self.constraints_reused,
            "variables_total": self.variables_total,
            "constraints_total": self.constraints_total,
            "solved": self.solved,
            "feasible": self.feasible,
            "reuse_ratio": self.reuse_ratio(),
            "warm_solves": self.warm_solves,
            "cold_solves": self.cold_solves,
            "basis_reuses": self.basis_reuses,
            "solver_fallbacks": self.solver_fallbacks,
        }


@dataclass
class PipelineStats:
    """Per-stage walls and system deltas of one full analysis."""

    prepare_seconds: float = 0.0
    #: Degrees whose LP was actually solved (the retry schedule).
    attempted_degrees: List[int] = field(default_factory=list)
    #: One entry per *constructed* degree (superset of the attempted ones:
    #: a cold ``max_degree=2`` run constructs degree 1 without solving it).
    stages: List[DegreeStage] = field(default_factory=list)
    #: The resolved LP backend that answered this analysis's solves
    #: ("scipy", "highs"; None before the first solve attempt).
    solver_backend: Optional[str] = None

    @property
    def escalation_reuse_ratio(self) -> Optional[float]:
        """Reuse ratio of the last extension stage (None for single-degree runs)."""
        for stage in reversed(self.stages):
            ratio = stage.reuse_ratio()
            if ratio is not None:
                return ratio
        return None

    def stage_for(self, degree: int) -> Optional[DegreeStage]:
        for stage in self.stages:
            if stage.degree == degree:
                return stage
        return None

    def build_seconds_total(self) -> float:
        return sum(stage.build_seconds for stage in self.stages)

    def solve_seconds_total(self) -> float:
        return sum(stage.solve_seconds for stage in self.stages)

    @property
    def warm_solves(self) -> int:
        return sum(stage.warm_solves for stage in self.stages)

    @property
    def cold_solves(self) -> int:
        return sum(stage.cold_solves for stage in self.stages)

    @property
    def basis_reuses(self) -> int:
        return sum(stage.basis_reuses for stage in self.stages)

    @property
    def solver_fallbacks(self) -> int:
        return sum(stage.solver_fallbacks for stage in self.stages)

    def to_dict(self) -> Dict[str, object]:
        return {
            "prepare_seconds": round(self.prepare_seconds, 4),
            "build_seconds": round(self.build_seconds_total(), 4),
            "solve_seconds": round(self.solve_seconds_total(), 4),
            "attempted_degrees": list(self.attempted_degrees),
            "escalation_reuse_ratio": self.escalation_reuse_ratio,
            "solver": self.solver_backend,
            "warm_solves": self.warm_solves,
            "cold_solves": self.cold_solves,
            "basis_reuses": self.basis_reuses,
            "solver_fallbacks": self.solver_fallbacks,
            "stages": [stage.to_dict() for stage in self.stages],
        }


# ---------------------------------------------------------------------------
# Persistent analysis state
# ---------------------------------------------------------------------------

@dataclass
class AnalysisState:
    """Everything the pipeline keeps alive across degree escalations."""

    program: ast.Program
    interpreter: AbstractInterpreter
    recursive: List[str]
    system: ConstraintSystem
    specs: SpecContext
    builder: Optional[DerivationBuilder] = None
    #: The entry annotation of the main procedure (merged across degrees).
    initial: Optional[PotentialAnnotation] = None
    #: LP assembly grown in place; created lazily at the first solve.
    assembled: Optional[AssembledSystem] = None
    #: Persistent LP solver session over ``assembled`` (same lifetime): the
    #: native model survives objective stages and degree escalations, so
    #: warm backends feed every solve the previous stage's simplex basis.
    session: Optional["LPSession"] = None
    built_degree: Optional[int] = None


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------

class AnalysisPipeline:
    """Drives prepare -> (templates/derive)* -> solve with state reuse."""

    def __init__(self, program: ast.Program, config: "AnalyzerConfig") -> None:
        self.program = program
        self.config = config
        self.stats = PipelineStats()

    # -- stage 1: prepare (degree independent) ------------------------------

    def prepare(self) -> AnalysisState:
        """Front-end transforms + abstract interpretation, exactly once."""
        started = time.perf_counter()
        program = self.program
        if self.config.resource_counter:
            program = counter_as_resource(program, self.config.resource_counter)
        if self.config.inline:
            program = inline_calls(program)
        interpreter = AbstractInterpreter(program)
        interpreter.ensure_procedure(program.main)
        recursive = sorted(program.recursive_procedures())
        for name in recursive:
            interpreter.ensure_procedure(name)
        self.stats.prepare_seconds = time.perf_counter() - started
        return AnalysisState(program=program, interpreter=interpreter,
                             recursive=recursive, system=ConstraintSystem(),
                             specs=SpecContext())

    # -- stages 2+3: templates + derivation ---------------------------------

    def ensure_degree(self, state: AnalysisState, degree: int) -> None:
        """Construct (incrementally) the system for ``degree``.

        The system is always built through the same stage sequence --
        base degree first, then one extension per further degree -- so the
        result is independent of which intermediate degrees were solved.
        """
        if state.built_degree is None:
            self._build_base(state, min(degree, 1))
        while state.built_degree < degree:
            self._extend(state, state.built_degree + 1)

    def _build_base(self, state: AnalysisState, degree: int) -> None:
        started = time.perf_counter()
        program = state.program
        basegen_config = self.config.basegen(degree)
        builder = DerivationBuilder(program, state.interpreter, state.system,
                                    basegen_config, state.specs)
        state.builder = builder
        # Specifications for (mutually) recursive procedures.
        for name in state.recursive:
            proc = program.procedures[name]
            entry_context = state.interpreter.context_before(proc.body)
            monomials = template_monomials_for_procedure(
                proc.body, entry_context, basegen_config)
            pre = PotentialAnnotation.template(state.system, monomials,
                                               f"spec_{name}", nonneg=True)
            state.specs.register(ProcedureSpec(
                name=name, pre=pre, post=PotentialAnnotation.zero(),
                modified_variables=modified_variables(program, name)))
        for name in state.recursive:
            builder.constrain_specification(name)
        state.initial = builder.analyze_command(program.main_procedure.body,
                                                PotentialAnnotation.zero())
        state.built_degree = degree
        self.stats.stages.append(DegreeStage(
            degree=degree, kind="base",
            build_seconds=time.perf_counter() - started,
            variables_added=state.system.num_variables,
            constraints_added=state.system.num_constraints,
            variables_total=state.system.num_variables,
            constraints_total=state.system.num_constraints))

    def _extend(self, state: AnalysisState, degree: int) -> None:
        started = time.perf_counter()
        program = state.program
        system = state.system
        builder = state.builder
        basegen_config = self.config.basegen(degree)
        system.begin_extension()
        builder.begin_extension(basegen_config)
        # Grow the spec templates first (mirroring the base registration
        # order), then replay the procedure obligations and the main body.
        for name in state.recursive:
            proc = program.procedures[name]
            entry_context = state.interpreter.context_before(proc.body)
            monomials = template_monomials_for_procedure(
                proc.body, entry_context, basegen_config)
            spec = state.specs.lookup(name)
            merged, delta = PotentialAnnotation.extend_template(
                system, spec.pre, monomials, f"spec_{name}", nonneg=True)
            spec.pre = merged
            builder.register_spec_delta(name, delta)
        for name in state.recursive:
            builder.extend_specification(name)
        state.initial, _ = builder.extend_command(
            program.main_procedure.body, state.initial,
            PotentialAnnotation.zero())
        builder.end_extension()
        extension = system.end_extension()
        if state.assembled is not None:
            state.assembled.extend(extension)
            if state.session is not None:
                # Mirror the growth onto the live solver model: new columns,
                # delta coefficients in fresh columns, and the round's rows.
                state.session.apply_extension(extension)
        state.built_degree = degree
        self.stats.stages.append(DegreeStage(
            degree=degree, kind="extend",
            build_seconds=time.perf_counter() - started,
            variables_added=system.num_variables - extension.base_variables,
            constraints_added=system.num_constraints - extension.base_constraints,
            constraints_extended=extension.constraints_extended,
            constraints_reused=(extension.base_constraints
                                - extension.constraints_extended),
            variables_total=system.num_variables,
            constraints_total=system.num_constraints))

    # -- stage 4: solve ------------------------------------------------------

    def solve_attempt(self, state: AnalysisState, degree: int) -> "AnalysisResult":
        from repro.core.analyzer import AnalysisResult

        started = time.perf_counter()
        system = state.system
        stage = self.stats.stage_for(degree)
        self.stats.attempted_degrees.append(degree)
        objectives = self._objectives(state.initial)
        if state.assembled is None:
            state.assembled = AssembledSystem(system)
        if state.session is None:
            state.session = create_session(self.config.solver,
                                           state.assembled)
            self.stats.solver_backend = state.session.name
        before = state.session.stats.snapshot()
        solver = IterativeMinimizer(system, tolerance=self.config.lp_tolerance)
        solution = solver.solve(objectives, session=state.session)
        elapsed = time.perf_counter() - started
        if stage is not None:
            stage.solve_seconds = elapsed
            stage.solved = True
            stage.feasible = solution is not None
            delta = state.session.stats.delta(before)
            stage.warm_solves = delta["warm_solves"]
            stage.cold_solves = delta["cold_solves"]
            stage.basis_reuses = delta["basis_reuses"]
            stage.solver_fallbacks = delta["fallbacks"]
        if solution is None:
            return AnalysisResult(
                False, None, degree, elapsed,
                system.num_variables, system.num_constraints, None,
                f"the LP is infeasible for degree {degree} "
                "(no bound exists for the chosen base functions)",
                failure_kind="no-bound")
        bound_poly = self._extract_bound(state.initial, solution)
        builder = state.builder
        certificate = build_certificate(bound_poly, builder.steps,
                                        builder.weakens, solution.assignment)
        return AnalysisResult(True, ExpectedBound(bound_poly), degree, elapsed,
                              system.num_variables, system.num_constraints,
                              certificate, "")

    # -- the driver ----------------------------------------------------------

    def run(self) -> "AnalysisResult":
        """Run the analysis over the configured degree-retry schedule.

        The whole run executes with the configured abstract domain active
        (:func:`repro.logic.entailment.use_domain`), so every ``Context``
        operation -- from abstract interpretation to the rewrite-side
        entailment checks -- is answered by the selected backend.  The
        interval pre-filter setting is activated the same way
        (:func:`repro.logic.entailment.use_prefilter`): per-analysis, and
        restored afterwards so a job's setting cannot leak into the next
        job in the same process.
        """
        from repro.core.analyzer import AnalysisResult
        from repro.logic.entailment import (resolve_domain, resolve_prefilter,
                                            use_domain, use_prefilter)

        try:
            domain = resolve_domain(self.config.domain)
            prefilter = resolve_prefilter(self.config.prefilter)
            resolve_solver_backend(self.config.solver)
        except ValueError as exc:
            return AnalysisResult(
                False, None, self.config.max_degree, 0.0, 0, 0, None,
                str(exc), failure_kind="analysis-error", stats=self.stats)
        with use_domain(domain), use_prefilter(prefilter):
            return self._run_attempts()

    def _run_attempts(self) -> "AnalysisResult":
        from dataclasses import replace

        from repro.core.analyzer import AnalysisResult

        started = time.perf_counter()
        config = self.config

        def finalise(result: "AnalysisResult") -> "AnalysisResult":
            return replace(result,
                           total_seconds=time.perf_counter() - started,
                           stats=self.stats)

        try:
            state = self.prepare()
        except AnalysisError as exc:
            return finalise(AnalysisResult(
                False, None, config.max_degree, 0.0, 0, 0, None, str(exc),
                failure_kind="analysis-error"))
        except MemoryError as exc:
            # The eliminator's constraint cap (ConstraintCapExceeded) on a
            # query with no local fallback: a *resource* failure of this
            # backend, not a property of the program.  Reported as the
            # structured ``resource-limit`` kind so the service layer can
            # retry under the cap-free polyhedra backend.
            return finalise(AnalysisResult(
                False, None, config.max_degree, 0.0, 0, 0, None,
                str(exc) or "constraint cap exceeded",
                failure_kind="resource-limit"))
        degrees = [config.max_degree]
        if config.auto_degree:
            degrees += list(range(config.max_degree + 1,
                                  config.degree_limit + 1))
        last_failure: Optional[AnalysisResult] = None
        for degree in degrees:
            try:
                self.ensure_degree(state, degree)
                result = self.solve_attempt(state, degree)
            except AnalysisError as exc:
                return finalise(AnalysisResult(
                    False, None, degree, 0.0,
                    state.system.num_variables, state.system.num_constraints,
                    None, str(exc), failure_kind="analysis-error"))
            except MemoryError as exc:
                return finalise(AnalysisResult(
                    False, None, degree, 0.0,
                    state.system.num_variables, state.system.num_constraints,
                    None, str(exc) or "constraint cap exceeded",
                    failure_kind="resource-limit"))
            if result.success:
                return finalise(result)
            last_failure = result
        assert last_failure is not None
        return finalise(last_failure)

    # -- objective construction ----------------------------------------------

    #: Reference scale and sample count for the objective weights.  The range
    #: is asymmetric because the paper's benchmarks (and inputs in general)
    #: are predominantly non-negative; a small negative tail keeps atoms such
    #: as ``|[n, 0]|`` from being weightless.
    _WEIGHT_SAMPLES = 300
    _WEIGHT_LOW = -250
    _WEIGHT_HIGH = 1000
    _WEIGHT_SEED = 12345

    def _weight_matrix(self, variables: Sequence[str]) -> "np.ndarray":
        """Deterministic pseudo-random reference states, one row per sample.

        The single vectorised ``integers`` call draws the exact same stream
        as per-variable scalar draws, so the reference states themselves are
        reproducible.  The downstream weighting evaluates monomials in
        float64 (rather than exact rationals converted at the end), so
        weights may differ in the last ulp for non-dyadic coefficients
        before ``limit_denominator`` snaps them.
        """
        import numpy as np

        rng = np.random.default_rng(self._WEIGHT_SEED)
        samples = rng.integers(self._WEIGHT_LOW, self._WEIGHT_HIGH + 1,
                               size=(self._WEIGHT_SAMPLES, len(variables)))
        return samples.astype(np.float64)

    def _objectives(self, initial: PotentialAnnotation) -> List[AffExpr]:
        """One weighted objective per degree, highest degree first.

        The LP minimises the bound itself, so each base function is weighted
        by its average magnitude over a set of reference input states (the
        paper weighs larger intervals more for the same reason: the objective
        should reflect how much each base function contributes to the bound's
        value).  Coefficients of higher-degree base functions are minimised
        first, then fixed, following the paper's iterative scheme.  Monomial
        magnitudes are evaluated with NumPy over the whole sample matrix at
        once, caching the shared ``max(0, D)`` atom columns.
        """
        import numpy as np

        variables = sorted({var for monomial in initial.terms
                            for var in monomial.variables()})
        column: Dict[str, int] = {var: i for i, var in enumerate(variables)}
        states = self._weight_matrix(variables) if variables else None
        atom_values: Dict[object, "np.ndarray"] = {}

        def values_of(atom) -> "np.ndarray":
            values = atom_values.get(atom)
            if values is None:
                coeffs = np.zeros(len(variables))
                for var, coeff in atom.diff.coeff_items:
                    coeffs[column[var]] = float(coeff)
                values = np.maximum(0.0, states @ coeffs
                                    + float(atom.diff.const_term))
                atom_values[atom] = values
            return values

        by_degree: Dict[int, AffExpr] = {}
        for monomial, coeff in initial.terms.items():
            degree = monomial.degree()
            if monomial.is_constant() or states is None:
                weight = Fraction(1)
            else:
                magnitudes = np.ones(self._WEIGHT_SAMPLES)
                for atom, power in monomial.factors:
                    magnitudes = magnitudes * values_of(atom) ** power
                mean = float(magnitudes.sum()) / self._WEIGHT_SAMPLES
                weight = Fraction(max(1.0, mean)).limit_denominator(1000)
            weighted = coeff * weight
            by_degree[degree] = by_degree.get(degree, AffExpr.zero()) + weighted
        return [by_degree[d] for d in sorted(by_degree, reverse=True)]

    # -- bound extraction -----------------------------------------------------

    def _extract_bound(self, initial: PotentialAnnotation,
                       solution: LPSolution) -> Polynomial:
        polynomial = initial.instantiate(solution.assignment)
        cleaned = {monomial: coeff for monomial, coeff in polynomial.terms.items()
                   if abs(float(coeff)) > self.config.coefficient_epsilon}
        return Polynomial(cleaned)
