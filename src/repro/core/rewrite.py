"""Rewrite functions: certified non-negative polynomials used by ``Q:Weaken``.

The ``Relax`` rule (paper Fig. 6) lets the analysis replace an annotation
``Q`` by ``Q' = Q - F * u`` where the columns of ``F`` are *rewrite
functions* -- linear combinations of base functions that are provably
non-negative under the current logical context -- and ``u >= 0``.  Rewrite
functions are how constant potential is extracted from interval potential
(e.g. ``|[x, n]| - |[x+1, n]| - 1 >= 0`` when ``x < n``) and how potential is
transferred between related base functions.

Generators implemented here (``c`` denotes a rational constant, ``A``/``B``
interval atoms, ``M`` a base monomial, and ``Gamma`` the logical context):

1. ``M`` itself -- every base function is non-negative, so potential may
   always be *discarded*.
2. ``A - c`` whenever ``Gamma |= D_A >= c`` with ``c > 0`` -- extracts
   constant potential from an interval known to be large.
3. ``A - B - c`` whenever ``Gamma |= D_A - D_B >= c`` and (for ``c > 0``)
   ``Gamma |= D_A >= c`` -- transfers potential between related intervals,
   possibly extracting (``c > 0``) or paying (``c < 0``) constants.
4. Products ``F * M`` of a degree-1 rewrite function with a base monomial --
   non-negative because both factors are, covering the polynomial cases
   (e.g. ``|[0,n]|^2`` telescoping).

This matches the heuristic described in Sec. 7.1 ("for the base function
max(0, n-x) we add the rewrite function max(0,n-x) - max(0,n-x-1) - 1 ...")
while additionally recording, for every generated function, the entailment
that justifies its non-negativity so certificates can be re-checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.logic.contexts import Context
from repro.logic.entailment import active_domain
from repro.utils.linear import LinExpr
from repro.utils.polynomials import IntervalAtom, Monomial, Polynomial


class RewriteFunction:
    """A polynomial provably non-negative under a logical context.

    ``reason`` documents the entailment justifying non-negativity.  Rendering
    these strings for the thousands of generated rewrites dominates the
    generator's cost, while only the handful picked by the LP (plus tests)
    ever read them -- so the constructor also accepts a zero-argument
    callable that is rendered lazily on first access.
    """

    __slots__ = ("polynomial", "_reason")

    def __init__(self, polynomial: Polynomial, reason) -> None:
        self.polynomial = polynomial
        self._reason = reason

    @property
    def reason(self) -> str:
        rendered = self._reason
        if callable(rendered):
            rendered = rendered()
            self._reason = rendered
        return rendered

    def __repr__(self) -> str:
        return f"RewriteFunction({self.polynomial}  [{self.reason}])"


def _atoms_of(monomials: Iterable[Monomial]) -> List[IntervalAtom]:
    atoms: List[IntervalAtom] = []
    seen: Set[IntervalAtom] = set()
    for monomial in monomials:
        for atom in monomial.atoms():
            if atom not in seen:
                seen.add(atom)
                atoms.append(atom)
    return atoms


def _share_variable(a: IntervalAtom, b: IntervalAtom) -> bool:
    return bool(set(a.variables()) & set(b.variables()))


#: Pairwise differences ``D_A - D_B`` recur across weakenings (the atom pool
#: is stable per program); memoise them process-wide.
_DIFF_CACHE: Dict[Tuple[IntervalAtom, IntervalAtom], LinExpr] = {}
_DIFF_CACHE_LIMIT = 65536


def _atom_difference(a: IntervalAtom, b: IntervalAtom) -> LinExpr:
    key = (a, b)
    difference = _DIFF_CACHE.get(key)
    if difference is None:
        difference = a.diff - b.diff
        if len(_DIFF_CACHE) >= _DIFF_CACHE_LIMIT:
            _DIFF_CACHE.clear()
        _DIFF_CACHE[key] = difference
    return difference


def _pair_constant(context: Context, difference: LinExpr,
                   lower_a: Optional[Fraction]) -> Optional[Fraction]:
    """The largest sound ``c`` for the rewrite ``A - B - c`` (None if invalid).

    ``difference`` is the precomputed ``D_A - D_B``; ``lower_a`` is the
    (cached) greatest lower bound of ``D_A`` under the context, or ``None``
    when unbounded below.
    """
    if difference.is_constant():
        gap: Optional[Fraction] = difference.const_term
    else:
        gap = context.greatest_lower_bound(difference)
    if gap is None:
        return None
    if gap <= 0:
        return gap
    # For a positive extraction we additionally need D_A >= c.
    if lower_a is None or lower_a <= 0:
        return Fraction(0)
    return min(gap, lower_a)


#: Memo for :func:`generate_rewrites`; repeated weakenings at the same
#: program point (loop entry/exit, degree retries) ask for identical sets.
_REWRITE_CACHE: Dict[Tuple, List[RewriteFunction]] = {}
_REWRITE_CACHE_LIMIT = 4096


def clear_rewrite_caches() -> None:
    """Drop the process-wide rewrite memos.

    Used between cold-timing passes (``perfsmoke --compare-domains``): the
    memos embed entailment-derived bounds, so a warm memo would let one
    domain's timing leg coast on another's query answers.
    """
    _REWRITE_CACHE.clear()
    _ATOM_REWRITE_CACHE.clear()


def generate_rewrites(context: Context,
                      monomials: Iterable[Monomial],
                      max_degree: int,
                      max_pair_rewrites: int = 3000) -> List[RewriteFunction]:
    """Generate rewrite functions relevant to a weakening between annotations.

    ``monomials`` should be the union of the base functions appearing in the
    stronger and weaker annotations; only atoms occurring there are
    considered, which keeps the LP small (the paper similarly only enriches
    the rewrite set on demand).  Results are memoised: the returned list is
    shared, so callers must not mutate it.
    """
    monomials = frozenset(monomials)
    # Keyed by the active abstract domain: both backends are exact (so the
    # entries would agree), but sharing them would let one domain's run
    # silently serve another's queries, defeating per-domain isolation,
    # statistics and timing comparisons.
    cache_key = (active_domain(), context, monomials, max_degree,
                 max_pair_rewrites)
    cached = _REWRITE_CACHE.get(cache_key)
    if cached is not None:
        return cached
    result = _generate_rewrites(context, monomials, max_degree,
                                max_pair_rewrites)
    if len(_REWRITE_CACHE) >= _REWRITE_CACHE_LIMIT:
        _REWRITE_CACHE.clear()
    _REWRITE_CACHE[cache_key] = result
    return result


#: Memo for the atom-level rewrites (categories 2 and 3 below).  They depend
#: only on the context and the atom pool -- *not* on the monomial pool or the
#: degree -- and the atom pool is essentially stable across degree escalation
#: (degree-``d+1`` monomials are products of existing atoms).  Caching them
#: lets the extension walk of :mod:`repro.core.derivation` skip the entire
#: pairwise-transfer generation when escalating, and lets a staged cold run
#: reuse the degree-1 work at degree 2.
_ATOM_REWRITE_CACHE: Dict[Tuple, Tuple[List[RewriteFunction],
                                       List[Tuple[Polynomial, object,
                                                  IntervalAtom]]]] = {}
_ATOM_REWRITE_CACHE_LIMIT = 4096


def _atom_rewrites(context: Context, atoms: Tuple[IntervalAtom, ...],
                   max_pair_rewrites: int
                   ) -> Tuple[List[RewriteFunction],
                              List[Tuple[Polynomial, object, IntervalAtom]]]:
    """Constant-extraction and pair-transfer rewrites over an atom pool.

    Returns ``(rewrites, degree_one)`` where ``degree_one`` additionally
    records ``(polynomial, reason, primary atom)`` for the degree-lifting
    products of :func:`_generate_rewrites`.  The returned lists are shared
    memo entries: callers must not mutate them.
    """
    cache_key = (active_domain(), context, atoms, max_pair_rewrites)
    cached = _ATOM_REWRITE_CACHE.get(cache_key)
    if cached is not None:
        return cached
    unit = Monomial.one()
    atom_monomials: Dict[IntervalAtom, Monomial] = {
        atom: Monomial.of_atom(atom) for atom in atoms}
    rewrites: List[RewriteFunction] = []

    # 2. constant extraction from single atoms (cache the lower bounds; they
    #    are reused by the pair rewrites below).
    degree_one: List[Tuple[Polynomial, object, IntervalAtom]] = []
    lower_bounds: Dict[IntervalAtom, Optional[Fraction]] = {}
    for atom in atoms:
        lower = context.greatest_lower_bound(atom.diff)
        lower_bounds[atom] = lower
        if lower is not None and lower > 0:
            poly = Polynomial({atom_monomials[atom]: 1, unit: -lower})
            reason = (lambda a=atom, c=lower: f"{a} >= {c} under context")
            rewrites.append(RewriteFunction(poly, reason))
            degree_one.append((poly, reason, atom))

    # 3. transfers between pairs of atoms.  Pairs differing only by a constant
    #    (the telescoping rewrites of Sec. 7.1) are generated first -- they
    #    need no entailment query and are the ones the derivations rely on --
    #    followed by general shared-variable pairs up to the budget.
    pair_candidates: List[Tuple[int, Fraction, IntervalAtom, IntervalAtom,
                                LinExpr]] = []
    for a in atoms:
        for b in atoms:
            if a is b:
                continue
            difference = _atom_difference(a, b)
            if difference.is_constant():
                # Smaller shifts first: the telescoping rewrites between
                # neighbouring offsets are the ones every derivation needs.
                pair_candidates.append((0, abs(difference.const_term), a, b,
                                        difference))
            elif _share_variable(a, b):
                pair_candidates.append((1, Fraction(0), a, b, difference))
    pair_candidates.sort(key=lambda item: (item[0], item[1]))
    pair_count = 0
    for _priority, _gap, a, b, difference in pair_candidates:
        if pair_count >= max_pair_rewrites:
            break
        constant = _pair_constant(context, difference, lower_bounds.get(a))
        if constant is None:
            continue
        poly = Polynomial({atom_monomials[a]: 1, atom_monomials[b]: -1,
                           unit: -constant})
        reason = (lambda x=a, y=b, c=constant: f"{x} - {y} >= {c} under context")
        rewrites.append(RewriteFunction(poly, reason))
        degree_one.append((poly, reason, a))
        pair_count += 1
    if len(_ATOM_REWRITE_CACHE) >= _ATOM_REWRITE_CACHE_LIMIT:
        _ATOM_REWRITE_CACHE.clear()
    _ATOM_REWRITE_CACHE[cache_key] = (rewrites, degree_one)
    return rewrites, degree_one


def _generate_rewrites(context: Context,
                       monomials: Iterable[Monomial],
                       max_degree: int,
                       max_pair_rewrites: int) -> List[RewriteFunction]:
    pool = sorted(set(monomials), key=lambda m: m.sort_key())
    atoms = _atoms_of(pool)
    rewrites: List[RewriteFunction] = []

    # 1. every base function may be discarded.
    for monomial in pool:
        rewrites.append(RewriteFunction(
            Polynomial.of_monomial(monomial),
            reason=lambda m=monomial: f"{m} >= 0"))

    # 2.+3. the atom-level rewrites (memoised across degrees/weakenings).
    shared, degree_one = _atom_rewrites(context, tuple(atoms),
                                        max_pair_rewrites)
    rewrites.extend(shared)

    # 4. lift degree-1 rewrites to higher degrees by multiplying with base
    #    monomials (both factors are non-negative).  Only atoms that actually
    #    occur inside higher-degree monomials of the pool are useful factors,
    #    which keeps the number of lifted columns small.
    if max_degree >= 2:
        higher_atoms: Set[IntervalAtom] = set()
        for monomial in pool:
            if monomial.degree() >= 2:
                higher_atoms.update(monomial.atoms())
        lifted: List[RewriteFunction] = []
        max_lifted = 2000
        for poly, reason, base_atom in degree_one:
            if higher_atoms and base_atom not in higher_atoms:
                continue
            for atom in sorted(higher_atoms, key=lambda a: a.sort_key()):
                factor = Monomial.of_atom(atom)
                if factor.degree() + poly.degree() > max_degree:
                    continue
                product = poly * Polynomial.of_monomial(factor)
                lifted.append(RewriteFunction(
                    product,
                    reason=lambda r=reason, f=factor:
                        f"({r() if callable(r) else r}) * {f}"))
                if len(lifted) >= max_lifted:
                    break
            if len(lifted) >= max_lifted:
                break
        rewrites.extend(lifted)

    return rewrites


def applicable_monomials(rewrites: Sequence[RewriteFunction]) -> Set[Monomial]:
    """All monomials mentioned by a collection of rewrite functions."""
    monomials: Set[Monomial] = set()
    for rewrite in rewrites:
        monomials.update(rewrite.polynomial.terms)
    return monomials
