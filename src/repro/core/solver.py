"""LP solving back end (paper Sec. 5, "Solving the constraints").

Absynth feeds its constraints to CoinOr's CLP; here we use SciPy's HiGGS/
HiGHS-based ``linprog``.  The module provides

* :func:`solve_lp` -- solve one LP (minimise a linear objective subject to the
  collected equalities/inequalities),
* :class:`IterativeMinimizer` -- the paper's iterative objective scheme:
  starting with the highest degree, minimise the weighted coefficients of
  that degree, *fix* the achieved value as a constraint, and continue with
  the next lower degree.  This yields the tightest bound degree by degree and
  mirrors how modern LP solvers are used incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix, csr_matrix, vstack

from repro.core.constraints import (AffExpr, Constraint, ConstraintSystem,
                                    LPVar, SystemExtension)
from repro.utils.rationals import snap_fraction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.lpsession import LPSession


@dataclass
class LPSolution:
    """A solved assignment of the LP variables."""

    assignment: Dict[LPVar, Fraction]
    raw_values: np.ndarray
    objective_values: List[float] = field(default_factory=list)
    iterations: int = 0

    def value(self, var: LPVar) -> Fraction:
        return self.assignment[var]

    def evaluate(self, expr: AffExpr) -> Fraction:
        return expr.evaluate(self.assignment)


class SolverError(Exception):
    """Raised when the LP solver fails unexpectedly (not mere infeasibility)."""


def _rows_to_csr(rows: Sequence[AffExpr], num_vars: int,
                 sign: float = 1.0) -> Optional[csr_matrix]:
    """Assemble ``sign * rows`` as one CSR matrix via COO triplet arrays.

    Vectorised replacement for entry-by-entry ``lil_matrix`` writes: the
    (row, col, value) triplets are materialised once with ``np.fromiter`` and
    handed to ``coo_matrix`` in a single call.
    """
    if not rows:
        return None
    triplets = [(row_index, var.index, coeff)
                for row_index, expr in enumerate(rows)
                for var, coeff in expr.term_items()]
    count = len(triplets)
    row_idx = np.fromiter((t[0] for t in triplets), dtype=np.intp, count=count)
    col_idx = np.fromiter((t[1] for t in triplets), dtype=np.intp, count=count)
    values = np.fromiter((float(t[2]) for t in triplets), dtype=np.float64,
                         count=count)
    if sign != 1.0:
        values *= sign
    return coo_matrix((values, (row_idx, col_idx)),
                      shape=(len(rows), num_vars)).tocsr()


def _triplets_to_coo(triplets: Sequence[Tuple[int, int, float]],
                     num_rows: int, num_cols: int) -> coo_matrix:
    """A COO matrix from explicit (row, col, value) triplets."""
    count = len(triplets)
    row_idx = np.fromiter((t[0] for t in triplets), dtype=np.intp, count=count)
    col_idx = np.fromiter((t[1] for t in triplets), dtype=np.intp, count=count)
    values = np.fromiter((t[2] for t in triplets), dtype=np.float64, count=count)
    return coo_matrix((values, (row_idx, col_idx)), shape=(num_rows, num_cols))


class AssembledSystem:
    """A :class:`ConstraintSystem` translated once into ``linprog`` arrays.

    The base equality/inequality matrices are immutable per degree; per-stage
    ``extra`` upper-bound rows from the iterative objective scheme are
    assembled separately and stacked with ``scipy.sparse.vstack``, so
    repeated solves over the same system never rebuild the base matrices.

    Degree escalation grows the assembly *in place* through :meth:`extend`:
    existing rows keep their CSR data verbatim (extension deltas only touch
    freshly created columns), the matrices gain new columns for the new
    template variables / multipliers, and the new constraints are stacked
    below as additional rows.
    """

    def __init__(self, system: ConstraintSystem) -> None:
        self.system = system
        self.num_vars = system.num_variables
        self.num_constraints = system.num_constraints
        eq_rows = [c.expr for c in system.constraints if c.kind == "eq"]
        ge_rows = [c.expr for c in system.constraints if c.kind == "ge"]
        #: Constraint index -> (kind, row position within that kind's block).
        self._row_pos: Dict[int, Tuple[str, int]] = {}
        eq_pos = ge_pos = 0
        for index, constraint in enumerate(system.constraints):
            if constraint.kind == "eq":
                self._row_pos[index] = ("eq", eq_pos)
                eq_pos += 1
            else:
                self._row_pos[index] = ("ge", ge_pos)
                ge_pos += 1
        self.a_eq = _rows_to_csr(eq_rows, self.num_vars)
        self.b_eq = (np.fromiter((-float(e.const) for e in eq_rows),
                                 dtype=np.float64, count=len(eq_rows))
                     if eq_rows else None)
        # expr >= 0   <=>   -expr <= 0
        self.a_ub_base = _rows_to_csr(ge_rows, self.num_vars, sign=-1.0)
        self.b_ub_base = (np.fromiter((float(e.const) for e in ge_rows),
                                      dtype=np.float64, count=len(ge_rows))
                          if ge_rows else None)
        self.bounds = [(0.0, None) if var.nonneg else (None, None)
                       for var in system.variables]
        #: Incremental cache of the assembled per-stage ``extra`` rows:
        #: the (expr, bound) prefix already assembled, its CSR block and
        #: right-hand side.  See :meth:`_assemble_extras`.
        self._extras_cache: Optional[
            Tuple[List[Tuple[AffExpr, float]], csr_matrix, np.ndarray]] = None

    # -- incremental growth (degree escalation) ------------------------------

    def extend(self, extension: SystemExtension) -> None:
        """Grow the assembly to match the system after an extension round.

        The journal guarantees extended rows only gained entries in columns
        created during the round, so the previously assembled blocks are
        kept verbatim: columns are widened in place, the (row, new-column)
        delta entries are added sparsely, and the round's new constraints
        are stacked underneath.  The result is bit-identical to a fresh
        ``AssembledSystem(system)`` (see ``tests/test_pipeline_incremental``).
        """
        system = self.system
        if extension.base_variables != self.num_vars \
                or extension.base_constraints != self.num_constraints:
            raise ValueError(
                "extension journal does not start at this assembly's state "
                f"(vars {extension.base_variables} != {self.num_vars} or "
                f"rows {extension.base_constraints} != {self.num_constraints})")
        new_num_vars = system.num_variables
        # 1. widen the existing blocks (pure column growth, data untouched).
        if self.a_eq is not None:
            self.a_eq.resize((self.a_eq.shape[0], new_num_vars))
        if self.a_ub_base is not None:
            self.a_ub_base.resize((self.a_ub_base.shape[0], new_num_vars))
        # 2. sparse-add the delta entries of extended rows (new columns only;
        #    the b vectors are untouched because deltas are constant-free).
        deltas: Dict[str, List[Tuple[int, int, float]]] = {"eq": [], "ge": []}
        for index, delta in extension.extended.items():
            kind, pos = self._row_pos[index]
            sign = 1.0 if kind == "eq" else -1.0
            deltas[kind].extend((pos, var.index, sign * float(coeff))
                                for var, coeff in delta.term_items())
        if deltas["eq"]:
            self.a_eq = (self.a_eq + _triplets_to_coo(
                deltas["eq"], self.a_eq.shape[0], new_num_vars)).tocsr()
        if deltas["ge"]:
            self.a_ub_base = (self.a_ub_base + _triplets_to_coo(
                deltas["ge"], self.a_ub_base.shape[0], new_num_vars)).tocsr()
        # 3. stack the round's new constraints as additional rows.
        new_eq: List[AffExpr] = []
        new_ge: List[AffExpr] = []
        eq_pos = self.a_eq.shape[0] if self.a_eq is not None else 0
        ge_pos = self.a_ub_base.shape[0] if self.a_ub_base is not None else 0
        for index in range(extension.base_constraints, system.num_constraints):
            constraint = system.constraints[index]
            if constraint.kind == "eq":
                self._row_pos[index] = ("eq", eq_pos)
                eq_pos += 1
                new_eq.append(constraint.expr)
            else:
                self._row_pos[index] = ("ge", ge_pos)
                ge_pos += 1
                new_ge.append(constraint.expr)
        if new_eq:
            block = _rows_to_csr(new_eq, new_num_vars)
            values = np.fromiter((-float(e.const) for e in new_eq),
                                 dtype=np.float64, count=len(new_eq))
            self.a_eq = block if self.a_eq is None \
                else vstack([self.a_eq, block], format="csr")
            self.b_eq = values if self.b_eq is None \
                else np.concatenate([self.b_eq, values])
        if new_ge:
            block = _rows_to_csr(new_ge, new_num_vars, sign=-1.0)
            values = np.fromiter((float(e.const) for e in new_ge),
                                 dtype=np.float64, count=len(new_ge))
            self.a_ub_base = block if self.a_ub_base is None \
                else vstack([self.a_ub_base, block], format="csr")
            self.b_ub_base = values if self.b_ub_base is None \
                else np.concatenate([self.b_ub_base, values])
        # 4. bounds for the new variables; bookkeeping.
        self.bounds.extend((0.0, None) if var.nonneg else (None, None)
                           for var in system.variables[self.num_vars:])
        self.num_vars = new_num_vars
        self.num_constraints = system.num_constraints

    def _assemble_extras(self, extra: Sequence[Tuple[AffExpr, float]]
                         ) -> Tuple[csr_matrix, np.ndarray]:
        """Assemble the ``extra`` rows, reusing the cached prefix.

        The iterative objective scheme grows ``extra`` by exactly one row
        per stage, so re-running ``_rows_to_csr`` over the whole list every
        solve re-did all but the newest row's work.  The cache keeps the
        previously assembled block and appends only the unseen suffix;
        any non-prefix call (fresh stage list, changed bound, column count
        grown by an extension) falls back to a full rebuild.
        """
        cached = self._extras_cache
        if cached is not None:
            prefix, block, rhs = cached
            if block.shape[1] == self.num_vars and len(prefix) <= len(extra) \
                    and all(old_expr is new_expr and old_bound == new_bound
                            for (old_expr, old_bound), (new_expr, new_bound)
                            in zip(prefix, extra)):
                if len(prefix) < len(extra):
                    suffix = extra[len(prefix):]
                    block = vstack(
                        [block, _rows_to_csr([expr for expr, _ in suffix],
                                             self.num_vars)],
                        format="csr")
                    rhs = np.concatenate([rhs, np.fromiter(
                        (bound - float(expr.const) for expr, bound in suffix),
                        dtype=np.float64, count=len(suffix))])
                    self._extras_cache = (list(extra), block, rhs)
                return block, rhs
        block = _rows_to_csr([expr for expr, _ in extra], self.num_vars)
        rhs = np.fromiter((bound - float(expr.const)
                           for expr, bound in extra),
                          dtype=np.float64, count=len(extra))
        self._extras_cache = (list(extra), block, rhs)
        return block, rhs

    def matrices(self, extra: Sequence[Tuple[AffExpr, float]] = ()):
        """The ``(A_ub, b_ub, A_eq, b_eq, bounds)`` tuple for ``linprog``."""
        a_ub, b_ub = self.a_ub_base, self.b_ub_base
        if extra:
            a_extra, b_extra = self._assemble_extras(extra)
            if a_ub is None:
                a_ub, b_ub = a_extra, b_extra
            else:
                a_ub = vstack([a_ub, a_extra], format="csr")
                b_ub = np.concatenate([b_ub, b_extra])
        return a_ub, b_ub, self.a_eq, self.b_eq, self.bounds

    def objective_vector(self, objective: Optional[AffExpr]) -> np.ndarray:
        c = np.zeros(self.num_vars)
        if objective is not None:
            for var, coeff in objective.term_items():
                c[var.index] = float(coeff)
        return c

    def solve(self, objective: Optional[AffExpr] = None,
              extra: Sequence[Tuple[AffExpr, float]] = ()) -> Optional[np.ndarray]:
        """Minimise ``objective`` over the system; return values or None."""
        if self.num_vars == 0:
            return np.zeros(0)
        a_ub, b_ub, a_eq, b_eq, bounds = self.matrices(extra)
        result = linprog(self.objective_vector(objective), A_ub=a_ub, b_ub=b_ub,
                         A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs")
        if not result.success:
            return None
        return result.x


def solve_lp(system: ConstraintSystem, objective: Optional[AffExpr] = None,
             extra: Sequence[Tuple[AffExpr, float]] = ()) -> Optional[np.ndarray]:
    """Minimise ``objective`` subject to the system; return values or None."""
    return AssembledSystem(system).solve(objective, extra)


class IterativeMinimizer:
    """Minimise a sequence of objectives, fixing each optimum before the next.

    The base LP matrices are assembled exactly once; each stage only adds
    its incremental objective-fixing row on top of them.  With a persistent
    :class:`~repro.core.lpsession.LPSession` the stage rows go straight
    into the live solver model and every solve starts from the previous
    stage's basis; without one a transient SciPy-backed session reproduces
    the classic cold-solve behaviour byte for byte.
    """

    def __init__(self, system: ConstraintSystem, tolerance: float = 1e-6) -> None:
        self.system = system
        self.tolerance = tolerance

    def solve(self, objectives: Sequence[AffExpr],
              assembled: Optional[AssembledSystem] = None,
              session: Optional["LPSession"] = None) -> Optional[LPSolution]:
        """Solve the staged objectives; ``assembled``/``session`` reuse state.

        The incremental pipeline passes the :class:`AssembledSystem` it has
        been growing across degree escalations (and, with a solver session,
        the live model built over it); the assembly must be up to date with
        the constraint system (same variable/constraint counts).
        """
        if session is not None:
            assembled = session.assembled
        if assembled is None:
            assembled = AssembledSystem(self.system)
        if assembled.num_vars != self.system.num_variables \
                or assembled.num_constraints != self.system.num_constraints:
            raise ValueError("assembled system is stale with respect to the "
                             "constraint system; apply the extension first")
        if session is None:
            from repro.core.lpsession import ScipySession

            session = ScipySession(assembled)
        values: Optional[np.ndarray] = None
        achieved: List[float] = []
        stages = list(objectives) or [AffExpr.zero()]
        try:
            for objective in stages:
                values = session.solve(objective)
                if values is None:
                    return None
                achieved_value = float(
                    assembled.objective_vector(objective) @ values
                    + float(objective.const))
                achieved.append(achieved_value)
                if not objective.is_constant():
                    session.fix_objective(objective,
                                          achieved_value + self.tolerance)
        finally:
            # Stage rows belong to this attempt only.  Clearing them here --
            # before any degree extension touches the session -- keeps them
            # a pure tail block in native models, so warm backends can drop
            # them without renumbering earlier rows.
            session.clear_stage_rows()
        assignment = {var: snap_fraction(float(values[var.index]))
                      for var in self.system.variables}
        # Clamp tiny negatives introduced by floating point on non-negative vars.
        for var in self.system.variables:
            if var.nonneg and assignment[var] < 0:
                assignment[var] = Fraction(0)
        return LPSolution(assignment=assignment, raw_values=values,
                          objective_values=achieved, iterations=len(stages))
