"""LP solving back end (paper Sec. 5, "Solving the constraints").

Absynth feeds its constraints to CoinOr's CLP; here we use SciPy's HiGGS/
HiGHS-based ``linprog``.  The module provides

* :func:`solve_lp` -- solve one LP (minimise a linear objective subject to the
  collected equalities/inequalities),
* :class:`IterativeMinimizer` -- the paper's iterative objective scheme:
  starting with the highest degree, minimise the weighted coefficients of
  that degree, *fix* the achieved value as a constraint, and continue with
  the next lower degree.  This yields the tightest bound degree by degree and
  mirrors how modern LP solvers are used incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import lil_matrix

from repro.core.constraints import AffExpr, Constraint, ConstraintSystem, LPVar
from repro.utils.rationals import snap_fraction


@dataclass
class LPSolution:
    """A solved assignment of the LP variables."""

    assignment: Dict[LPVar, Fraction]
    raw_values: np.ndarray
    objective_values: List[float] = field(default_factory=list)
    iterations: int = 0

    def value(self, var: LPVar) -> Fraction:
        return self.assignment[var]

    def evaluate(self, expr: AffExpr) -> Fraction:
        return expr.evaluate(self.assignment)


class SolverError(Exception):
    """Raised when the LP solver fails unexpectedly (not mere infeasibility)."""


def _build_matrices(system: ConstraintSystem,
                    extra: Sequence[Tuple[AffExpr, float]] = ()):
    """Translate the constraint system into the arrays ``linprog`` expects.

    ``extra`` contains additional upper-bound constraints ``expr <= bound``
    added by the iterative objective scheme.
    """
    num_vars = system.num_variables
    eq_rows = [c for c in system.constraints if c.kind == "eq"]
    ge_rows = [c for c in system.constraints if c.kind == "ge"]

    a_eq = lil_matrix((len(eq_rows), num_vars)) if eq_rows else None
    b_eq = np.zeros(len(eq_rows)) if eq_rows else None
    for row, constraint in enumerate(eq_rows):
        for var, coeff in constraint.expr.terms.items():
            a_eq[row, var.index] = float(coeff)
        b_eq[row] = -float(constraint.expr.const)

    num_ub = len(ge_rows) + len(extra)
    a_ub = lil_matrix((num_ub, num_vars)) if num_ub else None
    b_ub = np.zeros(num_ub) if num_ub else None
    for row, constraint in enumerate(ge_rows):
        # expr >= 0   <=>   -expr <= 0
        for var, coeff in constraint.expr.terms.items():
            a_ub[row, var.index] = -float(coeff)
        b_ub[row] = float(constraint.expr.const)
    for offset, (expr, bound) in enumerate(extra):
        row = len(ge_rows) + offset
        for var, coeff in expr.terms.items():
            a_ub[row, var.index] = float(coeff)
        b_ub[row] = bound - float(expr.const)

    bounds = [(0.0, None) if var.nonneg else (None, None) for var in system.variables]
    return (a_ub.tocsr() if a_ub is not None else None, b_ub,
            a_eq.tocsr() if a_eq is not None else None, b_eq, bounds)


def solve_lp(system: ConstraintSystem, objective: Optional[AffExpr] = None,
             extra: Sequence[Tuple[AffExpr, float]] = ()) -> Optional[np.ndarray]:
    """Minimise ``objective`` subject to the system; return values or None."""
    num_vars = system.num_variables
    if num_vars == 0:
        return np.zeros(0)
    c = np.zeros(num_vars)
    if objective is not None:
        for var, coeff in objective.terms.items():
            c[var.index] = float(coeff)
    a_ub, b_ub, a_eq, b_eq, bounds = _build_matrices(system, extra)
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                     bounds=bounds, method="highs")
    if not result.success:
        return None
    return result.x


class IterativeMinimizer:
    """Minimise a sequence of objectives, fixing each optimum before the next."""

    def __init__(self, system: ConstraintSystem, tolerance: float = 1e-6) -> None:
        self.system = system
        self.tolerance = tolerance

    def solve(self, objectives: Sequence[AffExpr]) -> Optional[LPSolution]:
        extra: List[Tuple[AffExpr, float]] = []
        values: Optional[np.ndarray] = None
        achieved: List[float] = []
        stages = list(objectives) or [AffExpr.zero()]
        for objective in stages:
            values = solve_lp(self.system, objective, extra)
            if values is None:
                return None
            achieved_value = float(sum(float(coeff) * values[var.index]
                                       for var, coeff in objective.terms.items())
                                   + float(objective.const))
            achieved.append(achieved_value)
            if not objective.is_constant():
                extra.append((objective, achieved_value + self.tolerance))
        assignment = {var: snap_fraction(float(values[var.index]))
                      for var in self.system.variables}
        # Clamp tiny negatives introduced by floating point on non-negative vars.
        for var in self.system.variables:
            if var.nonneg and assignment[var] < 0:
                assignment[var] = Fraction(0)
        return LPSolution(assignment=assignment, raw_values=values,
                          objective_values=achieved, iterations=len(stages))
