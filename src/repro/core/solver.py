"""LP solving back end (paper Sec. 5, "Solving the constraints").

Absynth feeds its constraints to CoinOr's CLP; here we use SciPy's HiGGS/
HiGHS-based ``linprog``.  The module provides

* :func:`solve_lp` -- solve one LP (minimise a linear objective subject to the
  collected equalities/inequalities),
* :class:`IterativeMinimizer` -- the paper's iterative objective scheme:
  starting with the highest degree, minimise the weighted coefficients of
  that degree, *fix* the achieved value as a constraint, and continue with
  the next lower degree.  This yields the tightest bound degree by degree and
  mirrors how modern LP solvers are used incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix, csr_matrix, vstack

from repro.core.constraints import AffExpr, Constraint, ConstraintSystem, LPVar
from repro.utils.rationals import snap_fraction


@dataclass
class LPSolution:
    """A solved assignment of the LP variables."""

    assignment: Dict[LPVar, Fraction]
    raw_values: np.ndarray
    objective_values: List[float] = field(default_factory=list)
    iterations: int = 0

    def value(self, var: LPVar) -> Fraction:
        return self.assignment[var]

    def evaluate(self, expr: AffExpr) -> Fraction:
        return expr.evaluate(self.assignment)


class SolverError(Exception):
    """Raised when the LP solver fails unexpectedly (not mere infeasibility)."""


def _rows_to_csr(rows: Sequence[AffExpr], num_vars: int,
                 sign: float = 1.0) -> Optional[csr_matrix]:
    """Assemble ``sign * rows`` as one CSR matrix via COO triplet arrays.

    Vectorised replacement for entry-by-entry ``lil_matrix`` writes: the
    (row, col, value) triplets are materialised once with ``np.fromiter`` and
    handed to ``coo_matrix`` in a single call.
    """
    if not rows:
        return None
    triplets = [(row_index, var.index, coeff)
                for row_index, expr in enumerate(rows)
                for var, coeff in expr.term_items()]
    count = len(triplets)
    row_idx = np.fromiter((t[0] for t in triplets), dtype=np.intp, count=count)
    col_idx = np.fromiter((t[1] for t in triplets), dtype=np.intp, count=count)
    values = np.fromiter((float(t[2]) for t in triplets), dtype=np.float64,
                         count=count)
    if sign != 1.0:
        values *= sign
    return coo_matrix((values, (row_idx, col_idx)),
                      shape=(len(rows), num_vars)).tocsr()


class AssembledSystem:
    """A :class:`ConstraintSystem` translated once into ``linprog`` arrays.

    The base equality/inequality matrices are immutable; per-stage ``extra``
    upper-bound rows from the iterative objective scheme are assembled
    separately and stacked with ``scipy.sparse.vstack``, so repeated solves
    over the same system never rebuild the base matrices.
    """

    def __init__(self, system: ConstraintSystem) -> None:
        self.system = system
        self.num_vars = system.num_variables
        eq_rows = [c.expr for c in system.constraints if c.kind == "eq"]
        ge_rows = [c.expr for c in system.constraints if c.kind == "ge"]
        self.a_eq = _rows_to_csr(eq_rows, self.num_vars)
        self.b_eq = (np.fromiter((-float(e.const) for e in eq_rows),
                                 dtype=np.float64, count=len(eq_rows))
                     if eq_rows else None)
        # expr >= 0   <=>   -expr <= 0
        self.a_ub_base = _rows_to_csr(ge_rows, self.num_vars, sign=-1.0)
        self.b_ub_base = (np.fromiter((float(e.const) for e in ge_rows),
                                      dtype=np.float64, count=len(ge_rows))
                          if ge_rows else None)
        self.bounds = [(0.0, None) if var.nonneg else (None, None)
                       for var in system.variables]

    def matrices(self, extra: Sequence[Tuple[AffExpr, float]] = ()):
        """The ``(A_ub, b_ub, A_eq, b_eq, bounds)`` tuple for ``linprog``."""
        a_ub, b_ub = self.a_ub_base, self.b_ub_base
        if extra:
            a_extra = _rows_to_csr([expr for expr, _ in extra], self.num_vars)
            b_extra = np.fromiter((bound - float(expr.const)
                                   for expr, bound in extra),
                                  dtype=np.float64, count=len(extra))
            if a_ub is None:
                a_ub, b_ub = a_extra, b_extra
            else:
                a_ub = vstack([a_ub, a_extra], format="csr")
                b_ub = np.concatenate([b_ub, b_extra])
        return a_ub, b_ub, self.a_eq, self.b_eq, self.bounds

    def objective_vector(self, objective: Optional[AffExpr]) -> np.ndarray:
        c = np.zeros(self.num_vars)
        if objective is not None:
            for var, coeff in objective.term_items():
                c[var.index] = float(coeff)
        return c

    def solve(self, objective: Optional[AffExpr] = None,
              extra: Sequence[Tuple[AffExpr, float]] = ()) -> Optional[np.ndarray]:
        """Minimise ``objective`` over the system; return values or None."""
        if self.num_vars == 0:
            return np.zeros(0)
        a_ub, b_ub, a_eq, b_eq, bounds = self.matrices(extra)
        result = linprog(self.objective_vector(objective), A_ub=a_ub, b_ub=b_ub,
                         A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs")
        if not result.success:
            return None
        return result.x


def solve_lp(system: ConstraintSystem, objective: Optional[AffExpr] = None,
             extra: Sequence[Tuple[AffExpr, float]] = ()) -> Optional[np.ndarray]:
    """Minimise ``objective`` subject to the system; return values or None."""
    return AssembledSystem(system).solve(objective, extra)


class IterativeMinimizer:
    """Minimise a sequence of objectives, fixing each optimum before the next.

    The base LP matrices are assembled exactly once; each stage only stacks
    its incremental ``extra`` rows on top of them.
    """

    def __init__(self, system: ConstraintSystem, tolerance: float = 1e-6) -> None:
        self.system = system
        self.tolerance = tolerance

    def solve(self, objectives: Sequence[AffExpr]) -> Optional[LPSolution]:
        assembled = AssembledSystem(self.system)
        extra: List[Tuple[AffExpr, float]] = []
        values: Optional[np.ndarray] = None
        achieved: List[float] = []
        stages = list(objectives) or [AffExpr.zero()]
        for objective in stages:
            values = assembled.solve(objective, extra)
            if values is None:
                return None
            achieved_value = float(sum(float(coeff) * values[var.index]
                                       for var, coeff in objective.term_items())
                                   + float(objective.const))
            achieved.append(achieved_value)
            if not objective.is_constant():
                extra.append((objective, achieved_value + self.tolerance))
        assignment = {var: snap_fraction(float(values[var.index]))
                      for var in self.system.variables}
        # Clamp tiny negatives introduced by floating point on non-negative vars.
        for var in self.system.variables:
            if var.nonneg and assignment[var] < 0:
                assignment[var] = Fraction(0)
        return LPSolution(assignment=assignment, raw_values=values,
                          objective_values=achieved, iterations=len(stages))
