"""Procedure specification contexts (paper rules ``Q:Call`` / ``ValidCtx``).

A specification assigns to a procedure a pre-annotation and a post-annotation
that are valid for its body.  The analyzer registers a specification for
every procedure that is analysed modularly (in this implementation: the
recursive procedures; non-recursive calls are inlined), and the ``Q:Call``
rule instantiates it at call sites, adding a *frame* of potential built from
base functions the callee cannot modify -- the paper's constant frame
``x in Q>=0`` is the special case of the constant base function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from repro.core.annotations import PotentialAnnotation


@dataclass
class ProcedureSpec:
    """Pre/post annotation pair for one procedure plus its write effects."""

    name: str
    pre: PotentialAnnotation
    post: PotentialAnnotation
    modified_variables: Set[str] = field(default_factory=set)

    def frameable(self, monomial) -> bool:
        """Whether a base function is unaffected by the callee (can be framed)."""
        return not (set(monomial.variables()) & self.modified_variables)


class SpecContext:
    """The specification context Delta of the derivation system."""

    def __init__(self) -> None:
        self._specs: Dict[str, ProcedureSpec] = {}

    def register(self, spec: ProcedureSpec) -> None:
        self._specs[spec.name] = spec

    def lookup(self, name: str) -> Optional[ProcedureSpec]:
        return self._specs.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def names(self) -> Iterable[str]:
        return self._specs.keys()

    def __len__(self) -> int:
        return len(self._specs)
