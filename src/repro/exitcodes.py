"""Process exit codes shared by every front end.

Lives outside :mod:`repro.cli` so lower layers (``bench``, ``service``)
can map job/result statuses to exit codes without importing the CLI
(which sits at the top of the layer cake, see ARCHITECTURE.md).
"""

from __future__ import annotations

from typing import Iterable

EXIT_OK = 0
EXIT_FAILURE = 1            # generic / unexpected
EXIT_PARSE_ERROR = 2
EXIT_NO_BOUND = 3
EXIT_ANALYSIS_ERROR = 4     # derivation/solver setup failure
EXIT_CERTIFICATE_ERROR = 5
EXIT_UNAVAILABLE = 6        # service could not start (address in use, ...)
EXIT_LINT = 7               # lint diagnostics at the failing severity

#: Job/result statuses mapped to exit codes (worst one wins for batches).
STATUS_EXIT = {
    "ok": EXIT_OK,
    "parse-error": EXIT_PARSE_ERROR,
    # Pre-flight lint gate rejected the program (error-severity
    # diagnostics with AnalyzerConfig.preflight enabled).
    "lint-error": EXIT_LINT,
    "no-bound": EXIT_NO_BOUND,
    "analysis-error": EXIT_ANALYSIS_ERROR,
    # A backend resource failure (constraint-cap blowup) that survived the
    # degradation ladder: operationally the same bucket as a setup failure.
    "resource-limit": EXIT_ANALYSIS_ERROR,
}

#: Severity order used to aggregate a batch into one exit code: parse
#: errors are reported first (the input is broken), then missing bounds,
#: then setup failures, then anything unexpected.
_STATUS_SEVERITY = ("parse-error", "lint-error", "no-bound",
                    "analysis-error", "resource-limit")


def exit_code_for_statuses(statuses: Iterable[str]) -> int:
    """One exit code summarising many job statuses."""
    seen = set(statuses)
    if seen <= {"ok"}:
        return EXIT_OK
    for status in _STATUS_SEVERITY:
        if status in seen:
            return STATUS_EXIT[status]
    return EXIT_FAILURE
