"""The probabilistic programming language of the paper (Fig. 3).

The language is a simple imperative integer language with

* probabilistic branching ``c1 (+)p c2``,
* sampling assignments ``x = e bop R`` with ``R`` drawn from a discrete
  distribution with finite support,
* non-deterministic branching ``if * c1 else c2``,
* ``tick(q)`` commands defining the cost model (``q`` may be a constant or a
  program expression, modelling resource-counter variables),
* (possibly recursive) procedure calls operating on global state.

Programs can be constructed three ways:

* directly from the AST classes in :mod:`repro.lang.ast`,
* with the fluent builder DSL in :mod:`repro.lang.builder`,
* by parsing the C-like concrete syntax with :func:`repro.lang.parser.parse_program`.
"""

from repro.lang.ast import (
    Abort,
    Assert,
    Assign,
    Assume,
    BinOp,
    Call,
    Command,
    Const,
    Expr,
    If,
    NonDetChoice,
    ProbChoice,
    Procedure,
    Program,
    Sample,
    Seq,
    Skip,
    Star,
    Tick,
    Var,
    While,
)
from repro.lang.distributions import (
    Bernoulli,
    Binomial,
    Distribution,
    Finite,
    HyperGeometric,
    Uniform,
)
from repro.lang.builder import ProcedureBuilder, ProgramBuilder
from repro.lang.parser import parse_program, parse_command
from repro.lang.printer import program_to_source, command_to_source

__all__ = [
    "Abort", "Assert", "Assign", "Assume", "BinOp", "Call", "Command", "Const",
    "Expr", "If", "NonDetChoice", "ProbChoice", "Procedure", "Program",
    "Sample", "Seq", "Skip", "Star", "Tick", "Var", "While",
    "Bernoulli", "Binomial", "Distribution", "Finite", "HyperGeometric", "Uniform",
    "ProcedureBuilder", "ProgramBuilder",
    "parse_program", "parse_command", "program_to_source", "command_to_source",
]
