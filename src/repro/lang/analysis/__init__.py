"""Static program diagnostics for the pGCL front end.

Public surface:

* :func:`lint_source` / :func:`lint_program` -- run all passes, get back
  a source-ordered list of :class:`Diagnostic` records.
* :class:`Diagnostic` plus the :data:`CODES` table -- the stable code /
  severity registry (``R101`` ...).
* :func:`vectorizability_verdict` / :func:`analyzability_verdict` -- the
  back-end acceptance pre-checks, also used directly by
  ``repro.semantics.sampler.resolve_engine("auto")``.
"""

from repro.lang.analysis.diagnostics import (
    CODES,
    Diagnostic,
    SEVERITIES,
    format_diagnostics,
    max_severity,
    severity_counts,
)
from repro.lang.analysis.intervals import Interval
from repro.lang.analysis.lint import lint_program, lint_source
from repro.lang.analysis.verdicts import (
    VEC_VALUE_LIMIT,
    Verdict,
    analyzability_verdict,
    vectorizability_verdict,
)

__all__ = [
    "CODES",
    "Diagnostic",
    "Interval",
    "SEVERITIES",
    "VEC_VALUE_LIMIT",
    "Verdict",
    "analyzability_verdict",
    "format_diagnostics",
    "lint_program",
    "lint_source",
    "max_severity",
    "severity_counts",
    "vectorizability_verdict",
]
