"""Structured diagnostics for the static-analysis front end.

Every finding the lint passes produce is a :class:`Diagnostic`: a stable
code (``R101``), a severity, an optional source span, a human message and
an optional hint.  Codes are grouped by pass:

===== ======== ==========================================================
code  severity meaning
===== ======== ==========================================================
R001  error    source could not be parsed
R101  error    read of a variable that no path ever assigns
R102  warning  read of a possibly-uninitialized variable
R103  warning  parameter or local is never used
R104  warning  duplicate declaration shadows an earlier one
R105  error    call to an undefined procedure
R201  warning  degenerate probabilistic choice (probability 0 or 1)
R202  warning  negative tick amount (refunds cost)
R203  warning  deterministic distribution (single-point support)
R301  warning  condition is constant
R302  warning  unreachable code
R303  warning  loop with a constant-true guard never terminates
R401  warning  arithmetic may exceed the vectorised executor's int64 range
R501  info     program is not vectorizable (scalar engine will be used)
R502  info     program is not analyzable by the derivation system
===== ======== ==========================================================

Severities are fixed per code so that ``repro lint`` exit behaviour and
the CI gate are stable: *errors* always fail lint, *warnings* fail only
under ``--strict`` and *info* findings never fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lang.ast import Span

__all__ = ["Diagnostic", "CODES", "SEVERITIES", "severity_counts",
           "max_severity", "format_diagnostics"]

#: Severity names from most to least severe.
SEVERITIES: Tuple[str, ...] = ("error", "warning", "info")

#: Stable code registry: code -> (severity, short title).
CODES: Dict[str, Tuple[str, str]] = {
    "R001": ("error", "parse error"),
    "R101": ("error", "uninitialized read"),
    "R102": ("warning", "possibly uninitialized read"),
    "R103": ("warning", "unused declaration"),
    "R104": ("warning", "shadowed declaration"),
    "R105": ("error", "undefined procedure"),
    "R201": ("warning", "degenerate probability"),
    "R202": ("warning", "negative tick"),
    "R203": ("warning", "deterministic distribution"),
    "R301": ("warning", "constant condition"),
    "R302": ("warning", "unreachable code"),
    "R303": ("warning", "divergent loop"),
    "R401": ("warning", "int64 overflow risk"),
    "R501": ("info", "not vectorizable"),
    "R502": ("info", "not analyzable"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.  Immutable and order-able for stable output."""

    code: str
    message: str
    span: Optional[Span] = None
    hint: str = ""
    procedure: str = ""
    severity: str = field(default="")

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if not self.severity:
            object.__setattr__(self, "severity", CODES[self.code][0])
        elif self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def title(self) -> str:
        return CODES[self.code][1]

    def sort_key(self) -> Tuple[int, int, str, str]:
        line = self.span.line if self.span is not None else 0
        column = self.span.column if self.span is not None else 0
        return (line, column, self.code, self.message)

    def to_dict(self) -> Dict[str, object]:
        """JSON-stable representation (schema covered by tests)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "line": self.span.line if self.span is not None else 0,
            "column": self.span.column if self.span is not None else 0,
            "message": self.message,
            "hint": self.hint,
            "procedure": self.procedure,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Diagnostic":
        line = int(data.get("line", 0) or 0)
        column = int(data.get("column", 0) or 0)
        span = Span(line, column) if (line or column) else None
        return cls(code=str(data["code"]), message=str(data["message"]),
                   span=span, hint=str(data.get("hint", "")),
                   procedure=str(data.get("procedure", "")),
                   severity=str(data.get("severity", "")))

    def format(self) -> str:
        where = f" at {self.span}" if self.span is not None else ""
        hint = f" (hint: {self.hint})" if self.hint else ""
        proc = f" [{self.procedure}]" if self.procedure else ""
        return f"{self.code} {self.severity}{where}: {self.message}{proc}{hint}"

    def __str__(self) -> str:
        return self.format()


def severity_counts(diagnostics: Sequence[Diagnostic]) -> Dict[str, int]:
    counts = {severity: 0 for severity in SEVERITIES}
    for diag in diagnostics:
        counts[diag.severity] += 1
    return counts


def max_severity(diagnostics: Sequence[Diagnostic]) -> Optional[str]:
    """The most severe level present, or None when nothing was reported."""
    present = {diag.severity for diag in diagnostics}
    for severity in SEVERITIES:
        if severity in present:
            return severity
    return None


def format_diagnostics(diagnostics: Sequence[Diagnostic]) -> List[str]:
    return [diag.format() for diag in sorted(diagnostics,
                                             key=Diagnostic.sort_key)]
