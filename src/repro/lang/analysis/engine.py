"""The shared abstract walk behind the lint passes.

One execution-order traversal of the program threads a :class:`FlowState`
-- definite-initialization set, maybe-initialization set, interval
environment and reachability flag -- through every command, and the
passes that need flow facts (def-use, constant-condition reachability,
overflow ranges) report their findings during that single walk.  The
purely syntactic passes (probability well-formedness, declarations,
back-end verdicts) are separate cheap traversals in :mod:`.lint`.

Soundness contracts relied on by the fuzzer differential tests:

* *definite* under-approximates: a variable is in ``definite`` only if
  **every** executable path to this point assigned it (or it belongs to
  the declared initial state).  Hence lint-clean programs (no R101/R102)
  never trip the scalar interpreter's ``strict_init`` mode.
* *maybe* over-approximates: a variable missing from ``maybe`` is
  assigned on **no** path, so R101 ("never assigned") is never wrong.
* intervals over-approximate values, so R401 only fires on ranges that
  genuinely admit magnitudes past 2^61; widening (loops, recursion,
  div/mod) goes straight to top and stays silent.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from repro.lang import ast
from repro.lang.analysis.diagnostics import Diagnostic
from repro.lang.analysis.intervals import Interval
from repro.lang.analysis.verdicts import VEC_VALUE_LIMIT

__all__ = ["FlowState", "FlowWalker"]

#: Procedure-call descent limit; beyond it (or on recursion) the walker
#: falls back to the conservative havoc of the callee's modified set.
_CALL_DEPTH_LIMIT = 8


class FlowState:
    """The dataflow facts threaded through the walk (functional updates)."""

    __slots__ = ("definite", "maybe", "intervals", "reachable")

    def __init__(self, definite: Set[str], maybe: Set[str],
                 intervals: Dict[str, Interval], reachable: bool = True) -> None:
        self.definite = definite
        self.maybe = maybe
        self.intervals = intervals
        self.reachable = reachable

    def copy(self) -> "FlowState":
        return FlowState(set(self.definite), set(self.maybe),
                         dict(self.intervals), self.reachable)

    def assign(self, name: str, interval: Interval) -> None:
        self.definite.add(name)
        self.maybe.add(name)
        self.intervals[name] = interval

    def havoc(self, names: Set[str]) -> None:
        """Variables written by code we do not walk precisely."""
        self.maybe |= names
        for name in names:
            self.intervals[name] = Interval.top()

    def interval_of(self, name: str) -> Interval:
        return self.intervals.get(name, Interval.top())

    @staticmethod
    def join(left: "FlowState", right: "FlowState") -> "FlowState":
        """Control-flow merge.  Unreachable inputs do not pollute facts."""
        if not left.reachable:
            return right
        if not right.reachable:
            return left
        intervals: Dict[str, Interval] = {}
        for name in set(left.intervals) | set(right.intervals):
            intervals[name] = left.interval_of(name).join(right.interval_of(name))
        return FlowState(left.definite & right.definite,
                         left.maybe | right.maybe, intervals, True)


def _assigned_closure(program: ast.Program, command: ast.Command,
                      _seen: Optional[Set[str]] = None) -> Set[str]:
    """Variables ``command`` may write, following calls (over-approx)."""
    seen = _seen if _seen is not None else set()
    names = set(command.assigned_variables())
    for callee in command.called_procedures():
        if callee in seen or callee not in program.procedures:
            continue
        seen.add(callee)
        names |= _assigned_closure(program, program.procedures[callee].body,
                                   seen)
    return names


class FlowWalker:
    """Runs the shared walk over one procedure and collects diagnostics."""

    def __init__(self, program: ast.Program, procedure: ast.Procedure,
                 initial: Set[str]) -> None:
        self.program = program
        self.procedure = procedure
        self.diagnostics: List[Diagnostic] = []
        self._reported: Set[Tuple[str, str, Optional[ast.Span]]] = set()
        self._call_stack: List[str] = [procedure.name]
        self._initial = initial

    # -- reporting ----------------------------------------------------------

    def _report(self, code: str, message: str, node=None, hint: str = "",
                dedupe: str = "") -> None:
        span = getattr(node, "span", None)
        # A ``dedupe`` key (e.g. the variable name for R101/R102) collapses
        # repeated reports to one diagnostic per walker, anchored at the
        # first offending site; without one, each distinct span reports.
        key = (code, dedupe, None) if dedupe else (code, message, span)
        if key in self._reported:
            return
        self._reported.add(key)
        self.diagnostics.append(Diagnostic(
            code=code, message=message, span=span, hint=hint,
            procedure=self.procedure.name))

    # -- driver -------------------------------------------------------------

    def run(self) -> FlowState:
        intervals = {name: Interval.top() for name in self._initial}
        state = FlowState(set(self._initial), set(self._initial), intervals)
        return self.walk(self.procedure.body, state)

    # -- expression evaluation (reads + intervals + folding) ----------------

    def eval_expr(self, expr: ast.Expr, state: FlowState) -> Interval:
        """Interval of ``expr``; reports R101/R102 for every Var read."""
        if isinstance(expr, ast.Const):
            return Interval.const(expr.value)
        if isinstance(expr, ast.Var):
            self._check_read(expr, state)
            return state.interval_of(expr.name)
        if isinstance(expr, ast.Star):
            return Interval.boolean()
        if isinstance(expr, ast.Not):
            inner = self.fold_bool(expr.operand, state)
            self.eval_expr(expr.operand, state)
            if inner is None:
                return Interval.boolean()
            return Interval.const(0 if inner else 1)
        if isinstance(expr, ast.BinOp):
            left = self.eval_expr(expr.left, state)
            right = self.eval_expr(expr.right, state)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op in ("div", "mod"):
                lp, rp = left.point_value(), right.point_value()
                if lp is not None and rp is not None and rp != 0 \
                        and lp.denominator == rp.denominator == 1:
                    op = (lambda a, b: a // b) if expr.op == "div" \
                        else (lambda a, b: a % b)
                    return Interval.const(op(int(lp), int(rp)))
                return Interval.top()
            # Comparisons and boolean connectives yield 0/1; fold when the
            # operand intervals decide the outcome (fold_bool re-derives
            # operand intervals silently, so no duplicate read reports).
            folded = self.fold_bool(expr, state)
            if folded is not None:
                return Interval.const(1 if folded else 0)
            return Interval.boolean()
        return Interval.top()

    def fold_bool(self, expr: ast.Expr,
                  state: FlowState) -> Optional[bool]:
        """Truth value of a guard when the facts decide it, else None."""
        if isinstance(expr, ast.Const):
            return expr.value != 0
        if isinstance(expr, ast.Var):
            point = state.interval_of(expr.name).point_value()
            return None if point is None else point != 0
        if isinstance(expr, ast.Star):
            return None
        if isinstance(expr, ast.Not):
            inner = self.fold_bool(expr.operand, state)
            return None if inner is None else not inner
        if isinstance(expr, ast.BinOp):
            if expr.op in ("and", "or"):
                left = self.fold_bool(expr.left, state)
                right = self.fold_bool(expr.right, state)
                if expr.op == "and":
                    if left is False or right is False:
                        return False
                    if left is True and right is True:
                        return True
                    return None
                if left is True or right is True:
                    return True
                if left is False and right is False:
                    return False
                return None
            if expr.op in ast.COMPARE_OPS:
                left = self._silent_interval(expr.left, state)
                right = self._silent_interval(expr.right, state)
                return _compare_intervals(expr.op, left, right)
            if expr.op in ast.ARITH_OPS:
                point = self._silent_interval(expr, state).point_value()
                return None if point is None else point != 0
        return None

    def _silent_interval(self, expr: ast.Expr, state: FlowState) -> Interval:
        """Interval of ``expr`` without emitting read diagnostics."""
        if isinstance(expr, ast.Const):
            return Interval.const(expr.value)
        if isinstance(expr, ast.Var):
            return state.interval_of(expr.name)
        if isinstance(expr, ast.BinOp):
            left = self._silent_interval(expr.left, state)
            right = self._silent_interval(expr.right, state)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op in ast.COMPARE_OPS + ast.BOOL_OPS:
                return Interval.boolean()
        return Interval.top()

    def _check_read(self, var: ast.Var, state: FlowState) -> None:
        if not state.reachable:
            return
        name = var.name
        if name in state.definite:
            return
        if name in state.maybe:
            self._report(
                "R102",
                f"variable {name!r} may be read before it is assigned",
                var, hint="assign it on every path, or make it a parameter "
                          "of the main procedure", dedupe=name)
        else:
            self._report(
                "R101",
                f"variable {name!r} is read but never assigned",
                var, hint="add it to the main procedure's parameters or "
                          "assign it first", dedupe=name)

    def _check_overflow(self, interval: Interval, node, what: str) -> None:
        bound = interval.magnitude_bound()
        if bound is not None and bound > VEC_VALUE_LIMIT:
            self._report(
                "R401",
                f"{what} may reach magnitude {bound} which exceeds the "
                f"vectorised executor's int64-safe range (2^61)",
                node, hint="the scalar engine handles arbitrary precision; "
                           "expect an automatic fallback")

    # -- command walk --------------------------------------------------------

    def walk(self, command: ast.Command, state: FlowState) -> FlowState:
        handler = getattr(self, f"_walk_{type(command).__name__.lower()}",
                          None)
        if handler is None:
            return state
        return handler(command, state)

    def _walk_skip(self, command: ast.Skip, state: FlowState) -> FlowState:
        return state

    def _walk_abort(self, command: ast.Abort, state: FlowState) -> FlowState:
        state = state.copy()
        state.reachable = False
        return state

    def _walk_assert(self, command: ast.Assert, state: FlowState) -> FlowState:
        return self._walk_check(command, state, "assert")

    def _walk_assume(self, command: ast.Assume, state: FlowState) -> FlowState:
        return self._walk_check(command, state, "assume")

    def _walk_check(self, command, state: FlowState, kind: str) -> FlowState:
        self.eval_expr(command.condition, state)
        folded = self.fold_bool(command.condition, state)
        if folded is None or not state.reachable:
            return state
        self._report(
            "R301",
            f"{kind} condition is constantly "
            f"{'true' if folded else 'false'}: {command.condition}",
            command,
            hint="a constant check either never fires or always stops "
                 "the program")
        if not folded:
            state = state.copy()
            state.reachable = False
        return state

    def _walk_tick(self, command: ast.Tick, state: FlowState) -> FlowState:
        if command.is_constant:
            if state.reachable and command.amount < 0:
                self._report(
                    "R202",
                    f"tick amount {command.amount} is negative and refunds "
                    f"cost", command,
                    hint="negative ticks make 'expected cost' bounds "
                         "one-sided; double-check the cost model")
            return state
        interval = self.eval_expr(command.amount, state)
        if state.reachable and interval.hi is not None \
                and interval.hi < 0:
            self._report(
                "R202",
                f"tick amount {command.amount} is always negative and "
                f"refunds cost", command,
                hint="negative ticks make 'expected cost' bounds one-sided; "
                     "double-check the cost model")
        self._check_overflow(interval, command, "tick amount")
        return state

    def _walk_assign(self, command: ast.Assign, state: FlowState) -> FlowState:
        interval = self.eval_expr(command.expr, state)
        self._check_overflow(interval, command,
                             f"value assigned to {command.target!r}")
        state = state.copy()
        state.assign(command.target, interval)
        return state

    def _walk_sample(self, command: ast.Sample, state: FlowState) -> FlowState:
        base = self.eval_expr(command.expr, state)
        support = command.distribution.support()
        drawn = Interval(support[0][0], support[-1][0])
        if command.op == "+":
            interval = base + drawn
        elif command.op == "-":
            interval = base - drawn
        else:
            interval = base * drawn
        self._check_overflow(interval, command,
                             f"value sampled into {command.target!r}")
        state = state.copy()
        state.assign(command.target, interval)
        return state

    def _walk_seq(self, command: ast.Seq, state: FlowState) -> FlowState:
        reported_dead = False
        for sub in command.commands:
            if not state.reachable and not reported_dead:
                # Flag only the first dead statement; keep walking so nested
                # structural findings still surface (reads in dead code stay
                # silent because the state is unreachable).
                self._maybe_report_unreachable(sub)
                reported_dead = True
            state = self.walk(sub, state)
        return state

    def _maybe_report_unreachable(self, command: ast.Command) -> None:
        if command.span is None:
            return
        self._report("R302", "unreachable code", command,
                     hint="execution cannot reach this statement",
                     dedupe=f"node:{command.node_id}")

    def _walk_if(self, command: ast.If, state: FlowState) -> FlowState:
        self.eval_expr(command.condition, state)
        folded = self.fold_bool(command.condition, state)
        then_state = state.copy()
        else_state = state.copy()
        if folded is not None and state.reachable:
            self._report(
                "R301",
                f"condition is constantly {'true' if folded else 'false'}: "
                f"{command.condition}", command,
                hint="one branch of this 'if' can never run")
            dead = command.else_branch if folded else command.then_branch
            self._maybe_report_unreachable(dead)
            if folded:
                else_state.reachable = False
            else:
                then_state.reachable = False
        then_state = self.walk(command.then_branch, then_state)
        else_state = self.walk(command.else_branch, else_state)
        return FlowState.join(then_state, else_state)

    def _walk_nondetchoice(self, command: ast.NonDetChoice,
                           state: FlowState) -> FlowState:
        left = self.walk(command.left, state.copy())
        right = self.walk(command.right, state.copy())
        return FlowState.join(left, right)

    def _walk_probchoice(self, command: ast.ProbChoice,
                         state: FlowState) -> FlowState:
        probability = command.probability
        left_state = state.copy()
        right_state = state.copy()
        if probability in (Fraction(0), Fraction(1)) and state.reachable:
            taken = "left" if probability == 1 else "right"
            self._report(
                "R201",
                f"probabilistic choice with probability {probability} "
                f"always takes the {taken} branch", command,
                hint="replace the choice with the live branch, or fix the "
                     "probability")
            dead = command.right if probability == 1 else command.left
            self._maybe_report_unreachable(dead)
            if probability == 1:
                right_state.reachable = False
            else:
                left_state.reachable = False
        left_state = self.walk(command.left, left_state)
        right_state = self.walk(command.right, right_state)
        return FlowState.join(left_state, right_state)

    def _walk_while(self, command: ast.While, state: FlowState) -> FlowState:
        self.eval_expr(command.condition, state)
        folded = self.fold_bool(command.condition, state)
        if folded is False:
            if state.reachable:
                self._report(
                    "R301",
                    f"loop condition is constantly false: "
                    f"{command.condition}", command,
                    hint="the loop body can never run")
                self._maybe_report_unreachable(command.body)
            dead = state.copy()
            dead.reachable = False
            self.walk(command.body, dead)
            return state

        # Stabilise: within and after the loop, anything the body (or its
        # callees) may write is maybe-initialized with unknown range.  The
        # guard is re-evaluated every iteration, so divergence claims must
        # fold it on this *stabilised* state -- folding the entry state
        # would call ``x = 0; while (x == 0) { x = coin(); }`` divergent.
        assigned = _assigned_closure(self.program, command.body)
        body_state = state.copy()
        body_state.havoc(assigned)
        stable_folded = self.fold_bool(command.condition, body_state)
        can_stop = _can_stop(command.body)
        guard_vars = command.condition.variables()
        if state.reachable and not can_stop:
            if stable_folded is True:
                self._report(
                    "R303",
                    f"loop condition is constantly true and the body cannot "
                    f"stop: {command.condition}", command,
                    hint="the loop never terminates; everything after it is "
                         "dead code")
            elif stable_folded is None and guard_vars \
                    and not (guard_vars & assigned) \
                    and not _contains_star(command.condition):
                self._report(
                    "R303",
                    f"loop body never modifies the guard variables "
                    f"({', '.join(sorted(guard_vars))}); once entered the "
                    f"loop cannot exit", command,
                    hint="update a guard variable inside the body")
        self.walk(command.body, body_state)
        # A guard that stays true under the stabilised facts means control
        # never leaves through it: the program either loops forever or
        # halts inside the body (assert/abort), so the code after the loop
        # never runs.
        exit_state = FlowState(set(state.definite),
                               set(state.maybe) | assigned,
                               dict(body_state.intervals),
                               state.reachable and stable_folded is not True)
        return exit_state

    def _walk_call(self, command: ast.Call, state: FlowState) -> FlowState:
        name = command.procedure
        callee = self.program.procedures.get(name)
        if callee is None:
            self._report(
                "R105",
                f"call to undefined procedure {name!r}", command,
                hint="define the procedure or fix the name")
            return state
        if name in self._call_stack or len(self._call_stack) > _CALL_DEPTH_LIMIT:
            # Recursion (or very deep nesting): havoc the callee's effects.
            state = state.copy()
            state.havoc(_assigned_closure(self.program, callee.body))
            return state
        self._call_stack.append(name)
        try:
            # Global-state convention: the callee reads and writes the
            # caller's variables directly.
            state = self.walk(callee.body, state)
        finally:
            self._call_stack.pop()
        return state


def _contains_star(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Star):
        return True
    return any(_contains_star(child) for child in expr.children())


def _can_stop(command: ast.Command) -> bool:
    """Whether executing ``command`` can halt the whole program (assert /
    assume / abort) -- the only exits from a constant-true loop."""
    for node in command.iter_nodes():
        if isinstance(node, (ast.Abort, ast.Assert, ast.Assume, ast.Call)):
            return True
    return False


def _compare_intervals(op: str, left: Interval,
                       right: Interval) -> Optional[bool]:
    """Decide ``left op right`` when the intervals do not overlap enough."""
    llo, lhi, rlo, rhi = left.lo, left.hi, right.lo, right.hi
    if op == "<":
        if lhi is not None and rlo is not None and lhi < rlo:
            return True
        if llo is not None and rhi is not None and llo >= rhi:
            return False
        return None
    if op == "<=":
        if lhi is not None and rlo is not None and lhi <= rlo:
            return True
        if llo is not None and rhi is not None and llo > rhi:
            return False
        return None
    if op == ">":
        return _compare_intervals("<", right, left)
    if op == ">=":
        return _compare_intervals("<=", right, left)
    if op == "==":
        lp, rp = left.point_value(), right.point_value()
        if lp is not None and rp is not None:
            return lp == rp
        if _disjoint(left, right):
            return False
        return None
    if op == "!=":
        equal = _compare_intervals("==", left, right)
        return None if equal is None else not equal
    return None


def _disjoint(left: Interval, right: Interval) -> bool:
    if left.hi is not None and right.lo is not None and left.hi < right.lo:
        return True
    if right.hi is not None and left.lo is not None and right.hi < left.lo:
        return True
    return False
