"""A small interval domain over exact rationals for the lint range pass.

Bounds are :class:`~fractions.Fraction` or ``None`` (unbounded).  The
domain only needs to be *sound enough to stay quiet*: the overflow pass
(R401) warns when a bound is finite and provably past the vectorised
executor's 2^61 range, and widening to :meth:`Interval.top` is always a
safe answer, so ``div``/``mod`` and anything imprecise simply go to top.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Optional

from repro.utils.rationals import Number, to_fraction

__all__ = ["Interval"]


class Interval:
    """A closed interval ``[lo, hi]``; ``None`` means unbounded on that side."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Optional[Number], hi: Optional[Number]) -> None:
        self.lo = None if lo is None else to_fraction(lo)
        self.hi = None if hi is None else to_fraction(hi)
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors -------------------------------------------------------

    @classmethod
    def top(cls) -> "Interval":
        return cls(None, None)

    @classmethod
    def const(cls, value: Number) -> "Interval":
        frac = to_fraction(value)
        return cls(frac, frac)

    @classmethod
    def boolean(cls) -> "Interval":
        return cls(0, 1)

    # -- queries ------------------------------------------------------------

    @property
    def is_point(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def point_value(self) -> Optional[Fraction]:
        return self.lo if self.is_point else None

    def magnitude_bound(self) -> Optional[Fraction]:
        """``max |x|`` over the interval, or None when unbounded."""
        if self.lo is None or self.hi is None:
            return None
        return max(abs(self.lo), abs(self.hi))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Interval) and other.lo == self.lo
                and other.hi == self.hi)

    def __hash__(self) -> int:
        return hash(("Interval", self.lo, self.hi))

    def __repr__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"

    # -- lattice ------------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None \
            else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None \
            else max(self.hi, other.hi)
        return Interval(lo, hi)

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(lo, hi)

    def __sub__(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.hi is None else self.lo - other.hi
        hi = None if self.hi is None or other.lo is None else self.hi - other.lo
        return Interval(lo, hi)

    def __neg__(self) -> "Interval":
        lo = None if self.hi is None else -self.hi
        hi = None if self.lo is None else -self.lo
        return Interval(lo, hi)

    def __mul__(self, other: "Interval") -> "Interval":
        # Any unbounded side makes the product unbounded unless the other
        # operand is exactly zero; keeping that single special case exact
        # avoids widening ``0 * x`` paths.
        if self.lo == self.hi == Fraction(0) or other.lo == other.hi == Fraction(0):
            return Interval.const(0)
        if None in (self.lo, self.hi, other.lo, other.hi):
            return Interval.top()
        products = [self.lo * other.lo, self.lo * other.hi,
                    self.hi * other.lo, self.hi * other.hi]
        return Interval(min(products), max(products))
