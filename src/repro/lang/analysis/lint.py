"""Lint drivers: run every pass over a program or source text.

The passes (ISSUE terminology):

1. def-use / initialization  -- R101, R102, R103, R104, R105 (flow walk +
   per-procedure declaration checks)
2. probability / distribution well-formedness -- R201, R202, R203
   (R201/R202 are reachability-aware and live in the flow walk; R203 is
   syntactic)
3. constant-condition reachability -- R301, R302, R303 (flow walk)
4. interval range / overflow -- R401 (flow walk)
5. back-end pre-checks -- R501 (vectorizability), R502 (analyzability)

Out-of-range probabilities and invalid distribution parameters cannot
reach the passes at all: the AST constructors reject them, and the parser
converts those ``ValueError``s into positioned ``ParseError``s -- which
:func:`lint_source` reports as ``R001``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.lang import ast
from repro.lang.analysis.diagnostics import Diagnostic
from repro.lang.analysis.engine import FlowWalker
from repro.lang.analysis.verdicts import (
    DEFAULT_MAX_STEPS,
    analyzability_verdict,
    vectorizability_verdict,
)
from repro.lang.errors import ParseError
from repro.lang.parser import parse_program

__all__ = ["lint_program", "lint_source"]


def _used_closure(program: ast.Program, proc: ast.Procedure) -> Set[str]:
    """Variables read or written by ``proc``, following calls.

    Under the global-state convention a parameter of ``main`` may only be
    touched inside a callee (the ``recursive`` benchmark does exactly
    this), so unused-declaration checks must look through calls.
    """
    used = set(proc.body.used_variables())
    seen = {proc.name}
    frontier = list(proc.body.called_procedures())
    while frontier:
        name = frontier.pop()
        if name in seen or name not in program.procedures:
            continue
        seen.add(name)
        callee = program.procedures[name]
        used |= callee.body.used_variables()
        frontier.extend(callee.body.called_procedures())
    return used


def _declaration_pass(program: ast.Program) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for proc in program.procedures.values():
        declared: Set[str] = set()
        for kind, names in (("parameter", proc.params), ("local", proc.locals)):
            for name in names:
                if name in declared:
                    diagnostics.append(Diagnostic(
                        code="R104",
                        message=f"{kind} {name!r} duplicates an earlier "
                                f"declaration in procedure {proc.name!r}",
                        span=proc.span, procedure=proc.name,
                        hint="remove the duplicate declaration"))
                declared.add(name)
        used = _used_closure(program, proc)
        for kind, names in (("parameter", proc.params), ("local", proc.locals)):
            for name in names:
                if name not in used:
                    diagnostics.append(Diagnostic(
                        code="R103",
                        message=f"{kind} {name!r} is never used in "
                                f"procedure {proc.name!r}",
                        span=proc.span, procedure=proc.name,
                        hint="drop the declaration or use the variable"))
    return diagnostics


def _distribution_pass(program: ast.Program) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for name, proc in program.procedures.items():
        for node in proc.body.iter_nodes():
            if not isinstance(node, ast.Sample):
                continue
            support = node.distribution.support()
            if len(support) == 1:
                value = support[0][0]
                diagnostics.append(Diagnostic(
                    code="R203",
                    message=f"distribution {node.distribution} always "
                            f"yields {value}; the sampling assignment to "
                            f"{node.target!r} is deterministic",
                    span=node.span, procedure=name,
                    hint="use a plain assignment, or widen the "
                         "distribution's parameters"))
    return diagnostics


def _verdict_pass(program: ast.Program, max_steps: int,
                  choice_mode: Optional[str]) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    vec = vectorizability_verdict(program, max_steps=max_steps,
                                  choice_mode=choice_mode)
    if not vec.ok:
        diagnostics.append(Diagnostic(
            code="R501",
            message=f"not vectorizable: {vec.reason}", span=vec.span,
            hint="the sampler's 'auto' engine will use the scalar "
                 "interpreter for this program"))
    ana = analyzability_verdict(program)
    if not ana.ok:
        diagnostics.append(Diagnostic(
            code="R502",
            message=f"not analyzable: {ana.reason}", span=ana.span,
            hint="the derivation system will reject this program before "
                 "attempting a bound"))
    return diagnostics


def _walk_roots(program: ast.Program) -> List[Tuple[ast.Procedure, Set[str]]]:
    """Procedures to walk and the initial-state vars for each walk.

    Execution starts at ``main`` with its parameters as the declared
    initial state; procedures unreachable from ``main``'s call closure are
    walked standalone (leniently seeding main's globals too, since under
    the global-state convention a helper only ever runs after ``main``
    has set things up).
    """
    main = program.main_procedure
    reachable = {program.main}
    frontier = [program.main]
    graph = program.call_graph()
    while frontier:
        for callee in graph.get(frontier.pop(), ()):
            if callee in program.procedures and callee not in reachable:
                reachable.add(callee)
                frontier.append(callee)
    roots = [(main, set(main.params))]
    for name, proc in program.procedures.items():
        if name not in reachable:
            roots.append((proc, set(proc.params) | set(main.params)
                          | set(proc.locals)))
    return roots


def lint_program(program: ast.Program,
                 max_steps: int = DEFAULT_MAX_STEPS,
                 choice_mode: Optional[str] = "random",
                 initial_state: Optional[Iterable[str]] = None
                 ) -> List[Diagnostic]:
    """Run every lint pass; returns diagnostics in source order.

    ``initial_state`` overrides the variables considered initialized on
    entry (default: the main procedure's parameters).  ``max_steps`` and
    ``choice_mode`` parameterize the vectorizability pre-check exactly
    like ``VecInterpreter``'s constructor.
    """
    diagnostics: List[Diagnostic] = []
    diagnostics += _declaration_pass(program)
    diagnostics += _distribution_pass(program)

    for index, (proc, initial) in enumerate(_walk_roots(program)):
        if index == 0 and initial_state is not None:
            initial = set(initial_state)
        walker = FlowWalker(program, proc, initial)
        walker.run()
        diagnostics += walker.diagnostics

    diagnostics += _verdict_pass(program, max_steps, choice_mode)

    unique: List[Diagnostic] = []
    seen = set()
    for diag in diagnostics:
        key = (diag.code, diag.message,
               None if diag.span is None else (diag.span.line,
                                               diag.span.column))
        if key in seen:
            continue
        seen.add(key)
        unique.append(diag)
    unique.sort(key=Diagnostic.sort_key)
    return unique


def lint_source(text: str, main: Optional[str] = None,
                max_steps: int = DEFAULT_MAX_STEPS,
                choice_mode: Optional[str] = "random",
                initial_state: Optional[Iterable[str]] = None
                ) -> List[Diagnostic]:
    """Parse and lint ``text``; parse failures become an ``R001`` record.

    Never raises for any input string -- the crash-freedom contract the
    fuzzer enforces.
    """
    try:
        program = parse_program(text, main=main)
    except ParseError as exc:
        span = ast.Span(exc.line, exc.column) \
            if (exc.line or exc.column) else None
        message = getattr(exc, "bare_message", str(exc))
        return [Diagnostic(code="R001", message=message, span=span,
                           hint="fix the syntax error; no further checks "
                                "were run")]
    return lint_program(program, max_steps=max_steps,
                        choice_mode=choice_mode, initial_state=initial_state)
