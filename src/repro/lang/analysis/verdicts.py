"""Static acceptance pre-checks for the execution and analysis back ends.

:func:`vectorizability_verdict` answers, *without importing or running*
:mod:`repro.semantics.vexec`, the exact question the vectorised executor's
eager compiler answers by raising :class:`VectorisationError`: can this
program be compiled to the batch engine?  The traversal below mirrors
``VecInterpreter``'s compilation order construct for construct, so the
first reason reported here names the same offending construct the runtime
error would.  The agreement is pinned registry-wide plus on fuzzer
programs by ``tests/test_program_fuzz.py`` -- extend both sides together.

:func:`analyzability_verdict` performs the analogous pre-check for the
derivation system's *setup* rejections (undefined callees, non-linear tick
amounts).  ``NoBoundFoundError`` is not predicted -- whether an LP is
feasible is the analysis itself.

This package deliberately does not import :mod:`repro.semantics` (the
front end sits below the semantics layer), so scheduler capability is
passed in as ``choice_mode`` (``"random"``/``"left"``/``"right"`` or
``None`` for a scheduler the vectoriser cannot resolve lane-wise).
"""

from __future__ import annotations

import math
from typing import NamedTuple, Optional

from repro.lang import ast
from repro.lang.ast import span_suffix

__all__ = ["Verdict", "vectorizability_verdict", "analyzability_verdict",
           "VEC_VALUE_LIMIT"]

#: Mirrors ``repro.semantics.vexec._VALUE_LIMIT`` (int64 head-room bound).
#: Duplicated here because the front end must not import the semantics
#: layer; the differential fuzz tests fail loudly if the two drift.
VEC_VALUE_LIMIT = 1 << 61

#: Default step budget, mirroring ``VecInterpreter``'s constructor.
DEFAULT_MAX_STEPS = 1_000_000


class Verdict(NamedTuple):
    """Outcome of a static acceptance pre-check."""

    ok: bool
    reason: str = ""
    span: Optional[ast.Span] = None

    def __bool__(self) -> bool:
        return self.ok


class _Reject(Exception):
    def __init__(self, reason: str, node=None) -> None:
        super().__init__(reason)
        self.reason = reason
        self.span = getattr(node, "span", None)


def _describe(node) -> str:
    return f"{node}{span_suffix(node)}"


# ---------------------------------------------------------------------------
# Vectorizability
# ---------------------------------------------------------------------------


def _check_vec_expr(expr: ast.Expr, choice_mode: Optional[str]) -> None:
    """Mirror of ``VecInterpreter._compile_expr``."""
    if isinstance(expr, ast.Const):
        if expr.value.denominator != 1:
            raise _Reject(
                f"non-integral constant {expr.value} in expression "
                f"{_describe(expr)}", expr)
        if abs(int(expr.value)) > VEC_VALUE_LIMIT:
            raise _Reject(
                f"constant {int(expr.value)} exceeds the executor's integer "
                f"range (2^61){span_suffix(expr)}", expr)
        return
    if isinstance(expr, (ast.Var, ast.Star)):
        # A bare '*' inside an arithmetic expression compiles to a closure
        # that raises at *runtime* on both engines, so it does not block
        # vectorisation (mirrors _compile_expr's Star case).
        return
    if isinstance(expr, ast.Not):
        _check_vec_expr(expr.operand, choice_mode)
        return
    if isinstance(expr, ast.BinOp):
        if expr.op in ("and", "or"):
            # and/or operands go through _compile_bool, where a '*' guard
            # demands a resolvable choice mode.
            _check_vec_bool(expr.left, choice_mode)
            _check_vec_bool(expr.right, choice_mode)
            return
        _check_vec_expr(expr.left, choice_mode)
        _check_vec_expr(expr.right, choice_mode)
        return
    raise _Reject(f"cannot vectorise expression {_describe(expr)}", expr)


def _check_vec_bool(expr: ast.Expr, choice_mode: Optional[str]) -> None:
    """Mirror of ``VecInterpreter._compile_bool``."""
    if isinstance(expr, ast.Star):
        if choice_mode is None:
            raise _Reject(
                f"the scheduler cannot resolve a '*' guard lane-wise"
                f"{span_suffix(expr)}", expr)
        return
    _check_vec_expr(expr, choice_mode)


def _check_vec_command(command: ast.Command, choice_mode: Optional[str],
                       max_steps: int, cost_scale: int) -> None:
    """Mirror of ``VecInterpreter._compile_command`` / ``_compile_tick``."""
    if isinstance(command, (ast.Skip, ast.Abort, ast.Call)):
        return
    if isinstance(command, (ast.Assert, ast.Assume)):
        _check_vec_bool(command.condition, choice_mode)
        return
    if isinstance(command, ast.Tick):
        if command.is_constant:
            numerator = int(command.amount * cost_scale)
            if abs(numerator) * (max_steps + 1) > VEC_VALUE_LIMIT:
                raise _Reject(
                    f"constant tick amount {command.amount} could overflow "
                    f"the vectorised cost accumulator within the step "
                    f"budget{span_suffix(command)}", command)
            return
        _check_vec_expr(command.amount, choice_mode)
        return
    if isinstance(command, (ast.Assign, ast.Sample)):
        _check_vec_expr(command.expr, choice_mode)
        return
    if isinstance(command, ast.Seq):
        for sub in command.commands:
            _check_vec_command(sub, choice_mode, max_steps, cost_scale)
        return
    if isinstance(command, ast.If):
        _check_vec_bool(command.condition, choice_mode)
        _check_vec_command(command.then_branch, choice_mode, max_steps,
                           cost_scale)
        _check_vec_command(command.else_branch, choice_mode, max_steps,
                           cost_scale)
        return
    if isinstance(command, ast.NonDetChoice):
        if choice_mode is None:
            raise _Reject(
                f"the scheduler cannot resolve 'if *' lane-wise"
                f"{span_suffix(command)}", command)
        _check_vec_command(command.left, choice_mode, max_steps, cost_scale)
        _check_vec_command(command.right, choice_mode, max_steps, cost_scale)
        return
    if isinstance(command, ast.ProbChoice):
        _check_vec_command(command.left, choice_mode, max_steps, cost_scale)
        _check_vec_command(command.right, choice_mode, max_steps, cost_scale)
        return
    if isinstance(command, ast.While):
        _check_vec_bool(command.condition, choice_mode)
        _check_vec_command(command.body, choice_mode, max_steps, cost_scale)
        return
    raise _Reject(f"cannot vectorise command {type(command).__name__}"
                  f"{span_suffix(command)}", command)


def _vec_cost_scale(program: ast.Program) -> int:
    """Mirror of ``VecInterpreter._cost_scale`` (LCM of tick denominators)."""
    scale = 1
    for node in program.iter_nodes():
        if isinstance(node, ast.Tick) and node.is_constant:
            scale = math.lcm(scale, node.amount.denominator)
    return scale


def vectorizability_verdict(program: ast.Program,
                            max_steps: int = DEFAULT_MAX_STEPS,
                            choice_mode: Optional[str] = "random") -> Verdict:
    """Would ``VecInterpreter(program, ..., max_steps)`` compile?

    ``choice_mode`` is the resolved scheduler capability (see module
    docstring); the default ``"random"`` matches the default
    ``RandomScheduler``.  Every procedure is checked -- the vectoriser
    compiles all of them eagerly, even uncalled ones.
    """
    scale = _vec_cost_scale(program)
    try:
        for proc in program.procedures.values():
            _check_vec_command(proc.body, choice_mode, max_steps, scale)
    except _Reject as reject:
        return Verdict(False, reject.reason, reject.span)
    return Verdict(True)


# ---------------------------------------------------------------------------
# Analyzability
# ---------------------------------------------------------------------------


def analyzability_verdict(program: ast.Program) -> Verdict:
    """Would the derivation *setup* accept the program?

    Predicts the unconditional ``AnalysisError`` rejections: calls to
    undefined procedures (inlining fails) and non-constant tick amounts
    that are not linear (``Q:Tick`` cannot lower them).  Feasibility of
    the LP itself is not -- and cannot be -- predicted here.
    """
    for name, proc in program.procedures.items():
        for node in proc.body.iter_nodes():
            if isinstance(node, ast.Call) \
                    and node.procedure not in program.procedures:
                return Verdict(
                    False,
                    f"call to undefined procedure {node.procedure!r}"
                    f"{span_suffix(node)}", getattr(node, "span", None))
            if isinstance(node, ast.Tick) and not node.is_constant \
                    and not ast.is_linear_expr(node.amount):
                return Verdict(
                    False,
                    f"tick amount is not linear: {node.amount}"
                    f"{span_suffix(node)}", getattr(node, "span", None))
    return Verdict(True)
