"""Abstract syntax of the probabilistic language (paper Fig. 3).

Expressions
-----------

``e := id | n | e1 bop e2`` with the binary operators of the paper
(arithmetic, comparisons and boolean connectives).  The special expression
:class:`Star` denotes the non-deterministic boolean ``*`` so that guards such
as ``while (y >= 100 && *)`` (program ``prnes``) can be written directly.

Commands
--------

``skip``, ``abort``, ``assert e``, ``assume e``, ``tick(q)``, ``id = e``,
``id = e bop R`` (sampling assignment), ``if e c1 else c2``,
``if * c1 else c2`` (non-deterministic choice), ``c1 (+)p c2`` (probabilistic
branching), ``c1; c2``, ``while e c`` and ``call P``.

Every command node receives a unique ``node_id`` when it is constructed.  The
abstract interpreter stores the logical context valid *before* each node under
that id and the derivation system looks contexts up by id during the backward
constraint-generation pass.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.lang.distributions import Distribution
from repro.lang.errors import LoweringError
from repro.utils.linear import LinExpr
from repro.utils.rationals import Number, pretty_fraction, to_fraction

# ---------------------------------------------------------------------------
# Source spans
# ---------------------------------------------------------------------------


class Span:
    """A source position (1-based line/column) carried by AST nodes.

    The parser attaches a span to every command and expression it builds;
    programmatically constructed trees (:mod:`repro.lang.builder`) carry
    ``span = None``.  Spans never participate in node equality or hashing,
    so printed/reparsed and cloned trees stay interchangeable.
    """

    __slots__ = ("line", "column")

    def __init__(self, line: int, column: int) -> None:
        self.line = int(line)
        self.column = int(column)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Span) and other.line == self.line
                and other.column == self.column)

    def __hash__(self) -> int:
        return hash(("Span", self.line, self.column))

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"

    def __repr__(self) -> str:
        return f"Span({self.line}, {self.column})"


def copy_span(node, template):
    """Copy ``template``'s span (if any) onto ``node`` and return ``node``.

    Used by :mod:`repro.lang.transform` so cloned/rewritten trees keep
    pointing at the original source text.
    """
    span = getattr(template, "span", None)
    if span is not None:
        node.span = span
    return node


def span_suffix(node) -> str:
    """`` at line L, column C`` when ``node`` carries a span, else ``""``.

    Error constructors use this so messages name the offending construct's
    position whenever the tree came from the parser.
    """
    span = getattr(node, "span", None)
    return f" at {span}" if span is not None else ""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

ARITH_OPS = ("+", "-", "*", "div", "mod")
COMPARE_OPS = ("==", "!=", "<", ">", "<=", ">=")
BOOL_OPS = ("and", "or")
ALL_OPS = ARITH_OPS + COMPARE_OPS + BOOL_OPS


class Expr:
    """Base class of expressions."""

    #: Source position (set by the parser; None for built trees).  A class
    #: attribute so subclasses with ``__slots__`` still read it cheaply --
    #: the parser overrides it per instance (instances have a ``__dict__``
    #: because this base class is slot-less).
    span: Optional[Span] = None

    def variables(self) -> Set[str]:
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def __repr__(self) -> str:
        return str(self)


class Var(Expr):
    """A program variable."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = str(name)

    def variables(self) -> Set[str]:
        return {self.name}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))

    def __str__(self) -> str:
        return self.name


class Const(Expr):
    """An integer or rational constant."""

    __slots__ = ("value",)

    def __init__(self, value: Number) -> None:
        self.value = to_fraction(value)

    def variables(self) -> Set[str]:
        return set()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))

    def __str__(self) -> str:
        return pretty_fraction(self.value)


class Star(Expr):
    """The non-deterministic boolean ``*`` (resolved by a scheduler)."""

    def variables(self) -> Set[str]:
        return set()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Star)

    def __hash__(self) -> int:
        return hash("Star")

    def __str__(self) -> str:
        return "*"


class BinOp(Expr):
    """A binary operation ``left op right``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in ALL_OPS:
            raise ValueError(f"unknown operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def variables(self) -> Set[str]:
        return self.left.variables() | self.right.variables()

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, BinOp) and other.op == self.op
                and other.left == self.left and other.right == self.right)

    def __hash__(self) -> int:
        return hash(("BinOp", self.op, self.left, self.right))

    def __str__(self) -> str:
        op = {"and": "&&", "or": "||"}.get(self.op, self.op)
        return f"({self.left} {op} {self.right})"


class Not(Expr):
    """Boolean negation (used for printing / interpretation of guards)."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def variables(self) -> Set[str]:
        return self.operand.variables()

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and other.operand == self.operand

    def __hash__(self) -> int:
        return hash(("Not", self.operand))

    def __str__(self) -> str:
        return f"!({self.operand})"


def expr_to_linexpr(expr: Expr) -> LinExpr:
    """Lower an arithmetic expression to a :class:`LinExpr`.

    Raises :class:`LoweringError` if the expression is not linear (e.g. it
    multiplies two variables, or uses ``div``/``mod``/comparisons).
    """
    if isinstance(expr, Var):
        return LinExpr.var(expr.name)
    if isinstance(expr, Const):
        return LinExpr.const(expr.value)
    if isinstance(expr, BinOp):
        if expr.op == "+":
            return expr_to_linexpr(expr.left) + expr_to_linexpr(expr.right)
        if expr.op == "-":
            return expr_to_linexpr(expr.left) - expr_to_linexpr(expr.right)
        if expr.op == "*":
            left = expr_to_linexpr(expr.left)
            right = expr_to_linexpr(expr.right)
            if left.is_constant():
                return right * left.const_term
            if right.is_constant():
                return left * right.const_term
            raise LoweringError(
                f"non-linear multiplication: {expr}{span_suffix(expr)}")
        raise LoweringError(
            f"operator {expr.op!r} is not linear: {expr}{span_suffix(expr)}")
    raise LoweringError(
        f"cannot lower {expr} to a linear expression{span_suffix(expr)}")


def is_linear_expr(expr: Expr) -> bool:
    """Whether :func:`expr_to_linexpr` would succeed on ``expr``."""
    try:
        expr_to_linexpr(expr)
    except LoweringError:
        return False
    return True


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------

_NODE_COUNTER = itertools.count(1)


class Command:
    """Base class of commands; every node gets a unique ``node_id``."""

    #: Source position (set by the parser; None for built trees).
    span: Optional[Span] = None

    def __init__(self) -> None:
        self.node_id: int = next(_NODE_COUNTER)

    def children(self) -> Tuple["Command", ...]:
        return ()

    def iter_nodes(self) -> Iterator["Command"]:
        """Pre-order traversal of this command and all sub-commands."""
        yield self
        for child in self.children():
            yield from child.iter_nodes()

    def assigned_variables(self) -> Set[str]:
        """Variables written by this command (not following calls)."""
        names: Set[str] = set()
        for node in self.iter_nodes():
            if isinstance(node, (Assign, Sample)):
                names.add(node.target)
        return names

    def used_variables(self) -> Set[str]:
        names: Set[str] = set()
        for node in self.iter_nodes():
            if isinstance(node, (Assert, Assume, If, While)):
                names |= node.condition.variables()
            if isinstance(node, (Assign, Sample)):
                names.add(node.target)
                names |= node.expr.variables()
            if isinstance(node, Tick) and isinstance(node.amount, Expr):
                names |= node.amount.variables()
        return names

    def called_procedures(self) -> Set[str]:
        return {node.procedure for node in self.iter_nodes() if isinstance(node, Call)}

    def __repr__(self) -> str:
        from repro.lang.printer import command_to_source
        return command_to_source(self)


class Skip(Command):
    """``skip`` -- no effect."""


class Abort(Command):
    """``abort`` -- diverges (expected cost 0 under the `ert` semantics)."""


class Assert(Command):
    """``assert e`` -- terminates the program when ``e`` evaluates to 0."""

    def __init__(self, condition: Expr) -> None:
        super().__init__()
        self.condition = condition


class Assume(Command):
    """``assume e`` -- refines the logical context, no runtime effect.

    The paper's examples use ``assume`` for input preconditions such as
    ``assume(smin >= 0)`` in ``trader``.  At runtime it behaves like
    ``assert`` (executions violating the assumption are discarded).
    """

    def __init__(self, condition: Expr) -> None:
        super().__init__()
        self.condition = condition


class Tick(Command):
    """``tick(q)`` -- consume ``q`` resource units.

    ``q`` is a non-negative rational constant in the paper; we additionally
    allow a program expression so that resource-counter updates such as
    ``cost = cost + s`` can be modelled directly as ``tick(s)``.
    """

    def __init__(self, amount: Union[Number, Expr]) -> None:
        super().__init__()
        if isinstance(amount, Expr):
            self.amount: Union[Fraction, Expr] = amount
        else:
            self.amount = to_fraction(amount)

    @property
    def is_constant(self) -> bool:
        return not isinstance(self.amount, Expr)


class Assign(Command):
    """``x = e`` -- deterministic assignment."""

    def __init__(self, target: str, expr: Expr) -> None:
        super().__init__()
        self.target = str(target)
        self.expr = expr


class Sample(Command):
    """``x = e bop R`` -- sampling assignment (paper Fig. 3).

    ``R`` is drawn from ``distribution`` and combined with the evaluated
    ``expr`` using ``op`` (one of ``+``, ``-``, ``*``).  The common pattern
    ``x = unif(0, 10)`` is represented as ``x = 0 + R``.
    """

    def __init__(self, target: str, expr: Expr, op: str,
                 distribution: Distribution) -> None:
        super().__init__()
        if op not in ("+", "-", "*"):
            raise ValueError(f"unsupported sampling operator {op!r}")
        self.target = str(target)
        self.expr = expr
        self.op = op
        self.distribution = distribution

    def outcome_exprs(self) -> List[Tuple[Fraction, Expr]]:
        """The pmf as ``[(probability, equivalent deterministic expression)]``."""
        outcomes: List[Tuple[Fraction, Expr]] = []
        for value, prob in self.distribution.support():
            outcomes.append((prob, BinOp(self.op, self.expr, Const(value))))
        return outcomes


class If(Command):
    """``if e c1 else c2``."""

    def __init__(self, condition: Expr, then_branch: Command,
                 else_branch: Optional[Command] = None) -> None:
        super().__init__()
        self.condition = condition
        self.then_branch = then_branch
        self.else_branch = else_branch if else_branch is not None else Skip()

    def children(self) -> Tuple[Command, ...]:
        return (self.then_branch, self.else_branch)


class NonDetChoice(Command):
    """``if * c1 else c2`` -- demonic non-deterministic choice."""

    def __init__(self, left: Command, right: Command) -> None:
        super().__init__()
        self.left = left
        self.right = right

    def children(self) -> Tuple[Command, ...]:
        return (self.left, self.right)


class ProbChoice(Command):
    """``c1 (+)p c2`` -- run ``left`` with probability ``p`` else ``right``."""

    def __init__(self, probability: Number, left: Command, right: Command) -> None:
        super().__init__()
        self.probability = to_fraction(probability)
        if not 0 <= self.probability <= 1:
            raise ValueError("branching probability must lie in [0, 1]")
        self.left = left
        self.right = right

    def children(self) -> Tuple[Command, ...]:
        return (self.left, self.right)


class Seq(Command):
    """``c1; c2; ...`` -- sequential composition of a list of commands."""

    def __init__(self, commands: Sequence[Command]) -> None:
        super().__init__()
        flattened: List[Command] = []
        for command in commands:
            if isinstance(command, Seq):
                flattened.extend(command.commands)
            else:
                flattened.append(command)
        self.commands: Tuple[Command, ...] = tuple(flattened)

    def children(self) -> Tuple[Command, ...]:
        return self.commands


class While(Command):
    """``while e c``."""

    def __init__(self, condition: Expr, body: Command) -> None:
        super().__init__()
        self.condition = condition
        self.body = body

    def children(self) -> Tuple[Command, ...]:
        return (self.body,)


class Call(Command):
    """``call P`` -- call the procedure named ``P`` (global-state convention)."""

    def __init__(self, procedure: str) -> None:
        super().__init__()
        self.procedure = str(procedure)


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


class Procedure:
    """A named procedure: parameters, local variables and a body.

    Parameters and locals exist for convenience in the front end; the
    analysis uses the paper's global-state convention, and
    :func:`repro.lang.transform.inline_calls` removes parameterised calls of
    non-recursive procedures before analysis.
    """

    #: Source position of the ``proc`` keyword (None for built trees).
    span: Optional[Span] = None

    def __init__(self, name: str, body: Command,
                 params: Sequence[str] = (),
                 locals_: Sequence[str] = ()) -> None:
        self.name = str(name)
        self.body = body
        self.params: Tuple[str, ...] = tuple(str(p) for p in params)
        self.locals: Tuple[str, ...] = tuple(str(v) for v in locals_)

    def __repr__(self) -> str:
        return f"Procedure({self.name}, params={list(self.params)})"


class Program:
    """A complete program ``(c, D)``: a main procedure plus declarations."""

    def __init__(self, procedures: Union[Dict[str, Procedure], Sequence[Procedure]],
                 main: str = "main") -> None:
        if isinstance(procedures, dict):
            table = dict(procedures)
        else:
            table = {proc.name: proc for proc in procedures}
        if main not in table:
            raise ValueError(f"program has no procedure named {main!r}")
        self.procedures: Dict[str, Procedure] = table
        self.main = main

    @property
    def main_procedure(self) -> Procedure:
        return self.procedures[self.main]

    def procedure(self, name: str) -> Procedure:
        return self.procedures[name]

    def variables(self) -> Set[str]:
        names: Set[str] = set()
        for proc in self.procedures.values():
            names |= proc.body.used_variables()
            names |= set(proc.params)
            names |= set(proc.locals)
        return names

    def global_inputs(self) -> Tuple[str, ...]:
        """The main procedure's parameters (the analysis inputs)."""
        return self.main_procedure.params

    def call_graph(self) -> Dict[str, Set[str]]:
        return {name: proc.body.called_procedures()
                for name, proc in self.procedures.items()}

    def recursive_procedures(self) -> Set[str]:
        """Names of procedures on a call-graph cycle (incl. self recursion)."""
        graph = self.call_graph()
        recursive: Set[str] = set()
        for start in graph:
            stack = list(graph.get(start, ()))
            seen: Set[str] = set()
            while stack:
                current = stack.pop()
                if current == start:
                    recursive.add(start)
                    break
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(graph.get(current, ()))
        return recursive

    def iter_nodes(self) -> Iterator[Command]:
        for proc in self.procedures.values():
            yield from proc.body.iter_nodes()

    def __repr__(self) -> str:
        return f"Program(main={self.main!r}, procedures={sorted(self.procedures)})"


# ---------------------------------------------------------------------------
# Convenience expression constructors
# ---------------------------------------------------------------------------

def add(left: Expr, right: Expr) -> BinOp:
    return BinOp("+", left, right)


def sub(left: Expr, right: Expr) -> BinOp:
    return BinOp("-", left, right)


def mul(left: Expr, right: Expr) -> BinOp:
    return BinOp("*", left, right)


def lt(left: Expr, right: Expr) -> BinOp:
    return BinOp("<", left, right)


def le(left: Expr, right: Expr) -> BinOp:
    return BinOp("<=", left, right)


def gt(left: Expr, right: Expr) -> BinOp:
    return BinOp(">", left, right)


def ge(left: Expr, right: Expr) -> BinOp:
    return BinOp(">=", left, right)


def eq(left: Expr, right: Expr) -> BinOp:
    return BinOp("==", left, right)


def neq(left: Expr, right: Expr) -> BinOp:
    return BinOp("!=", left, right)


def conj(left: Expr, right: Expr) -> BinOp:
    return BinOp("and", left, right)


def disj(left: Expr, right: Expr) -> BinOp:
    return BinOp("or", left, right)
