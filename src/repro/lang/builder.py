"""A small DSL for building programs directly in Python.

Two styles are offered and freely mixed:

* **combinators** -- module-level functions (:func:`seq`, :func:`while_`,
  :func:`prob`, :func:`assign`, ...) that accept expressions either as AST
  nodes or as source strings (parsed with the front-end parser)::

      from repro.lang import builder as B
      body = B.seq(
          B.while_("x > 0",
              B.seq(B.prob("3/4", B.assign("x", "x - 1"), B.assign("x", "x + 1")),
                    B.tick(1))))
      program = B.program(B.proc("main", ["x"], body))

* **builder objects** -- :class:`ProgramBuilder` / :class:`ProcedureBuilder`
  accumulate statements imperatively, which is convenient in notebooks.

The benchmark suite (:mod:`repro.bench.programs`) is written with the
combinators.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Union

from repro.lang import ast
from repro.lang.distributions import Distribution
from repro.lang.parser import parse_expr
from repro.utils.rationals import Number, to_fraction

ExprLike = Union[ast.Expr, str, int, Fraction]
CommandLike = Union[ast.Command, Sequence[ast.Command]]


def expr(value: ExprLike) -> ast.Expr:
    """Coerce a value into an expression AST node."""
    if isinstance(value, ast.Expr):
        return value
    if isinstance(value, str):
        return parse_expr(value)
    return ast.Const(value)


def _command(value: CommandLike) -> ast.Command:
    if isinstance(value, ast.Command):
        return value
    return seq(*value)


# -- commands -----------------------------------------------------------------

def skip() -> ast.Skip:
    return ast.Skip()


def abort() -> ast.Abort:
    return ast.Abort()


def assert_(condition: ExprLike) -> ast.Assert:
    return ast.Assert(expr(condition))


def assume(condition: ExprLike) -> ast.Assume:
    return ast.Assume(expr(condition))


def tick(amount: Union[Number, ExprLike] = 1) -> ast.Tick:
    if isinstance(amount, (ast.Expr, str)):
        node = expr(amount)
        if isinstance(node, ast.Const):
            return ast.Tick(node.value)
        return ast.Tick(node)
    return ast.Tick(amount)


def assign(target: str, value: ExprLike) -> ast.Assign:
    return ast.Assign(target, expr(value))


def sample(target: str, distribution: Distribution,
           base: ExprLike = 0, op: str = "+") -> ast.Sample:
    """``target = base op R`` with ``R ~ distribution``.

    ``sample("x", Uniform(0, 10))`` is ``x = unif(0,10)`` and
    ``sample("x", Uniform(0, 10), base="x")`` is ``x = x + unif(0,10)``.
    """
    return ast.Sample(target, expr(base), op, distribution)


def incr_sample(target: str, distribution: Distribution) -> ast.Sample:
    """``target = target + R`` -- the most common sampling idiom."""
    return sample(target, distribution, base=target, op="+")


def decr_sample(target: str, distribution: Distribution) -> ast.Sample:
    """``target = target - R``."""
    return sample(target, distribution, base=target, op="-")


def if_(condition: ExprLike, then_branch: CommandLike,
        else_branch: Optional[CommandLike] = None) -> ast.If:
    else_cmd = _command(else_branch) if else_branch is not None else None
    return ast.If(expr(condition), _command(then_branch), else_cmd)


def nondet(left: CommandLike, right: CommandLike) -> ast.NonDetChoice:
    return ast.NonDetChoice(_command(left), _command(right))


def prob(probability: Union[Number, str], left: CommandLike,
         right: Optional[CommandLike] = None) -> ast.ProbChoice:
    """``left (+)p right``; ``right`` defaults to ``skip``."""
    if isinstance(probability, str):
        probability = Fraction(probability)
    right_cmd = _command(right) if right is not None else ast.Skip()
    return ast.ProbChoice(to_fraction(probability), _command(left), right_cmd)


def seq(*commands: CommandLike) -> ast.Command:
    flat: List[ast.Command] = []
    for command in commands:
        flat.append(_command(command))
    if not flat:
        return ast.Skip()
    if len(flat) == 1:
        return flat[0]
    return ast.Seq(flat)


def while_(condition: ExprLike, *body: CommandLike) -> ast.While:
    return ast.While(expr(condition), seq(*body))


def call(name: str) -> ast.Call:
    return ast.Call(name)


def star() -> ast.Star:
    return ast.Star()


# -- procedures and programs ------------------------------------------------------

def proc(name: str, params: Sequence[str], *body: CommandLike,
         locals_: Sequence[str] = ()) -> ast.Procedure:
    return ast.Procedure(name, seq(*body), params=params, locals_=locals_)


def program(*procedures: ast.Procedure, main: Optional[str] = None) -> ast.Program:
    main_name = main if main is not None else procedures[0].name
    return ast.Program(list(procedures), main=main_name)


# -- builder classes ----------------------------------------------------------------


class ProcedureBuilder:
    """Imperative builder collecting statements for one procedure."""

    def __init__(self, name: str, params: Sequence[str] = (),
                 locals_: Sequence[str] = ()) -> None:
        self.name = name
        self.params = list(params)
        self.locals = list(locals_)
        self._commands: List[ast.Command] = []

    # Each statement helper appends and returns ``self`` for chaining.

    def add(self, command: CommandLike) -> "ProcedureBuilder":
        self._commands.append(_command(command))
        return self

    def skip(self) -> "ProcedureBuilder":
        return self.add(skip())

    def assume(self, condition: ExprLike) -> "ProcedureBuilder":
        return self.add(assume(condition))

    def assert_(self, condition: ExprLike) -> "ProcedureBuilder":
        return self.add(assert_(condition))

    def assign(self, target: str, value: ExprLike) -> "ProcedureBuilder":
        return self.add(assign(target, value))

    def sample(self, target: str, distribution: Distribution,
               base: ExprLike = 0, op: str = "+") -> "ProcedureBuilder":
        return self.add(sample(target, distribution, base, op))

    def tick(self, amount: Union[Number, ExprLike] = 1) -> "ProcedureBuilder":
        return self.add(tick(amount))

    def call(self, name: str) -> "ProcedureBuilder":
        return self.add(call(name))

    def while_(self, condition: ExprLike, *body: CommandLike) -> "ProcedureBuilder":
        return self.add(while_(condition, *body))

    def if_(self, condition: ExprLike, then_branch: CommandLike,
            else_branch: Optional[CommandLike] = None) -> "ProcedureBuilder":
        return self.add(if_(condition, then_branch, else_branch))

    def prob(self, probability: Union[Number, str], left: CommandLike,
             right: Optional[CommandLike] = None) -> "ProcedureBuilder":
        return self.add(prob(probability, left, right))

    def build(self) -> ast.Procedure:
        return ast.Procedure(self.name, seq(*self._commands),
                             params=self.params, locals_=self.locals)


class ProgramBuilder:
    """Collects procedures into a :class:`~repro.lang.ast.Program`."""

    def __init__(self, main: str = "main") -> None:
        self.main = main
        self._procedures: List[ast.Procedure] = []

    def procedure(self, name: str, params: Sequence[str] = (),
                  locals_: Sequence[str] = ()) -> ProcedureBuilder:
        builder = ProcedureBuilder(name, params, locals_)
        self._pending = builder
        return builder

    def add(self, procedure: Union[ast.Procedure, ProcedureBuilder]) -> "ProgramBuilder":
        if isinstance(procedure, ProcedureBuilder):
            procedure = procedure.build()
        self._procedures.append(procedure)
        return self

    def build(self) -> ast.Program:
        if not self._procedures:
            raise ValueError("a program needs at least one procedure")
        main = self.main if any(p.name == self.main for p in self._procedures) \
            else self._procedures[0].name
        return ast.Program(self._procedures, main=main)
