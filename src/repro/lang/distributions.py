"""Discrete probability distributions with finite support.

The paper's sampling assignments ``x = e bop R`` draw ``R`` from a discrete
distribution with a finite domain (Sec. 3.5).  Absynth ships Bernoulli,
binomial, hyper-geometric and uniform distributions; this module provides the
same set plus arbitrary finite distributions.

Every distribution exposes

* :meth:`Distribution.support` -- the exact probability mass function as a
  list of ``(value, Fraction probability)`` pairs (used by ``Q:Sample`` and by
  the ``ert`` transformer),
* :meth:`Distribution.mean` / :meth:`Distribution.variance` -- exact moments,
* :meth:`Distribution.sample` -- draw a value using a ``numpy`` generator
  (used by the simulation substrate).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.rationals import Number, to_fraction

SupportItem = Tuple[int, Fraction]


class Distribution:
    """Base class of all finite discrete distributions."""

    name = "distribution"

    def support(self) -> List[SupportItem]:
        """Return the pmf as ``[(value, probability), ...]`` with exact probabilities."""
        raise NotImplementedError

    # -- derived quantities -------------------------------------------------

    def mean(self) -> Fraction:
        return sum((prob * value for value, prob in self.support()), Fraction(0))

    def variance(self) -> Fraction:
        mean = self.mean()
        return sum((prob * (value - mean) ** 2 for value, prob in self.support()),
                   Fraction(0))

    def min_value(self) -> int:
        return min(value for value, _ in self.support())

    def max_value(self) -> int:
        return max(value for value, _ in self.support())

    def probabilities_sum(self) -> Fraction:
        return sum((prob for _, prob in self.support()), Fraction(0))

    def sample(self, rng) -> int:
        """Draw one value using ``rng`` (a ``numpy.random.Generator``)."""
        items = self.support()
        u = rng.random()
        cumulative = 0.0
        for value, prob in items:
            cumulative += float(prob)
            if u < cumulative:
                return value
        return items[-1][0]

    def __repr__(self) -> str:
        return str(self)


class Finite(Distribution):
    """An explicitly given finite distribution ``{value: probability}``."""

    name = "finite"

    def __init__(self, pmf: Dict[int, Number]) -> None:
        if not pmf:
            raise ValueError("a finite distribution needs at least one outcome")
        items: List[SupportItem] = []
        for value, prob in sorted(pmf.items()):
            frac = to_fraction(prob)
            if frac < 0:
                raise ValueError(f"negative probability for outcome {value}")
            if frac > 0:
                items.append((int(value), frac))
        total = sum((prob for _, prob in items), Fraction(0))
        if total != 1:
            raise ValueError(f"probabilities must sum to 1, got {total}")
        self._support = items

    def support(self) -> List[SupportItem]:
        return list(self._support)

    def __str__(self) -> str:
        inner = ", ".join(f"{value}: {prob}" for value, prob in self._support)
        return f"finite({{{inner}}})"


class Bernoulli(Distribution):
    """``1`` with probability ``p`` and ``0`` with probability ``1 - p``."""

    name = "ber"

    def __init__(self, p: Number) -> None:
        self.p = to_fraction(p)
        if not 0 <= self.p <= 1:
            raise ValueError("Bernoulli parameter must lie in [0, 1]")

    def support(self) -> List[SupportItem]:
        items: List[SupportItem] = []
        if self.p != 1:
            items.append((0, 1 - self.p))
        if self.p != 0:
            items.append((1, self.p))
        return items

    def __str__(self) -> str:
        return f"ber({self.p})"


class Uniform(Distribution):
    """The uniform distribution over the integers ``a, a+1, ..., b`` (inclusive)."""

    name = "unif"

    def __init__(self, lower: int, upper: int) -> None:
        if lower > upper:
            raise ValueError("uniform distribution needs lower <= upper")
        self.lower = int(lower)
        self.upper = int(upper)

    def support(self) -> List[SupportItem]:
        count = self.upper - self.lower + 1
        prob = Fraction(1, count)
        return [(value, prob) for value in range(self.lower, self.upper + 1)]

    def sample(self, rng) -> int:
        return int(rng.integers(self.lower, self.upper + 1))

    def __str__(self) -> str:
        return f"unif({self.lower}, {self.upper})"


class Binomial(Distribution):
    """The number of successes in ``n`` independent trials of probability ``p``."""

    name = "bin"

    def __init__(self, n: int, p: Number) -> None:
        if n < 0:
            raise ValueError("binomial distribution needs n >= 0")
        self.n = int(n)
        self.p = to_fraction(p)
        if not 0 <= self.p <= 1:
            raise ValueError("binomial parameter p must lie in [0, 1]")

    def support(self) -> List[SupportItem]:
        items: List[SupportItem] = []
        for k in range(self.n + 1):
            prob = (Fraction(math.comb(self.n, k))
                    * self.p ** k * (1 - self.p) ** (self.n - k))
            if prob > 0:
                items.append((k, prob))
        return items

    def sample(self, rng) -> int:
        return int(rng.binomial(self.n, float(self.p)))

    def __str__(self) -> str:
        return f"bin({self.n}, {self.p})"


class HyperGeometric(Distribution):
    """Successes when drawing ``draws`` items without replacement.

    Population of size ``population`` containing ``successes`` marked items.
    """

    name = "hyper"

    def __init__(self, population: int, successes: int, draws: int) -> None:
        if not 0 <= successes <= population:
            raise ValueError("need 0 <= successes <= population")
        if not 0 <= draws <= population:
            raise ValueError("need 0 <= draws <= population")
        self.population = int(population)
        self.successes = int(successes)
        self.draws = int(draws)

    def support(self) -> List[SupportItem]:
        items: List[SupportItem] = []
        denominator = math.comb(self.population, self.draws)
        low = max(0, self.draws - (self.population - self.successes))
        high = min(self.draws, self.successes)
        for k in range(low, high + 1):
            numerator = (math.comb(self.successes, k)
                         * math.comb(self.population - self.successes, self.draws - k))
            prob = Fraction(numerator, denominator)
            if prob > 0:
                items.append((k, prob))
        return items

    def sample(self, rng) -> int:
        return int(rng.hypergeometric(self.successes,
                                      self.population - self.successes,
                                      self.draws))

    def __str__(self) -> str:
        return f"hyper({self.population}, {self.successes}, {self.draws})"


#: Registry used by the parser: distribution keyword -> constructor.
DISTRIBUTION_CONSTRUCTORS = {
    "unif": Uniform,
    "uniform": Uniform,
    "ber": Bernoulli,
    "bernoulli": Bernoulli,
    "bin": Binomial,
    "binomial": Binomial,
    "hyper": HyperGeometric,
    "hypergeometric": HyperGeometric,
}


def make_distribution(name: str, args: Sequence[Number]) -> Distribution:
    """Construct a distribution from a keyword and argument list (parser hook)."""
    try:
        constructor = DISTRIBUTION_CONSTRUCTORS[name]
    except KeyError as exc:
        raise ValueError(f"unknown distribution {name!r}") from exc
    return constructor(*args)
