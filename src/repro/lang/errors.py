"""Exception hierarchy for the language front end and the analysis."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ParseError(ReproError):
    """Raised when the concrete syntax cannot be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class LoweringError(ReproError):
    """Raised when an expression cannot be lowered to linear arithmetic."""


class EvaluationError(ReproError):
    """Raised by the interpreter on runtime errors (e.g. failed assertions)."""


class AnalysisError(ReproError):
    """Raised when the bound analysis cannot be set up for a program."""


class NoBoundFoundError(AnalysisError):
    """Raised (or reported) when the LP has no feasible solution.

    This mirrors Absynth's behaviour: if no derivation exists within the
    chosen base functions and degree, the tool reports that no bound was
    found rather than returning an unsound result.
    """


class CertificateError(ReproError):
    """Raised when a derivation certificate fails to validate."""
