"""Exception hierarchy for the language front end and the analysis."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ParseError(ReproError):
    """Raised when the concrete syntax cannot be parsed.

    ``span`` may be passed instead of ``line``/``column`` by callers that
    hold an AST node's :class:`~repro.lang.ast.Span` (builder/transform
    paths).  Any non-zero position is formatted into the message -- a
    column-only position (``line=0, column=7``) used to be dropped
    silently, hiding the offset the caller did supply.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0,
                 span=None) -> None:
        if span is not None and not (line or column):
            line, column = span.line, span.column
        self.line = line
        self.column = column
        #: The message without the position prefix (lint reports the
        #: position structurally and must not repeat it in the text).
        self.bare_message = message
        if line or column:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class LoweringError(ReproError):
    """Raised when an expression cannot be lowered to linear arithmetic."""


class EvaluationError(ReproError):
    """Raised by the interpreter on runtime errors (e.g. failed assertions)."""


class UninitializedReadError(EvaluationError):
    """Raised by the strict-initialization interpreter mode on a read of a
    variable that was never assigned (normal runs zero-fill instead).

    The lint pass's definite-initialization analysis under-approximates:
    a lint run with no ``R101``/``R102`` diagnostics guarantees strict
    execution never raises this -- a contract the fuzzer enforces.
    """

    def __init__(self, name: str) -> None:
        super().__init__(f"read of uninitialized variable {name!r}")
        self.name = name


class AnalysisError(ReproError):
    """Raised when the bound analysis cannot be set up for a program."""


class NoBoundFoundError(AnalysisError):
    """Raised (or reported) when the LP has no feasible solution.

    This mirrors Absynth's behaviour: if no derivation exists within the
    chosen base functions and degree, the tool reports that no bound was
    found rather than returning an unsound result.
    """


class CertificateError(ReproError):
    """Raised when a derivation certificate fails to validate."""
