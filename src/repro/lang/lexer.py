"""Tokenizer for the concrete syntax of the probabilistic language.

The concrete syntax is a small C-like language close to the listings of the
paper (Figures 1, 2, 4 and 5)::

    proc main(x, n) {
        while (x < n) {
            prob(3/4) { x = x + 1; } else { x = x - 1; }
            tick(1);
        }
    }

See :mod:`repro.lang.parser` for the grammar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.lang.errors import ParseError

KEYWORDS = {
    "proc", "def", "local", "while", "if", "else", "prob", "skip", "abort",
    "assert", "assume", "tick", "call", "true", "false",
}

SYMBOLS = [
    "&&", "||", "==", "!=", "<=", ">=", "<", ">", "=", "+", "-", "*", "%",
    "(", ")", "{", "}", ";", ",", "/", "!",
]


@dataclass
class Token:
    """A single lexical token."""

    kind: str          # 'ident', 'number', 'keyword', 'symbol', 'eof'
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """A hand-written scanner producing :class:`Token` objects."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.position:self.position + count]
        for char in text:
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.position += count
        return text

    def _skip_trivia(self) -> None:
        while self.position < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "#" or (char == "/" and self._peek(1) == "/"):
                while self.position < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.position < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            if self.position >= len(self.source):
                yield Token("eof", "", self.line, self.column)
                return
            line, column = self.line, self.column
            char = self._peek()
            if char.isdigit():
                yield Token("number", self._scan_number(), line, column)
            elif char.isalpha() or char == "_":
                word = self._scan_word()
                kind = "keyword" if word in KEYWORDS else "ident"
                yield Token(kind, word, line, column)
            else:
                symbol = self._scan_symbol()
                yield Token("symbol", symbol, line, column)

    def _scan_number(self) -> str:
        start = self.position
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            self._advance()
            while self._peek().isdigit():
                self._advance()
        return self.source[start:self.position]

    def _scan_word(self) -> str:
        start = self.position
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        return self.source[start:self.position]

    def _scan_symbol(self) -> str:
        for symbol in SYMBOLS:
            if self.source.startswith(symbol, self.position):
                self._advance(len(symbol))
                return symbol
        raise self._error(f"unexpected character {self._peek()!r}")


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` into a list ending with an ``eof`` token."""
    return list(Lexer(source).tokens())
