"""Recursive-descent parser for the concrete syntax.

Grammar (informal)::

    program   ::= proc+
    proc      ::= ("proc" | "def") IDENT "(" params? ")" block
    params    ::= IDENT ("," IDENT)*
    block     ::= "{" stmt* "}"
    stmt      ::= "skip" ";" | "abort" ";"
                | "assert" "(" expr ")" ";" | "assume" "(" expr ")" ";"
                | "tick" "(" expr ")" ";"
                | "call" IDENT ";"
                | IDENT "=" rhs ";"
                | "if" "(" cond ")" block ("else" block)?
                | "while" "(" cond ")" block
                | "prob" "(" number ")" block "else" block
                | block
    rhs       ::= expr                      (may contain one distribution call)
    dist      ::= IDENT "(" args ")"        where IDENT is a distribution name
    cond      ::= disjunction of conjunctions of comparisons, "*" allowed
    expr      ::= additive arithmetic over variables and constants

Probabilities accept fractions (``3/4``), decimals (``0.75``) and integers.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.lang import ast
from repro.lang.distributions import DISTRIBUTION_CONSTRUCTORS, Distribution, make_distribution
from repro.lang.errors import ParseError
from repro.lang.lexer import Token, tokenize


class _DistCall(ast.Expr):
    """Internal parse-tree node for a distribution call appearing in a RHS."""

    def __init__(self, distribution: Distribution) -> None:
        self.distribution = distribution

    def variables(self):
        return set()

    def __str__(self) -> str:
        return str(self.distribution)


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: Sequence[Token]) -> None:
        self.tokens = list(tokens)
        self.index = 0

    # -- token helpers -----------------------------------------------------

    def _current(self) -> Token:
        return self.tokens[self.index]

    def _error(self, message: str) -> ParseError:
        token = self._current()
        return ParseError(message + f" (found {token.value!r})", token.line, token.column)

    def _check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self._current()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, value):
            token = self._current()
            self.index += 1
            return token
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._accept(kind, value)
        if token is None:
            expected = value if value is not None else kind
            raise self._error(f"expected {expected!r}")
        return token

    @staticmethod
    def _at(node, token: Token):
        """Attach ``token``'s position to ``node`` (unless it has one)."""
        if node.span is None:
            node.span = ast.Span(token.line, token.column)
        return node

    def at_end(self) -> bool:
        return self._check("eof")

    # -- program / procedures ----------------------------------------------

    def parse_program(self, main: Optional[str] = None) -> ast.Program:
        procedures: List[ast.Procedure] = []
        while not self.at_end():
            procedures.append(self.parse_procedure())
        if not procedures:
            raise self._error("empty program")
        main_name = main if main is not None else procedures[0].name
        return ast.Program(procedures, main=main_name)

    def parse_procedure(self) -> ast.Procedure:
        proc_token = self._current()
        if not (self._accept("keyword", "proc") or self._accept("keyword", "def")):
            raise self._error("expected 'proc'")
        name = self._expect("ident").value
        self._expect("symbol", "(")
        params: List[str] = []
        if not self._check("symbol", ")"):
            params.append(self._expect("ident").value)
            while self._accept("symbol", ","):
                params.append(self._expect("ident").value)
        self._expect("symbol", ")")
        locals_: List[str] = []
        body = self.parse_block(locals_)
        return self._at(ast.Procedure(name, body, params=params, locals_=locals_),
                        proc_token)

    # -- statements ----------------------------------------------------------

    def parse_block(self, locals_sink: Optional[List[str]] = None) -> ast.Command:
        open_token = self._expect("symbol", "{")
        commands: List[ast.Command] = []
        while not self._check("symbol", "}"):
            if self._accept("keyword", "local"):
                names = [self._expect("ident").value]
                while self._accept("symbol", ","):
                    names.append(self._expect("ident").value)
                self._expect("symbol", ";")
                if locals_sink is not None:
                    locals_sink.extend(names)
                continue
            commands.append(self.parse_statement())
        self._expect("symbol", "}")
        if not commands:
            return self._at(ast.Skip(), open_token)
        if len(commands) == 1:
            return commands[0]
        return self._at(ast.Seq(commands), open_token)

    def parse_statement(self) -> ast.Command:
        token = self._current()
        return self._at(self._parse_statement(), token)

    def _parse_statement(self) -> ast.Command:
        if self._check("symbol", "{"):
            return self.parse_block()
        if self._accept("keyword", "skip"):
            self._expect("symbol", ";")
            return ast.Skip()
        if self._accept("keyword", "abort"):
            self._expect("symbol", ";")
            return ast.Abort()
        if self._accept("keyword", "assert"):
            self._expect("symbol", "(")
            condition = self.parse_condition()
            self._expect("symbol", ")")
            self._expect("symbol", ";")
            return ast.Assert(condition)
        if self._accept("keyword", "assume"):
            self._expect("symbol", "(")
            condition = self.parse_condition()
            self._expect("symbol", ")")
            self._expect("symbol", ";")
            return ast.Assume(condition)
        if self._accept("keyword", "tick"):
            self._expect("symbol", "(")
            amount = self.parse_expression()
            self._expect("symbol", ")")
            self._expect("symbol", ";")
            if isinstance(amount, ast.Const):
                return ast.Tick(amount.value)
            # ``tick(1/2)`` denotes the exact rational 1/2 (the paper's
            # ``q`` is a rational constant), not the floor division the
            # ``/`` operator means in expressions.  Folding the literal
            # here keeps the printer's ``tick(n/d)`` output a
            # bound-preserving round trip.
            if (isinstance(amount, ast.BinOp) and amount.op == "div"
                    and isinstance(amount.left, ast.Const)
                    and isinstance(amount.right, ast.Const)
                    and amount.right.value != 0):
                return ast.Tick(amount.left.value / amount.right.value)
            return ast.Tick(amount)
        if self._accept("keyword", "call"):
            name = self._expect("ident").value
            if self._accept("symbol", "("):
                self._expect("symbol", ")")
            self._expect("symbol", ";")
            return ast.Call(name)
        if self._accept("keyword", "while"):
            self._expect("symbol", "(")
            condition = self.parse_condition()
            self._expect("symbol", ")")
            body = self.parse_block()
            return ast.While(condition, body)
        if self._accept("keyword", "if"):
            self._expect("symbol", "(")
            nondet = False
            if self._check("symbol", "*"):
                self._accept("symbol", "*")
                nondet = True
                condition: ast.Expr = ast.Star()
            else:
                condition = self.parse_condition()
            self._expect("symbol", ")")
            then_branch = self.parse_block()
            else_branch: Optional[ast.Command] = None
            if self._accept("keyword", "else"):
                if self._check("keyword", "if"):
                    else_branch = self.parse_statement()
                else:
                    else_branch = self.parse_block()
            if nondet:
                return ast.NonDetChoice(then_branch, else_branch or ast.Skip())
            return ast.If(condition, then_branch, else_branch)
        if self._accept("keyword", "prob"):
            self._expect("symbol", "(")
            prob_token = self._current()
            probability = self.parse_probability()
            self._expect("symbol", ")")
            left = self.parse_block()
            self._expect("keyword", "else")
            right = self.parse_block()
            try:
                return ast.ProbChoice(probability, left, right)
            except ValueError as exc:
                # Out-of-range weights are a *syntax-level* problem: report
                # them as a positioned parse error, not a bare ValueError.
                raise ParseError(str(exc), prob_token.line, prob_token.column)
        if self._check("ident"):
            target = self._expect("ident").value
            self._expect("symbol", "=")
            rhs = self.parse_expression(allow_dist=True)
            self._expect("symbol", ";")
            return self._make_assignment(target, rhs)
        raise self._error("expected a statement")

    def _make_assignment(self, target: str, rhs: ast.Expr) -> ast.Command:
        dist_nodes = _collect_dist_calls(rhs)
        if not dist_nodes:
            return ast.Assign(target, rhs)
        if len(dist_nodes) > 1:
            raise self._error("at most one distribution per assignment is supported")
        if isinstance(rhs, _DistCall):
            return ast.Sample(target, ast.Const(0), "+", rhs.distribution)
        if isinstance(rhs, ast.BinOp) and isinstance(rhs.right, _DistCall) \
                and rhs.op in ("+", "-", "*"):
            return ast.Sample(target, rhs.left, rhs.op, rhs.right.distribution)
        if isinstance(rhs, ast.BinOp) and isinstance(rhs.left, _DistCall) \
                and rhs.op in ("+", "*"):
            return ast.Sample(target, rhs.right, rhs.op, rhs.left.distribution)
        raise self._error(
            "distribution calls may only appear as 'e + dist(...)', "
            "'e - dist(...)', 'e * dist(...)' or 'dist(...)'")

    # -- probabilities ---------------------------------------------------------

    def parse_probability(self) -> Fraction:
        token = self._expect("number")
        value = Fraction(token.value) if "." not in token.value else Fraction(token.value)
        if self._accept("symbol", "/"):
            denominator = self._expect("number")
            value = value / Fraction(denominator.value)
        return value

    # -- conditions -------------------------------------------------------------

    def parse_condition(self) -> ast.Expr:
        start = self._current()
        left = self.parse_conjunction()
        while self._accept("symbol", "||"):
            right = self.parse_conjunction()
            left = self._at(ast.BinOp("or", left, right), start)
        return left

    def parse_conjunction(self) -> ast.Expr:
        start = self._current()
        left = self.parse_comparison()
        while self._accept("symbol", "&&"):
            right = self.parse_comparison()
            left = self._at(ast.BinOp("and", left, right), start)
        return left

    def parse_comparison(self) -> ast.Expr:
        start = self._current()
        if self._accept("symbol", "!"):
            self._expect("symbol", "(")
            inner = self.parse_condition()
            self._expect("symbol", ")")
            return self._at(ast.Not(inner), start)
        if self._check("symbol", "*"):
            self._accept("symbol", "*")
            return self._at(ast.Star(), start)
        if self._accept("keyword", "true"):
            return self._at(ast.Const(1), start)
        if self._accept("keyword", "false"):
            return self._at(ast.Const(0), start)
        if self._check("symbol", "("):
            # Could be a parenthesised condition or arithmetic; try condition.
            saved = self.index
            self._accept("symbol", "(")
            try:
                inner = self.parse_condition()
                if self._accept("symbol", ")") and self._check_comparison_follow():
                    return inner
            except ParseError:
                pass
            self.index = saved
        left = self.parse_expression()
        for op in ("==", "!=", "<=", ">=", "<", ">"):
            if self._accept("symbol", op):
                right = self.parse_expression()
                return self._at(ast.BinOp(op, left, right), start)
        return left

    def _check_comparison_follow(self) -> bool:
        return (self._check("symbol", "&&") or self._check("symbol", "||")
                or self._check("symbol", ")") or self._check("symbol", ";"))

    # -- arithmetic expressions ---------------------------------------------------

    def parse_expression(self, allow_dist: bool = False) -> ast.Expr:
        start = self._current()
        left = self.parse_term(allow_dist)
        while True:
            if self._accept("symbol", "+"):
                left = self._at(
                    ast.BinOp("+", left, self.parse_term(allow_dist)), start)
            elif self._accept("symbol", "-"):
                left = self._at(
                    ast.BinOp("-", left, self.parse_term(allow_dist)), start)
            else:
                return left

    def parse_term(self, allow_dist: bool = False) -> ast.Expr:
        start = self._current()
        left = self.parse_factor(allow_dist)
        while True:
            if self._accept("symbol", "*"):
                left = self._at(
                    ast.BinOp("*", left, self.parse_factor(allow_dist)), start)
            elif self._accept("symbol", "/"):
                left = self._at(
                    ast.BinOp("div", left, self.parse_factor(allow_dist)), start)
            elif self._accept("symbol", "%"):
                left = self._at(
                    ast.BinOp("mod", left, self.parse_factor(allow_dist)), start)
            else:
                return left

    def parse_factor(self, allow_dist: bool = False) -> ast.Expr:
        start = self._current()
        if self._accept("symbol", "-"):
            inner = self.parse_factor(allow_dist)
            return self._at(ast.BinOp("-", self._at(ast.Const(0), start), inner),
                            start)
        if self._accept("symbol", "("):
            inner = self.parse_expression(allow_dist)
            self._expect("symbol", ")")
            return inner
        token = self._accept("number")
        if token is not None:
            return self._at(ast.Const(Fraction(token.value)), token)
        token = self._accept("ident")
        if token is not None:
            if allow_dist and token.value in DISTRIBUTION_CONSTRUCTORS \
                    and self._check("symbol", "("):
                self._expect("symbol", "(")
                args: List[Fraction] = []
                if not self._check("symbol", ")"):
                    args.append(self.parse_probability())
                    while self._accept("symbol", ","):
                        args.append(self.parse_probability())
                self._expect("symbol", ")")
                numeric_args = [int(a) if a.denominator == 1 else a for a in args]
                try:
                    distribution = make_distribution(token.value, numeric_args)
                except ValueError as exc:
                    # Invalid distribution parameters (p outside [0, 1],
                    # empty ranges, ...) are reported with the call's
                    # position instead of leaking a bare ValueError.
                    raise ParseError(str(exc), token.line, token.column)
                return self._at(_DistCall(distribution), token)
            return self._at(ast.Var(token.value), token)
        raise self._error("expected an expression")


def _collect_dist_calls(expr: ast.Expr) -> List[_DistCall]:
    found: List[_DistCall] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, _DistCall):
            found.append(node)
        stack.extend(node.children())
    return found


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def parse_program(source: str, main: Optional[str] = None) -> ast.Program:
    """Parse a complete program from source text."""
    return Parser(tokenize(source)).parse_program(main=main)


def parse_command(source: str) -> ast.Command:
    """Parse a single statement or block (useful in tests and the REPL)."""
    parser = Parser(tokenize(source))
    commands = []
    while not parser.at_end():
        commands.append(parser.parse_statement())
    if not commands:
        return ast.Skip()
    if len(commands) == 1:
        return commands[0]
    return ast.Seq(commands)


def parse_expr(source: str) -> ast.Expr:
    """Parse an arithmetic or boolean expression."""
    parser = Parser(tokenize(source))
    expr = parser.parse_condition()
    if not parser.at_end():
        raise parser._error("trailing input after expression")
    return expr
