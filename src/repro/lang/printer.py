"""Pretty printer: AST back to the concrete syntax.

The output of :func:`program_to_source` parses back to an equivalent program
(tested as a round-trip property), which makes it convenient for debugging,
logging derivations and storing benchmark programs in text form.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast
from repro.utils.rationals import pretty_fraction


def _indent(lines: List[str], amount: str = "    ") -> List[str]:
    return [amount + line for line in lines]


def expr_to_source(expr: ast.Expr) -> str:
    """Render an expression."""
    return str(expr)


def _fraction_literal(value) -> str:
    from fractions import Fraction
    frac = Fraction(value)
    if frac.denominator == 1:
        return str(frac.numerator)
    return f"{frac.numerator}/{frac.denominator}"


def command_lines(command: ast.Command) -> List[str]:
    """Render a command as a list of source lines."""
    if isinstance(command, ast.Skip):
        return ["skip;"]
    if isinstance(command, ast.Abort):
        return ["abort;"]
    if isinstance(command, ast.Assert):
        return [f"assert({command.condition});"]
    if isinstance(command, ast.Assume):
        return [f"assume({command.condition});"]
    if isinstance(command, ast.Tick):
        if command.is_constant:
            return [f"tick({_fraction_literal(command.amount)});"]
        return [f"tick({command.amount});"]
    if isinstance(command, ast.Assign):
        return [f"{command.target} = {command.expr};"]
    if isinstance(command, ast.Sample):
        base = "" if _is_zero(command.expr) and command.op == "+" \
            else f"{command.expr} {command.op} "
        return [f"{command.target} = {base}{command.distribution};"]
    if isinstance(command, ast.Call):
        return [f"call {command.procedure};"]
    if isinstance(command, ast.Seq):
        lines: List[str] = []
        for sub in command.commands:
            lines.extend(command_lines(sub))
        return lines
    if isinstance(command, ast.If):
        lines = [f"if ({command.condition}) {{"]
        lines += _indent(command_lines(command.then_branch))
        if isinstance(command.else_branch, ast.Skip):
            lines.append("}")
        else:
            lines.append("} else {")
            lines += _indent(command_lines(command.else_branch))
            lines.append("}")
        return lines
    if isinstance(command, ast.NonDetChoice):
        lines = ["if (*) {"]
        lines += _indent(command_lines(command.left))
        lines.append("} else {")
        lines += _indent(command_lines(command.right))
        lines.append("}")
        return lines
    if isinstance(command, ast.ProbChoice):
        lines = [f"prob({_fraction_literal(command.probability)}) {{"]
        lines += _indent(command_lines(command.left))
        lines.append("} else {")
        lines += _indent(command_lines(command.right))
        lines.append("}")
        return lines
    if isinstance(command, ast.While):
        lines = [f"while ({command.condition}) {{"]
        lines += _indent(command_lines(command.body))
        lines.append("}")
        return lines
    raise TypeError(f"unknown command {command!r}")


def _is_zero(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.Const) and expr.value == 0


def command_to_source(command: ast.Command) -> str:
    """Render a command as a source string."""
    return "\n".join(command_lines(command))


def procedure_to_source(proc: ast.Procedure) -> str:
    header = f"proc {proc.name}({', '.join(proc.params)}) {{"
    lines = [header]
    if proc.locals:
        lines.append(f"    local {', '.join(proc.locals)};")
    lines += _indent(command_lines(proc.body))
    lines.append("}")
    return "\n".join(lines)


def program_to_source(program: ast.Program) -> str:
    """Render a whole program, main procedure first."""
    order = [program.main] + sorted(name for name in program.procedures
                                    if name != program.main)
    chunks = [procedure_to_source(program.procedures[name]) for name in order]
    return "\n\n".join(chunks) + "\n"
