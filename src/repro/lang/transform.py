"""Program transformations used before analysis and simulation.

* :func:`clone_command` -- deep copy with fresh node ids (needed whenever a
  sub-tree is duplicated, e.g. by inlining).
* :func:`rename_variables` -- capture-free renaming of program variables.
* :func:`inline_calls` -- replace calls of non-recursive procedures by their
  bodies (the global-state calling convention of the paper makes this a
  simple splice).
* :func:`modified_variables` -- the set of variables a procedure may write,
  following calls transitively; used by the frame rule at call sites.
* :func:`counter_as_resource` -- turn updates of a resource-counter variable
  (``cost = cost + e``) into ``tick(e)`` commands, the paper's alternative
  way of defining cost models.
* :func:`is_loop_free` / :func:`program_size` -- small structural helpers.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Set

from repro.lang import ast
from repro.lang.errors import AnalysisError


# ---------------------------------------------------------------------------
# Expression helpers
# ---------------------------------------------------------------------------

def rename_expr(expr: ast.Expr, mapping: Mapping[str, str]) -> ast.Expr:
    """Rename variables in an expression (source spans are preserved)."""
    if isinstance(expr, ast.Var):
        return ast.copy_span(ast.Var(mapping.get(expr.name, expr.name)), expr)
    if isinstance(expr, ast.Const) or isinstance(expr, ast.Star):
        return expr
    if isinstance(expr, ast.BinOp):
        return ast.copy_span(
            ast.BinOp(expr.op, rename_expr(expr.left, mapping),
                      rename_expr(expr.right, mapping)), expr)
    if isinstance(expr, ast.Not):
        return ast.copy_span(ast.Not(rename_expr(expr.operand, mapping)), expr)
    raise TypeError(f"unknown expression {expr!r}")


# ---------------------------------------------------------------------------
# Command cloning / renaming
# ---------------------------------------------------------------------------

def clone_command(command: ast.Command,
                  rename: Optional[Mapping[str, str]] = None) -> ast.Command:
    """Deep-copy ``command`` with fresh node ids, optionally renaming variables.

    Source spans survive the copy, so diagnostics and error messages about
    inlined/rewritten trees still point at the original program text.
    """
    mapping = dict(rename or {})

    def rn(name: str) -> str:
        return mapping.get(name, name)

    def re(expr: ast.Expr) -> ast.Expr:
        return rename_expr(expr, mapping) if mapping else expr

    def sp(clone: ast.Command) -> ast.Command:
        return ast.copy_span(clone, command)

    if isinstance(command, ast.Skip):
        return sp(ast.Skip())
    if isinstance(command, ast.Abort):
        return sp(ast.Abort())
    if isinstance(command, ast.Assert):
        return sp(ast.Assert(re(command.condition)))
    if isinstance(command, ast.Assume):
        return sp(ast.Assume(re(command.condition)))
    if isinstance(command, ast.Tick):
        if command.is_constant:
            return sp(ast.Tick(command.amount))
        return sp(ast.Tick(re(command.amount)))
    if isinstance(command, ast.Assign):
        return sp(ast.Assign(rn(command.target), re(command.expr)))
    if isinstance(command, ast.Sample):
        return sp(ast.Sample(rn(command.target), re(command.expr), command.op,
                             command.distribution))
    if isinstance(command, ast.If):
        return sp(ast.If(re(command.condition),
                         clone_command(command.then_branch, mapping),
                         clone_command(command.else_branch, mapping)))
    if isinstance(command, ast.NonDetChoice):
        return sp(ast.NonDetChoice(clone_command(command.left, mapping),
                                   clone_command(command.right, mapping)))
    if isinstance(command, ast.ProbChoice):
        return sp(ast.ProbChoice(command.probability,
                                 clone_command(command.left, mapping),
                                 clone_command(command.right, mapping)))
    if isinstance(command, ast.Seq):
        return sp(ast.Seq([clone_command(sub, mapping)
                           for sub in command.commands]))
    if isinstance(command, ast.While):
        return sp(ast.While(re(command.condition),
                            clone_command(command.body, mapping)))
    if isinstance(command, ast.Call):
        return sp(ast.Call(command.procedure))
    raise TypeError(f"unknown command {command!r}")


def rename_variables(command: ast.Command, mapping: Mapping[str, str]) -> ast.Command:
    """Alias of :func:`clone_command` with a mandatory renaming."""
    return clone_command(command, mapping)


# ---------------------------------------------------------------------------
# Call inlining
# ---------------------------------------------------------------------------

def inline_calls(program: ast.Program, max_depth: int = 32) -> ast.Program:
    """Inline every call to a non-recursive procedure.

    Recursive procedures are left as ``call`` commands (they are handled by
    the specification-context machinery of the analyzer).  ``max_depth``
    guards against pathological call chains.
    """
    recursive = program.recursive_procedures()

    def inline(command: ast.Command, depth: int) -> ast.Command:
        if isinstance(command, ast.Call):
            name = command.procedure
            if name in recursive:
                return ast.copy_span(ast.Call(name), command)
            if name not in program.procedures:
                raise AnalysisError(f"call to undefined procedure {name!r}"
                                    f"{ast.span_suffix(command)}")
            if depth >= max_depth:
                raise AnalysisError(
                    f"call inlining exceeded depth {max_depth} at {name!r}"
                    f"{ast.span_suffix(command)}")
            body = clone_command(program.procedures[name].body)
            return inline(body, depth + 1)
        if isinstance(command, ast.Seq):
            return ast.copy_span(
                ast.Seq([inline(sub, depth) for sub in command.commands]),
                command)
        if isinstance(command, ast.If):
            return ast.copy_span(
                ast.If(command.condition,
                       inline(command.then_branch, depth),
                       inline(command.else_branch, depth)), command)
        if isinstance(command, ast.NonDetChoice):
            return ast.copy_span(
                ast.NonDetChoice(inline(command.left, depth),
                                 inline(command.right, depth)), command)
        if isinstance(command, ast.ProbChoice):
            return ast.copy_span(
                ast.ProbChoice(command.probability,
                               inline(command.left, depth),
                               inline(command.right, depth)), command)
        if isinstance(command, ast.While):
            return ast.copy_span(
                ast.While(command.condition, inline(command.body, depth)),
                command)
        return clone_command(command)

    new_procs: Dict[str, ast.Procedure] = {}
    for name, proc in program.procedures.items():
        new_procs[name] = ast.Procedure(name, inline(proc.body, 0),
                                        params=proc.params, locals_=proc.locals)
    return ast.Program(new_procs, main=program.main)


# ---------------------------------------------------------------------------
# Modified variables
# ---------------------------------------------------------------------------

def modified_variables(program: ast.Program, procedure: str,
                       _seen: Optional[Set[str]] = None) -> Set[str]:
    """Variables that running ``procedure`` may modify (transitively)."""
    seen = _seen if _seen is not None else set()
    if procedure in seen:
        return set()
    seen.add(procedure)
    proc = program.procedures.get(procedure)
    if proc is None:
        raise AnalysisError(f"unknown procedure {procedure!r}")
    modified = set(proc.body.assigned_variables())
    for callee in proc.body.called_procedures():
        modified |= modified_variables(program, callee, seen)
    return modified


def command_modified_variables(program: ast.Program, command: ast.Command) -> Set[str]:
    """Variables that executing ``command`` may modify (following calls)."""
    modified = set(command.assigned_variables())
    for callee in command.called_procedures():
        modified |= modified_variables(program, callee)
    return modified


# ---------------------------------------------------------------------------
# Resource-counter variables
# ---------------------------------------------------------------------------

def counter_as_resource(program: ast.Program, counter: str) -> ast.Program:
    """Model the global counter variable ``counter`` with ``tick`` commands.

    Every assignment ``counter = counter + e`` becomes ``tick(e)``.  Any other
    write to the counter (except initialisation to a constant, which becomes
    ``skip``) is rejected, mirroring how the paper uses ``cost`` in the
    ``trader`` example.
    """

    def rewrite(command: ast.Command) -> ast.Command:
        if isinstance(command, ast.Assign) and command.target == counter:
            expr = command.expr
            if isinstance(expr, ast.BinOp) and expr.op == "+" \
                    and isinstance(expr.left, ast.Var) and expr.left.name == counter:
                amount = expr.right
                if isinstance(amount, ast.Const):
                    return ast.copy_span(ast.Tick(amount.value), command)
                return ast.copy_span(ast.Tick(amount), command)
            if isinstance(expr, ast.Const):
                return ast.copy_span(ast.Skip(), command)
            raise AnalysisError(
                f"cannot interpret write to resource counter: {command!r}"
                f"{ast.span_suffix(command)}")
        if isinstance(command, ast.Seq):
            return ast.copy_span(ast.Seq([rewrite(sub)
                                          for sub in command.commands]), command)
        if isinstance(command, ast.If):
            return ast.copy_span(
                ast.If(command.condition, rewrite(command.then_branch),
                       rewrite(command.else_branch)), command)
        if isinstance(command, ast.NonDetChoice):
            return ast.copy_span(
                ast.NonDetChoice(rewrite(command.left), rewrite(command.right)),
                command)
        if isinstance(command, ast.ProbChoice):
            return ast.copy_span(
                ast.ProbChoice(command.probability, rewrite(command.left),
                               rewrite(command.right)), command)
        if isinstance(command, ast.While):
            return ast.copy_span(
                ast.While(command.condition, rewrite(command.body)), command)
        return clone_command(command)

    new_procs = {name: ast.Procedure(name, rewrite(proc.body), params=proc.params,
                                     locals_=proc.locals)
                 for name, proc in program.procedures.items()}
    return ast.Program(new_procs, main=program.main)


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------

def is_loop_free(command: ast.Command) -> bool:
    """Whether the command contains no loop and no call."""
    return not any(isinstance(node, (ast.While, ast.Call))
                   for node in command.iter_nodes())


def program_size(program: ast.Program) -> int:
    """Number of AST command nodes (a rough LoC proxy for reporting)."""
    return sum(1 for _ in program.iter_nodes())


def max_sampling_range(command: ast.Command) -> int:
    """The largest distribution support width / constant shift in ``command``.

    Used by the base-function heuristic to decide how far interval atoms
    should be widened beyond the guard (e.g. ``|[h, t+9]|`` for ``race``).
    """
    widest = 0
    for node in command.iter_nodes():
        if isinstance(node, ast.Sample):
            support = node.distribution.support()
            widest = max(widest, max(abs(v) for v, _ in support))
        if isinstance(node, ast.Assign):
            expr = node.expr
            if isinstance(expr, ast.BinOp) and isinstance(expr.right, ast.Const):
                widest = max(widest, abs(int(expr.right.value)))
    return widest
