"""Linear-arithmetic reasoning: contexts, entailment and abstract interpretation.

The derivation system of the paper threads a *logical context* Gamma through
every rule; contexts are conjunctions of linear inequalities over program
variables inferred by a simple abstract interpretation (Sec. 7.1).  The
weakening rule (``Relax``) needs to decide entailments such as
``Gamma |= n - x >= 1`` to justify rewrite functions; we discharge these with
an exact Fourier-Motzkin elimination procedure over rationals (the paper uses
a Presburger decision procedure).
"""

from repro.logic.contexts import Context
from repro.logic.conditions import facts_from_condition, negated_facts_from_condition
from repro.logic.absint import AbstractInterpreter, ContextMap
from repro.logic.entailment import (
    DomainBackend,
    EntailmentEngine,
    EntailmentStats,
    available_domains,
    clear_cache,
    get_engine,
    reset_stats,
    use_domain,
)
from repro.logic.fourier_motzkin import (
    Infeasible,
    Unbounded,
    entails,
    is_feasible,
    minimize,
)

__all__ = [
    "Context",
    "facts_from_condition",
    "negated_facts_from_condition",
    "AbstractInterpreter",
    "ContextMap",
    "DomainBackend",
    "EntailmentEngine",
    "EntailmentStats",
    "available_domains",
    "clear_cache",
    "get_engine",
    "reset_stats",
    "use_domain",
    "Infeasible",
    "Unbounded",
    "entails",
    "is_feasible",
    "minimize",
]
