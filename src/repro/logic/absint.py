"""Forward abstract interpretation inferring logical contexts (paper Sec. 7.1).

The abstract interpreter computes, for every command node, a :class:`Context`
(a conjunction of linear inequalities) that holds whenever control reaches
that node.  The derivation system later consults these contexts to decide
which rewrite functions are applicable during weakening, and the
base-function heuristic mines them for interval atoms.

The domain is deliberately simple -- the paper reports that a simple AI with
linear inequalities "is sufficient to infer many bounds and provides good
performance"; a richer domain (e.g. Apron octagons/polyhedra) could be
substituted behind the same interface.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.lang import ast
from repro.lang.errors import LoweringError
from repro.lang.transform import modified_variables
from repro.logic.conditions import facts_from_condition, negated_facts_from_condition
from repro.logic.contexts import Context
from repro.utils.linear import LinExpr

#: Maps command node ids to the context holding *before* the command runs.
ContextMap = Dict[int, Context]

#: Number of fixpoint iterations before widening kicks in.
WIDENING_DELAY = 3
#: Hard cap on fixpoint iterations (the widening guarantees termination much
#: earlier; the cap is a defensive measure).
MAX_ITERATIONS = 20


class AbstractInterpreter:
    """Forward AI over :class:`Context` for one program."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.contexts: ContextMap = {}
        self.post_contexts: ContextMap = {}
        #: Procedures whose fixpoints are already recorded.  The contexts a
        #: run computes are degree independent, so the incremental pipeline
        #: (:mod:`repro.core.pipeline`) keeps one interpreter alive across
        #: degree escalations and re-entry is a no-op.
        self._analyzed: Dict[str, Context] = {}

    # -- public API ----------------------------------------------------------

    def analyze_procedure(self, name: str,
                          entry: Optional[Context] = None) -> Context:
        """Run the AI over a procedure body; return the exit context."""
        proc = self.program.procedures[name]
        start = entry if entry is not None else Context.top()
        exit_context = self.analyze_command(proc.body, start)
        if entry is None:
            self._analyzed[name] = exit_context
        return exit_context

    def ensure_procedure(self, name: str) -> Context:
        """Analyze ``name`` from the top entry context exactly once.

        Repeated calls (degree retries, staged pipelines) return the
        recorded exit context without re-running the fixpoint iteration.
        """
        cached = self._analyzed.get(name)
        if cached is not None:
            return cached
        return self.analyze_procedure(name)

    def analyze_command(self, command: ast.Command, ctx: Context) -> Context:
        """Record pre-contexts for every node of ``command``; return the post."""
        self.contexts[command.node_id] = ctx
        post = self._transfer(command, ctx)
        self.post_contexts[command.node_id] = post
        return post

    def context_before(self, command: ast.Command) -> Context:
        """The recorded context in front of ``command`` (top if never visited)."""
        return self.contexts.get(command.node_id, Context.top())

    def context_after(self, command: ast.Command) -> Context:
        return self.post_contexts.get(command.node_id, Context.top())

    # -- transfer functions -------------------------------------------------------

    def _transfer(self, command: ast.Command, ctx: Context) -> Context:
        if isinstance(command, (ast.Skip, ast.Tick, ast.Call)):
            if isinstance(command, ast.Call):
                return self._transfer_call(command, ctx)
            return ctx
        if isinstance(command, ast.Abort):
            return Context.unreachable_context()
        if isinstance(command, (ast.Assert, ast.Assume)):
            return ctx.add_facts(facts_from_condition(command.condition))
        if isinstance(command, ast.Assign):
            return self._transfer_assign(command, ctx)
        if isinstance(command, ast.Sample):
            return self._transfer_sample(command, ctx)
        if isinstance(command, ast.Seq):
            current = ctx
            for sub in command.commands:
                current = self.analyze_command(sub, current)
            return current
        if isinstance(command, ast.If):
            then_ctx = ctx.add_facts(facts_from_condition(command.condition))
            else_ctx = ctx.add_facts(negated_facts_from_condition(command.condition))
            then_post = self.analyze_command(command.then_branch, then_ctx)
            else_post = self.analyze_command(command.else_branch, else_ctx)
            return then_post.join(else_post)
        if isinstance(command, ast.NonDetChoice):
            left_post = self.analyze_command(command.left, ctx)
            right_post = self.analyze_command(command.right, ctx)
            return left_post.join(right_post)
        if isinstance(command, ast.ProbChoice):
            left_post = self.analyze_command(command.left, ctx)
            right_post = self.analyze_command(command.right, ctx)
            return left_post.join(right_post)
        if isinstance(command, ast.While):
            return self._transfer_while(command, ctx)
        raise TypeError(f"unknown command {command!r}")

    def _transfer_assign(self, command: ast.Assign, ctx: Context) -> Context:
        try:
            rhs = ast.expr_to_linexpr(command.expr)
        except LoweringError:
            return ctx.havoc(command.target)
        return ctx.assign(command.target, rhs)

    def _transfer_sample(self, command: ast.Sample, ctx: Context) -> Context:
        try:
            base = ast.expr_to_linexpr(command.expr)
        except LoweringError:
            return ctx.havoc(command.target)
        support = command.distribution.support()
        values = [value for value, _ in support]
        low, high = min(values), max(values)
        if command.op == "+":
            return ctx.assign_interval(command.target, base, low, high)
        if command.op == "-":
            return ctx.assign_interval(command.target, base, -high, -low)
        # Multiplication by a sampled value: only constant bases stay linear.
        if base.is_constant():
            outcomes = sorted(base.const_term * value for value in values)
            return ctx.assign_interval(command.target, LinExpr.zero(),
                                       outcomes[0], outcomes[-1])
        return ctx.havoc(command.target)

    def _transfer_call(self, command: ast.Call, ctx: Context) -> Context:
        result = ctx
        for var in sorted(modified_variables(self.program, command.procedure)):
            result = result.havoc(var)
        return result

    def _transfer_while(self, command: ast.While, ctx: Context) -> Context:
        invariant = ctx
        for iteration in range(MAX_ITERATIONS):
            body_entry = invariant.add_facts(facts_from_condition(command.condition))
            body_post = self._transfer_silent(command.body, body_entry)
            joined = invariant.join(body_post)
            if iteration >= WIDENING_DELAY:
                joined = invariant.widen(joined)
            # Syntactic equality is the common stabilisation case and avoids
            # the two-way semantic entailment check entirely.
            if joined == invariant:
                break
            if joined.entails_context(invariant) and invariant.entails_context(joined):
                invariant = joined
                break
            invariant = joined
        # Record contexts for the loop head and (in a final stable pass) the body.
        self.contexts[command.node_id] = invariant
        body_entry = invariant.add_facts(facts_from_condition(command.condition))
        self.analyze_command(command.body, body_entry)
        exit_ctx = invariant.add_facts(
            negated_facts_from_condition(command.condition))
        return exit_ctx

    def _transfer_silent(self, command: ast.Command, ctx: Context) -> Context:
        """Run a transfer without recording contexts (used inside fixpoints)."""
        saved_pre = dict(self.contexts)
        saved_post = dict(self.post_contexts)
        result = self.analyze_command(command, ctx)
        self.contexts = saved_pre
        self.post_contexts = saved_post
        return result


def analyze_program(program: ast.Program,
                    entry: Optional[Context] = None) -> AbstractInterpreter:
    """Convenience wrapper: analyze the main procedure and every other procedure."""
    interpreter = AbstractInterpreter(program)
    interpreter.analyze_procedure(program.main, entry)
    for name in program.procedures:
        if name != program.main:
            interpreter.analyze_procedure(name, Context.top())
    return interpreter
