"""Extracting linear facts from boolean guard expressions.

Guards are boolean combinations of integer comparisons (plus the
non-deterministic ``*``).  When the analysis enters the "true" branch of a
guard it may soundly assume some facts, and likewise for the "false" branch.
Only facts that are *certain* are extracted:

* conjunctions contribute the facts of both conjuncts on the true branch;
* disjunctions contribute facts only on the false branch (De Morgan);
* ``*`` and non-linear comparisons contribute nothing;
* strict comparisons are tightened by one unit when every coefficient is an
  integer (program variables range over the integers).
"""

from __future__ import annotations

from typing import List

from repro.lang import ast
from repro.lang.errors import LoweringError
from repro.utils.linear import LinExpr


def _is_integral(expr: LinExpr) -> bool:
    if expr.const_term.denominator != 1:
        return False
    return all(coeff.denominator == 1 for coeff in expr.coeffs.values())


def _strict_positive_facts(diff: LinExpr) -> List[LinExpr]:
    """Facts for ``diff > 0``: ``diff - 1 >= 0`` over the integers."""
    if _is_integral(diff):
        return [diff - 1]
    return [diff]


def _comparison_facts(op: str, left: LinExpr, right: LinExpr) -> List[LinExpr]:
    if op == "<":
        return _strict_positive_facts(right - left)
    if op == "<=":
        return [right - left]
    if op == ">":
        return _strict_positive_facts(left - right)
    if op == ">=":
        return [left - right]
    if op == "==":
        return [left - right, right - left]
    if op == "!=":
        return []
    raise ValueError(f"not a comparison operator: {op!r}")


_NEGATION = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}


def facts_from_condition(condition: ast.Expr) -> List[LinExpr]:
    """Facts that certainly hold when ``condition`` evaluates to true."""
    if isinstance(condition, ast.Star):
        return []
    if isinstance(condition, ast.Const):
        if condition.value == 0:
            # The branch is unreachable; encode with an unsatisfiable fact.
            return [LinExpr.const(-1)]
        return []
    if isinstance(condition, ast.Not):
        return negated_facts_from_condition(condition.operand)
    if isinstance(condition, ast.BinOp):
        if condition.op == "and":
            return (facts_from_condition(condition.left)
                    + facts_from_condition(condition.right))
        if condition.op == "or":
            return []
        if condition.op in ("==", "!=", "<", ">", "<=", ">="):
            try:
                left = ast.expr_to_linexpr(condition.left)
                right = ast.expr_to_linexpr(condition.right)
            except LoweringError:
                return []
            return _comparison_facts(condition.op, left, right)
    # Arithmetic expressions used as booleans ("e != 0"): no information.
    return []


def negated_facts_from_condition(condition: ast.Expr) -> List[LinExpr]:
    """Facts that certainly hold when ``condition`` evaluates to false."""
    if isinstance(condition, ast.Star):
        return []
    if isinstance(condition, ast.Const):
        if condition.value != 0:
            return [LinExpr.const(-1)]
        return []
    if isinstance(condition, ast.Not):
        return facts_from_condition(condition.operand)
    if isinstance(condition, ast.BinOp):
        if condition.op == "and":
            # not (a && b) gives no certain conjunction of facts unless one
            # side carries no information at all (e.g. ``e && *``).
            left_facts = facts_from_condition(condition.left)
            right_facts = facts_from_condition(condition.right)
            if not left_facts:
                return negated_facts_from_condition(condition.right) if \
                    isinstance(condition.left, ast.Star) and not left_facts else []
            if not right_facts and isinstance(condition.right, ast.Star):
                # ``e && *`` false tells us nothing about e.
                return []
            return []
        if condition.op == "or":
            return (negated_facts_from_condition(condition.left)
                    + negated_facts_from_condition(condition.right))
        if condition.op in ("==", "!=", "<", ">", "<=", ">="):
            try:
                left = ast.expr_to_linexpr(condition.left)
                right = ast.expr_to_linexpr(condition.right)
            except LoweringError:
                return []
            return _comparison_facts(_NEGATION[condition.op], left, right)
    return []


def condition_may_be_true(condition: ast.Expr) -> bool:
    """Whether the condition can possibly be true (syntactic check)."""
    return not (isinstance(condition, ast.Const) and condition.value == 0)


def condition_may_be_false(condition: ast.Expr) -> bool:
    """Whether the condition can possibly be false (syntactic check)."""
    if isinstance(condition, ast.Const) and condition.value != 0:
        return False
    return True
