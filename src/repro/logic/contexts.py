"""Logical contexts Gamma: conjunctions of linear inequalities over program state.

A :class:`Context` corresponds to the paper's logical context Gamma, a
predicate describing the set of permitted states at a program point.  It is
represented as a conjunction of facts ``e >= 0`` (``LinExpr`` instances) plus
an explicit "unreachable" flag for contexts equivalent to ``false``.

Contexts support the operations the analysis needs:

* entailment queries (``Gamma |= e >= 0``) and greatest lower bounds, used to
  justify rewrite functions in ``Q:Weaken``,
* the strongest-postcondition style transfers for assignments and sampling
  assignments, used by the abstract interpreter,
* join and widening, used for loop fixpoints.
"""

from __future__ import annotations

from fractions import Fraction
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.logic import fourier_motzkin as fm
from repro.logic.entailment import get_engine
from repro.utils.linear import LinExpr
from repro.utils.rationals import Number, to_fraction


class Context:
    """An immutable conjunction of linear facts ``e >= 0``.

    All entailment/feasibility/lower-bound queries are routed through the
    process-wide :class:`~repro.logic.entailment.EntailmentEngine`, which
    memoises answers per ``(facts, query)`` and shares Fourier-Motzkin
    projections across queries.
    """

    __slots__ = ("_facts", "_unreachable", "_fact_set")

    def __init__(self, facts: Iterable[LinExpr] = (), unreachable: bool = False) -> None:
        cleaned: List[LinExpr] = []
        seen = set()
        for fact in facts:
            if fact.is_constant():
                if fact.const_term < 0:
                    unreachable = True
                continue
            if fact not in seen:
                seen.add(fact)
                cleaned.append(fact)
        self._facts: Tuple[LinExpr, ...] = tuple(cleaned)
        self._fact_set: FrozenSet[LinExpr] = frozenset(cleaned)
        self._unreachable = bool(unreachable)

    # -- constructors --------------------------------------------------------

    @classmethod
    def top(cls) -> "Context":
        """The context with no information (all states permitted)."""
        return cls()

    @classmethod
    def unreachable_context(cls) -> "Context":
        return cls((), unreachable=True)

    # -- accessors --------------------------------------------------------------

    @property
    def facts(self) -> Tuple[LinExpr, ...]:
        return self._facts

    @property
    def is_unreachable(self) -> bool:
        return self._unreachable

    def variables(self) -> Set[str]:
        names: Set[str] = set()
        for fact in self._facts:
            names.update(fact.variables())
        return names

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Context):
            return NotImplemented
        return (self._unreachable == other._unreachable
                and self._fact_set == other._fact_set)

    def __hash__(self) -> int:
        return hash((self._unreachable, self._fact_set))

    def __repr__(self) -> str:
        if self._unreachable:
            return "Context(unreachable)"
        if not self._facts:
            return "Context(top)"
        inner = " && ".join(f"{fact} >= 0" for fact in self._facts)
        return f"Context({inner})"

    # -- logical operations ---------------------------------------------------------

    def add_facts(self, facts: Iterable[LinExpr]) -> "Context":
        """Conjoin additional facts ``e >= 0``."""
        if self._unreachable:
            return self
        return Context(self._facts + tuple(facts))

    def conjoin(self, other: "Context") -> "Context":
        if self._unreachable or other._unreachable:
            return Context.unreachable_context()
        return Context(self._facts + other._facts)

    def is_satisfiable(self) -> bool:
        if self._unreachable:
            return False
        return get_engine().is_feasible(self._facts, self._fact_set)

    def entails(self, fact: LinExpr) -> bool:
        """Whether ``self |= fact >= 0``."""
        if self._unreachable:
            return True
        return get_engine().entails(self._facts, fact, self._fact_set)

    def entails_many(self, facts: Sequence[LinExpr]) -> List[bool]:
        """Batched :meth:`entails`: one projection for all candidate facts."""
        if self._unreachable:
            return [True] * len(facts)
        return get_engine().entails_many(self._facts, facts, self._fact_set)

    def entails_context(self, other: "Context") -> bool:
        """Whether ``self |= other`` (every fact of ``other`` is implied)."""
        if self._unreachable:
            return True
        if other._unreachable:
            return not self.is_satisfiable()
        # Syntactic subset: every fact of ``other`` appears literally.  This
        # short circuit never reaches the engine, so it is counted in *no*
        # tier of the engine's per-tier hit statistics -- in particular it
        # cannot double-count against the interval pre-filter's counters
        # (``tests/test_intervals.py`` pins this).
        if other._fact_set <= self._fact_set:
            return True
        return all(self.entails_many(other._facts))

    def greatest_lower_bound(self, expression: LinExpr) -> Optional[Fraction]:
        """The largest ``c`` with ``self |= expression >= c``, or ``None``.

        ``None`` means "no finite greatest lower bound exists": either
        ``expression`` is unbounded below under the context, or the
        context is unsatisfiable/unreachable -- an unreachable context
        entails ``expression >= c`` for *every* ``c``, so no largest one
        exists.  Callers (the rewrite generator in
        :mod:`repro.core.rewrite`) use the returned value as a certified
        constant, so the sentinel deliberately conflates the two cases:
        both mean "there is no constant you can cite".  The engine's
        backends follow the same convention
        (:func:`repro.logic.fourier_motzkin.greatest_lower_bound`).
        """
        if self._unreachable:
            return None
        return get_engine().greatest_lower_bound(self._facts, expression,
                                                 self._fact_set)

    # -- state transformers (used by the abstract interpreter) ----------------------

    def havoc(self, var: str) -> "Context":
        """Forget all information about ``var``."""
        if self._unreachable:
            return self
        kept = [fact for fact in self._facts if fact.coefficient(var) == 0]
        return Context(kept)

    def rename(self, mapping) -> "Context":
        if self._unreachable:
            return self
        return Context(tuple(fact.rename(mapping) for fact in self._facts))

    def assign(self, var: str, rhs: LinExpr) -> "Context":
        """Strongest postcondition of the assignment ``var := rhs``.

        Delegated to :meth:`EntailmentEngine.assign
        <repro.logic.entailment.EntailmentEngine.assign>`: the old value of
        ``var`` is renamed to a fresh symbol, the defining equality for the
        new value is added and the fresh symbol is projected away through
        the active abstract-domain backend.  Exact for linear right-hand
        sides.
        """
        if self._unreachable:
            return self
        try:
            projected = get_engine().assign(self._facts, var, rhs,
                                            key=self._fact_set)
        except fm.ConstraintCapExceeded:
            # Only the eliminator's *own* cap falls back to the sound
            # over-approximation; a genuine interpreter MemoryError must
            # propagate instead of being swallowed as imprecision.
            return self.havoc(var)
        except fm.Infeasible:
            return Context.unreachable_context()
        return Context(projected)

    def assign_interval(self, var: str, rhs: LinExpr,
                        low_shift: Number, high_shift: Number) -> "Context":
        """Postcondition of ``var := rhs + delta`` with ``delta in [low, high]``.

        Used for sampling assignments ``x = e + R`` with ``R`` ranging over a
        finite support: the new value lies between ``rhs + low`` and
        ``rhs + high``.
        """
        if self._unreachable:
            return self
        try:
            projected = get_engine().assign(self._facts, var, rhs,
                                            to_fraction(low_shift),
                                            to_fraction(high_shift),
                                            key=self._fact_set)
        except fm.ConstraintCapExceeded:
            return self.havoc(var)
        except fm.Infeasible:
            return Context.unreachable_context()
        return Context(projected)

    # -- lattice operations ------------------------------------------------------------

    def join(self, other: "Context") -> "Context":
        """A sound over-approximation of the union of the two state sets.

        We keep the facts of each side that are entailed by the other side
        (the "common facts" join); this is the simple abstract domain the
        paper describes as sufficient in practice.
        """
        if self._unreachable:
            return other
        if other._unreachable:
            return self
        return Context(get_engine().join(self._facts, other._facts,
                                         self._fact_set, other._fact_set))

    def widen(self, newer: "Context") -> "Context":
        """Standard widening: keep only the facts of ``self`` still valid in ``newer``."""
        if self._unreachable:
            return newer
        if newer._unreachable:
            return self
        return Context(get_engine().widen(self._facts, newer._facts,
                                          newer._fact_set))

    # -- miscellaneous --------------------------------------------------------------------

    def satisfied_by(self, state) -> bool:
        """Whether a concrete state satisfies every fact (used in tests)."""
        if self._unreachable:
            return False
        return all(fact.evaluate(state) >= 0 for fact in self._facts)
