"""Cached entailment engine fronting every Fourier-Motzkin query.

The abstract interpreter and the rewrite generator ask the same small family
of questions over and over: ``Gamma |= e >= 0`` (entailment), the greatest
lower bound of an expression under ``Gamma``, and satisfiability of
``Gamma``.  A loop fixpoint alone re-asks each of them once per iteration,
and ``join``/``widen`` fan a single lattice operation out into one
entailment per fact.  Running a fresh Fourier-Motzkin elimination for each
query dominates the analyzer's wall-clock time.

:class:`EntailmentEngine` answers these queries through three layers, each
tried in order:

1. **memo cache** -- results keyed on ``(frozenset(facts), query)``, shared
   process-wide, so repeated queries (fixpoint iterations, repeated degrees,
   repeated program points) are O(1);
2. **syntactic fast paths** -- the query is a literal fact, a non-negative
   combination of at most two facts, a trivially true constant, or shares no
   variable with the context; these answer without any elimination;
3. **cached projection** -- the context is projected once onto the variables
   of the query (and, for :meth:`entails_many`, once onto the union of all
   query variables); the projection is memoised so every further query over
   the same variables reuses it and only runs a tiny final minimisation.

All layers are exact: fast paths only return definite answers, projections
are exact for rational Fourier-Motzkin, and the memo never crosses contexts.
``MemoryError`` raised by the constraint cap is never cached and always
propagates so callers (e.g. :meth:`Context.assign <repro.logic.contexts.Context.assign>`)
keep their fallback behaviour.

Use :func:`get_engine` for the process-wide instance; ``Context`` routes all
its logical operations through it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import (Dict, FrozenSet, Iterable, List, Optional, Sequence,
                    Tuple)

from repro.logic import fourier_motzkin as fm
from repro.utils.linear import LinExpr

FactKey = FrozenSet[LinExpr]

#: Sentinel stored in the projection cache for infeasible contexts.
_INFEASIBLE = object()

#: Do not attempt the two-fact combination fast path on larger contexts.
_PAIR_FAST_PATH_LIMIT = 16

_ZERO = Fraction(0)


class EntailmentStats:
    """Counters describing how queries were answered."""

    __slots__ = ("queries", "memo_hits", "fast_hits", "misses", "eliminations")

    def __init__(self) -> None:
        self.queries = 0        # top-level entails/glb/feasibility queries
        self.memo_hits = 0      # answered from the (facts, query) memo
        self.fast_hits = 0      # answered by a syntactic fast path
        self.misses = 0         # required Fourier-Motzkin work
        self.eliminations = 0   # actual eliminate/minimize invocations

    def hit_rate(self) -> float:
        """Fraction of queries answered without any elimination."""
        if not self.queries:
            return 0.0
        return (self.memo_hits + self.fast_hits) / self.queries

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def delta(self, since: Dict[str, int]) -> Dict[str, int]:
        return {name: getattr(self, name) - since.get(name, 0)
                for name in self.__slots__}

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = self.snapshot()
        data["hit_rate"] = round(self.hit_rate(), 4)
        return data

    def __repr__(self) -> str:
        return (f"EntailmentStats(queries={self.queries}, "
                f"memo_hits={self.memo_hits}, fast_hits={self.fast_hits}, "
                f"misses={self.misses}, eliminations={self.eliminations})")


class EntailmentEngine:
    """Process-wide cache + fast paths for Fourier-Motzkin queries."""

    #: Clear a cache wholesale once it grows past this many entries; the
    #: contexts of one program are small, so in practice this only guards
    #: long-running multi-program processes.
    MAX_ENTRIES = 200_000

    def __init__(self) -> None:
        self.stats = EntailmentStats()
        self.evictions = 0
        self._entails_cache: Dict[Tuple[FactKey, LinExpr], bool] = {}
        self._glb_cache: Dict[Tuple[FactKey, LinExpr], Optional[Fraction]] = {}
        self._feasible_cache: Dict[FactKey, bool] = {}
        self._projection_cache: Dict[Tuple[FactKey, FrozenSet[str]], object] = {}
        # Per-context index for the single-fact fast path: canonical linear
        # part -> smallest canonical constant among the facts.
        self._norm_index: Dict[FactKey, Dict[Tuple, Fraction]] = {}

    # -- maintenance ------------------------------------------------------

    def clear(self) -> None:
        """Drop every cached result (statistics are kept)."""
        self._entails_cache.clear()
        self._glb_cache.clear()
        self._feasible_cache.clear()
        self._projection_cache.clear()
        self._norm_index.clear()

    def reset_stats(self) -> None:
        self.stats = EntailmentStats()

    def _guard(self, cache: Dict) -> None:
        if len(cache) > self.MAX_ENTRIES:
            cache.clear()
            self.evictions += 1

    # -- public queries ----------------------------------------------------

    def entails(self, facts: Sequence[LinExpr], query: LinExpr,
                key: Optional[FactKey] = None) -> bool:
        """Whether ``facts |= query >= 0`` over the rationals."""
        if key is None:
            key = frozenset(facts)
        self.stats.queries += 1
        return self._entails_impl(facts, key, query)

    def entails_many(self, facts: Sequence[LinExpr],
                     queries: Sequence[LinExpr],
                     key: Optional[FactKey] = None) -> List[bool]:
        """Batched :meth:`entails`: project the context once for all queries.

        The context is projected onto the union of the query variables a
        single time; every query is then decided against that (much smaller)
        system.  Answers are memoised under the *original* context so later
        point queries hit the cache.
        """
        if key is None:
            key = frozenset(facts)
        results: List[Optional[bool]] = [None] * len(queries)
        pending: List[int] = []
        for index, query in enumerate(queries):
            self.stats.queries += 1
            cached = self._entails_cache.get((key, query))
            if cached is not None:
                self.stats.memo_hits += 1
                results[index] = cached
                continue
            fast = self._fast_entails(facts, key, query)
            if fast is not None:
                self.stats.fast_hits += 1
                self._store_entails(key, query, fast)
                results[index] = fast
                continue
            pending.append(index)
        if pending:
            self.stats.misses += len(pending)
            union_vars = frozenset(var for index in pending
                                   for var in queries[index].variables())
            try:
                base = self.project(facts, union_vars, key)
            except fm.Infeasible:
                base = None
            if base is None:
                # The context is unsatisfiable: it entails everything.
                for index in pending:
                    self._store_entails(key, queries[index], True)
                    results[index] = True
            else:
                base_key = frozenset(base)
                for index in pending:
                    query = queries[index]
                    answer = self._entails_impl(base, base_key, query,
                                                count=False)
                    self._store_entails(key, query, answer)
                    results[index] = answer
        return results  # type: ignore[return-value]

    def is_feasible(self, facts: Sequence[LinExpr],
                    key: Optional[FactKey] = None) -> bool:
        """Whether the conjunction of ``e >= 0`` facts is satisfiable."""
        if key is None:
            key = frozenset(facts)
        self.stats.queries += 1
        cached = self._feasible_cache.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached
        if not facts:
            self.stats.fast_hits += 1
            self._feasible_cache[key] = True
            return True
        self.stats.misses += 1
        try:
            self.project(facts, frozenset(), key)
            result = True
        except fm.Infeasible:
            result = False
        self._guard(self._feasible_cache)
        self._feasible_cache[key] = result
        return result

    def greatest_lower_bound(self, facts: Sequence[LinExpr],
                             expression: LinExpr,
                             key: Optional[FactKey] = None) -> Optional[Fraction]:
        """Largest ``c`` with ``facts |= expression >= c`` (None if none)."""
        if key is None:
            key = frozenset(facts)
        self.stats.queries += 1
        cache_key = (key, expression)
        if cache_key in self._glb_cache:
            self.stats.memo_hits += 1
            return self._glb_cache[cache_key]
        result: Optional[Fraction]
        fast_answered = True
        if expression.is_constant():
            # min over any non-empty feasible set is the constant itself; the
            # unsatisfiable case returns None by convention.
            result = (expression.const_term
                      if self._feasible_quiet(facts, key) else None)
        elif not self._overlaps(facts, expression):
            # Unconstrained variables: unbounded below when feasible, and the
            # infeasible convention is None as well.
            result = None
        else:
            fast_answered = False
            self.stats.misses += 1
            result = self._glb_cold(facts, key, expression)
        if fast_answered:
            self.stats.fast_hits += 1
        self._guard(self._glb_cache)
        self._glb_cache[cache_key] = result
        return result

    def project(self, facts: Sequence[LinExpr], keep: FrozenSet[str],
                key: Optional[FactKey] = None) -> Tuple[LinExpr, ...]:
        """Cached exact projection of ``facts`` onto the ``keep`` variables.

        Raises :class:`~repro.logic.fourier_motzkin.Infeasible` for
        unsatisfiable systems (also on cache hits).  ``MemoryError`` from the
        constraint cap is never cached and propagates to the caller.
        """
        if key is None:
            key = frozenset(facts)
        cache_key = (key, keep)
        cached = self._projection_cache.get(cache_key)
        if cached is not None:
            if cached is _INFEASIBLE:
                raise fm.Infeasible()
            return cached  # type: ignore[return-value]
        self.stats.eliminations += 1
        try:
            projected = tuple(fm.eliminate_all(facts, keep=sorted(keep)))
        except fm.Infeasible:
            self._guard(self._projection_cache)
            self._projection_cache[cache_key] = _INFEASIBLE
            raise
        self._guard(self._projection_cache)
        self._projection_cache[cache_key] = projected
        return projected

    # -- internals ---------------------------------------------------------

    def _store_entails(self, key: FactKey, query: LinExpr, result: bool) -> None:
        self._guard(self._entails_cache)
        self._entails_cache[(key, query)] = result

    def _entails_impl(self, facts: Sequence[LinExpr], key: FactKey,
                      query: LinExpr, count: bool = True) -> bool:
        cached = self._entails_cache.get((key, query))
        if cached is not None:
            if count:
                self.stats.memo_hits += 1
            return cached
        fast = self._fast_entails(facts, key, query)
        if fast is not None:
            if count:
                self.stats.fast_hits += 1
            self._store_entails(key, query, fast)
            return fast
        if count:
            self.stats.misses += 1
        result = self._entails_cold(facts, key, query)
        self._store_entails(key, query, result)
        return result

    def _entails_cold(self, facts: Sequence[LinExpr], key: FactKey,
                      query: LinExpr) -> bool:
        try:
            projected = self.project(facts, frozenset(query.variables()), key)
        except fm.Infeasible:
            return True
        self.stats.eliminations += 1
        try:
            lowest = fm.minimize(query, projected)
        except fm.Infeasible:
            return True
        except fm.Unbounded:
            return False
        return lowest >= 0

    def _glb_cold(self, facts: Sequence[LinExpr], key: FactKey,
                  expression: LinExpr) -> Optional[Fraction]:
        try:
            projected = self.project(facts, frozenset(expression.variables()),
                                     key)
        except fm.Infeasible:
            return None
        self.stats.eliminations += 1
        try:
            return fm.minimize(expression, projected)
        except (fm.Infeasible, fm.Unbounded):
            return None

    def _feasible_quiet(self, facts: Sequence[LinExpr], key: FactKey) -> bool:
        """Feasibility without bumping the top-level query counters."""
        cached = self._feasible_cache.get(key)
        if cached is not None:
            return cached
        if not facts:
            result = True
        else:
            try:
                self.project(facts, frozenset(), key)
                result = True
            except fm.Infeasible:
                result = False
        self._guard(self._feasible_cache)
        self._feasible_cache[key] = result
        return result

    # -- syntactic fast paths ----------------------------------------------

    def _overlaps(self, facts: Sequence[LinExpr], query: LinExpr) -> bool:
        query_vars = query.variables()
        for fact in facts:
            for var, _ in fact.coeff_items:
                if var in query_vars:
                    return True
        return False

    def _norm_index_for(self, key: FactKey) -> Dict[Tuple, Fraction]:
        index = self._norm_index.get(key)
        if index is None:
            index = {}
            for fact in key:
                if fact.is_constant():
                    continue
                _, canonical = fact.normalised()
                lin = canonical.coeff_items
                const = canonical.const_term
                current = index.get(lin)
                if current is None or const < current:
                    index[lin] = const
            self._guard(self._norm_index)
            self._norm_index[key] = index
        return index

    def _fast_entails(self, facts: Sequence[LinExpr], key: FactKey,
                      query: LinExpr) -> Optional[bool]:
        """Definite answers that need no elimination; ``None`` = undecided."""
        # Constants: trivially true when non-negative; a negative constant is
        # entailed exactly by the infeasible contexts.
        if query.is_constant():
            if query.const_term >= 0:
                return True
            return not self._feasible_quiet(facts, key)
        # The query is a fact (or a positive multiple of one, possibly with
        # extra slack on the constant): f says lin >= -c_f, the query needs
        # lin >= -c_q, so any fact with c_f <= c_q decides it.
        if query in key:
            return True
        _, canonical = query.normalised()
        best = self._norm_index_for(key).get(canonical.coeff_items)
        if best is not None and canonical.const_term >= best:
            return True
        # No variable in common with the context: the query's variables are
        # unconstrained, so the minimum is -inf unless the context itself is
        # infeasible (in which case everything is entailed).
        if not self._overlaps(facts, query):
            return not self._feasible_quiet(facts, key)
        # Non-negative combination of two facts.
        if 2 <= len(key) <= _PAIR_FAST_PATH_LIMIT:
            if self._two_fact_combination(key, query):
                return True
        return None

    def _two_fact_combination(self, key: FactKey, query: LinExpr) -> bool:
        """Whether ``query = a*f1 + b*f2 + c`` with ``a, b, c >= 0`` exactly.

        Sound but deliberately incomplete: only facts whose support is
        contained in the query's support are considered, so no cancellation
        between the two facts is explored.
        """
        qmap = dict(query.coeff_items)
        qvars = set(qmap)
        candidates = [fact for fact in key
                      if all(var in qvars for var, _ in fact.coeff_items)]
        if len(candidates) < 2:
            return False
        for i, f1 in enumerate(candidates):
            m1 = dict(f1.coeff_items)
            for f2 in candidates[i + 1:]:
                m2 = dict(f2.coeff_items)
                solution = self._solve_pair(qmap, qvars, m1, m2)
                if solution is None:
                    continue
                a, b = solution
                slack = (query.const_term - a * f1.const_term
                         - b * f2.const_term)
                if slack >= 0:
                    return True
        return False

    @staticmethod
    def _solve_pair(qmap: Dict[str, Fraction], qvars: Iterable[str],
                    m1: Dict[str, Fraction],
                    m2: Dict[str, Fraction]) -> Optional[Tuple[Fraction, Fraction]]:
        """Solve ``a*m1 + b*m2 = qmap`` over all query variables, a, b >= 0."""
        variables = list(qvars)
        pivot = None
        for p, v1 in enumerate(variables):
            for v2 in variables[p + 1:]:
                det = (m1.get(v1, _ZERO) * m2.get(v2, _ZERO)
                       - m1.get(v2, _ZERO) * m2.get(v1, _ZERO))
                if det != 0:
                    pivot = (v1, v2, det)
                    break
            if pivot:
                break
        if pivot is None:
            return None
        v1, v2, det = pivot
        q1, q2 = qmap[v1], qmap[v2]
        a = (q1 * m2.get(v2, _ZERO) - q2 * m2.get(v1, _ZERO)) / det
        b = (m1.get(v1, _ZERO) * q2 - m1.get(v2, _ZERO) * q1) / det
        if a < 0 or b < 0:
            return None
        for var in variables:
            if a * m1.get(var, _ZERO) + b * m2.get(var, _ZERO) != qmap[var]:
                return None
        return a, b


#: The process-wide engine shared by every :class:`Context`.
_ENGINE = EntailmentEngine()


def get_engine() -> EntailmentEngine:
    """The process-wide entailment engine."""
    return _ENGINE


def clear_cache() -> None:
    """Drop all cached entailment results (useful between experiments)."""
    _ENGINE.clear()


def reset_stats() -> None:
    """Reset the hit/miss statistics of the process-wide engine."""
    _ENGINE.reset_stats()


# -- per-process lifecycle hooks (used by repro.service.scheduler) ----------

def reset_engine() -> EntailmentEngine:
    """Install a brand-new process-wide engine and return it.

    Worker processes call this from their initializer: a forked worker
    inherits the parent's engine object, and a fresh instance both drops
    that inherited state and guarantees that nothing the worker computes
    can leak back into (or appear to come from) the parent's caches.
    """
    global _ENGINE
    _ENGINE = EntailmentEngine()
    return _ENGINE


def engine_fingerprint() -> Dict[str, object]:
    """Identity + cache occupancy of this process's engine (for isolation tests)."""
    import os

    return {
        "pid": os.getpid(),
        "engine_id": id(_ENGINE),
        "queries": _ENGINE.stats.queries,
        "eliminations": _ENGINE.stats.eliminations,
        "entails_entries": len(_ENGINE._entails_cache),
        "projection_entries": len(_ENGINE._projection_cache),
    }


def warm_engine() -> EntailmentEngine:
    """Pay per-process one-time costs up front; return the warm engine.

    Importing the LP stack and exercising one tiny end-to-end query moves
    module-import and first-touch costs out of the first real job, so
    per-job wall times measured in a worker are comparable to a warm
    sequential process.  The engine's caches stay warm for the lifetime of
    the worker across all jobs it executes.
    """
    import repro.core.solver          # noqa: F401  (scipy import)
    import repro.lang.parser          # noqa: F401

    engine = get_engine()
    x = LinExpr({"x": 1})
    engine.entails((x,), x)
    engine.clear()
    engine.reset_stats()
    return engine
