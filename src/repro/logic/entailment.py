"""Cached entailment engines fronting the exact abstract-domain backends.

The abstract interpreter and the rewrite generator ask the same small family
of questions over and over: ``Gamma |= e >= 0`` (entailment), the greatest
lower bound of an expression under ``Gamma``, and satisfiability of
``Gamma``.  A loop fixpoint alone re-asks each of them once per iteration,
and ``join``/``widen`` fan a single lattice operation out into one
entailment per fact.  Running a fresh Fourier-Motzkin elimination for each
query dominates the analyzer's wall-clock time.

:class:`EntailmentEngine` answers these queries through three layers, each
tried in order:

1. **memo cache** -- results keyed on ``(frozenset(facts), query)``, shared
   process-wide, so repeated queries (fixpoint iterations, repeated degrees,
   repeated program points) are O(1);
2. **syntactic fast paths** -- the query is a literal fact, a non-negative
   combination of at most two facts, a trivially true constant, or shares no
   variable with the context; these answer without any elimination;
3. **cached projection** -- the context is projected once onto the variables
   of the query (and, for :meth:`entails_many`, once onto the union of all
   query variables); the projection is memoised so every further query over
   the same variables reuses it and only runs a tiny final minimisation.

All layers are exact: fast paths only return definite answers, projections
are exact for rational Fourier-Motzkin, and the memo never crosses contexts.
``MemoryError`` raised by the constraint cap is never cached and always
propagates so callers (e.g. :meth:`Context.assign <repro.logic.contexts.Context.assign>`)
keep their fallback behaviour.

**Abstract-domain backends.**  The cold layer underneath the caches is
pluggable: a :class:`DomainBackend` supplies exact projection, feasibility
and minimisation.  Two registered backends exist:

* ``fm`` (default) -- the hand-rolled Fourier-Motzkin eliminator of
  :mod:`repro.logic.fourier_motzkin`;
* ``polyhedra`` -- the generator-representation polyhedral domain of
  :mod:`repro.logic.polyhedra` (double description / Chernikova).

Both are exact over the rationals, so they must agree on every decision
query -- ``tests/test_domain_differential.py`` asserts it.  One engine
exists per domain (:func:`get_engine` with a ``domain`` argument); the
*active* domain -- what a bare ``get_engine()`` and therefore every
``Context`` operation uses -- defaults to ``$REPRO_DOMAIN`` or ``fm`` and is
switched per analysis via :func:`use_domain` (the analyzer pipeline does
this from ``AnalyzerConfig.domain``).

The engine also hosts the lattice/transfer operations (:meth:`EntailmentEngine.join`,
:meth:`~EntailmentEngine.widen`, :meth:`~EntailmentEngine.assign`), so
``Context`` never touches a solver module directly and every backend serves
the full logical-context surface.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from fractions import Fraction
from typing import (Callable, Dict, FrozenSet, Iterable, Iterator, List,
                    Optional, Sequence, Tuple)

from repro.logic import fourier_motzkin as fm
from repro.logic.intervals import UNDECIDED, IntervalBox
from repro.utils.linear import LinExpr

FactKey = FrozenSet[LinExpr]

#: Environment variable selecting the process-default domain.
DOMAIN_ENV = "REPRO_DOMAIN"

#: Environment variable selecting the process-default pre-filter state.
PREFILTER_ENV = "REPRO_PREFILTER"

#: The built-in default backend.
FM_DOMAIN = "fm"

#: Sentinel stored in the projection cache for infeasible contexts.
_INFEASIBLE = object()

#: Do not attempt the two-fact combination fast path on larger contexts.
_PAIR_FAST_PATH_LIMIT = 16

_ZERO = Fraction(0)


class EntailmentStats:
    """Counters describing how queries were answered.

    The first four counters partition the top-level queries by the tier
    that answered them (memo -> syntactic -> interval -> exact backend);
    :meth:`tiers` exposes that partition by tier name.  Note that
    ``Context.entails_context``'s syntactic-subset short circuit never
    reaches the engine at all, so it appears in *no* tier -- the counters
    describe engine queries, not every logical question asked.
    """

    __slots__ = ("queries", "memo_hits", "fast_hits", "interval_hits",
                 "misses", "eliminations", "fm_eliminations", "cap_blowups")

    def __init__(self) -> None:
        self.queries = 0          # top-level entails/glb/feasibility queries
        self.memo_hits = 0        # answered from the (facts, query) memo
        self.fast_hits = 0        # answered by a syntactic fast path
        self.interval_hits = 0    # answered by the interval pre-filter tier
        self.misses = 0           # required exact-backend work
        self.eliminations = 0     # eliminate/minimize/DD-conversion invocations
        self.fm_eliminations = 0  # Fourier-Motzkin eliminate_all invocations
        self.cap_blowups = 0      # projections killed by the constraint cap

    def hit_rate(self) -> float:
        """Fraction of queries answered without any elimination."""
        if not self.queries:
            return 0.0
        return (self.memo_hits + self.fast_hits
                + self.interval_hits) / self.queries

    def interval_hit_rate(self) -> float:
        """Fraction of tier-reaching queries the interval tier decided.

        Measured against the queries that fell through the memo and the
        syntactic fast paths (``interval_hits + misses``): of the queries
        that *would have* hit the exact backend, how many did the
        pre-filter shield?  This is the headline perfsmoke number.
        """
        reached = self.interval_hits + self.misses
        if not reached:
            return 0.0
        return self.interval_hits / reached

    def tiers(self) -> Dict[str, int]:
        """Per-tier answer counts, in the order the tiers are tried."""
        return {"memo": self.memo_hits, "syntactic": self.fast_hits,
                "interval": self.interval_hits, "exact": self.misses}

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def delta(self, since: Dict[str, int]) -> Dict[str, int]:
        return {name: getattr(self, name) - since.get(name, 0)
                for name in self.__slots__}

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = self.snapshot()
        data["hit_rate"] = round(self.hit_rate(), 4)
        data["interval_hit_rate"] = round(self.interval_hit_rate(), 4)
        data["tiers"] = self.tiers()
        return data

    def __repr__(self) -> str:
        return (f"EntailmentStats(queries={self.queries}, "
                f"memo_hits={self.memo_hits}, fast_hits={self.fast_hits}, "
                f"interval_hits={self.interval_hits}, "
                f"misses={self.misses}, eliminations={self.eliminations})")


class DomainBackend:
    """Interface of an exact abstract-domain backend under the engine.

    Every method must be *exact* over the rationals: different backends are
    interchangeable precisely because they can never disagree on a decision
    query.  Representation-producing operations (:meth:`project`) feed
    context reconstruction, so their byte-level output is part of the
    reproducibility contract (see ``tests/test_domain_identity.py``).
    """

    name = "abstract"
    #: Whether :meth:`EntailmentEngine.entails_many` should pre-project the
    #: context onto the union of the query variables (worth it when queries
    #: re-run an eliminator; pointless when the backend caches a generator
    #: representation per context).
    batch_by_projection = True

    def attach(self, engine: "EntailmentEngine") -> None:
        self.engine = engine

    def is_feasible(self, facts: Sequence[LinExpr], key: FactKey) -> bool:
        raise NotImplementedError

    def minimize(self, objective: LinExpr, facts: Sequence[LinExpr],
                 key: FactKey) -> Fraction:
        """``inf { objective | facts }``; raises ``Infeasible``/``Unbounded``."""
        raise NotImplementedError

    def project(self, facts: Sequence[LinExpr],
                keep: FrozenSet[str]) -> Tuple[LinExpr, ...]:
        """Exact projection onto ``keep``; raises ``Infeasible``."""
        raise NotImplementedError

    def assign(self, facts: Sequence[LinExpr], key: FactKey, var: str,
               rhs: LinExpr, low_shift: Fraction,
               high_shift: Fraction) -> Tuple[LinExpr, ...]:
        """Strongest postcondition of ``var := rhs + [low_shift, high_shift]``.

        Must return the *canonical minimal* constraint system of the
        result region (the :meth:`Polyhedron.constraints
        <repro.logic.polyhedra.Polyhedron.constraints>` normal form):
        context fact tuples seed base-function atoms and appear verbatim
        in certificates, so the byte-level output is part of the
        cross-domain reproducibility contract.  Raises ``Infeasible`` for
        unreachable results.
        """
        raise NotImplementedError

    def clear(self) -> None:
        """Drop any backend-private caches (engine.clear() calls this)."""


def assign_system(facts: Sequence[LinExpr], var: str, rhs: LinExpr,
                  low_shift: Fraction, high_shift: Fraction
                  ) -> Tuple[List[LinExpr], FrozenSet[str]]:
    """The renamed constraint system of an assignment, plus its keep set.

    The old value of ``var`` is renamed to a fresh symbol, the defining
    (in)equalities ``rhs + low <= var' <= rhs + high`` are added, and the
    caller projects the fresh symbol away.  Shared by every backend so the
    encoded relation (and thus the result region) is identical.
    """
    old = f"__old_{var}__"
    renamed = [fact.substitute(var, LinExpr.var(old)) for fact in facts]
    rhs_old = rhs.substitute(var, LinExpr.var(old))
    new_var = LinExpr.var(var)
    renamed.append(new_var - rhs_old - LinExpr.const(low_shift))
    renamed.append(rhs_old + LinExpr.const(high_shift) - new_var)
    keep = frozenset(v for fact in renamed
                     for v in fact.variables() if v != old)
    return renamed, keep


class FourierMotzkinBackend(DomainBackend):
    """The default backend: cached Fourier-Motzkin elimination.

    Minimisation projects the context onto the objective's variables first
    (through the engine's shared projection cache, so repeated queries over
    the same variables reuse one elimination) and then minimises over the
    much smaller projected system.
    """

    name = FM_DOMAIN
    batch_by_projection = True

    def is_feasible(self, facts: Sequence[LinExpr], key: FactKey) -> bool:
        try:
            self.engine.project(facts, frozenset(), key)
        except fm.Infeasible:
            return False
        return True

    def minimize(self, objective: LinExpr, facts: Sequence[LinExpr],
                 key: FactKey) -> Fraction:
        projected = self.engine.project(
            facts, frozenset(objective.variables()), key)
        self.engine.stats.eliminations += 1
        return fm.minimize(objective, projected)

    def project(self, facts: Sequence[LinExpr],
                keep: FrozenSet[str]) -> Tuple[LinExpr, ...]:
        self.engine.stats.fm_eliminations += 1
        return tuple(fm.eliminate_all(facts, keep=sorted(keep)))

    def assign(self, facts: Sequence[LinExpr], key: FactKey, var: str,
               rhs: LinExpr, low_shift: Fraction,
               high_shift: Fraction) -> Tuple[LinExpr, ...]:
        """FM-project the renamed system, then canonicalise the output.

        The elimination itself is the classic pairwise one (with the
        constraint cap; ``ConstraintCapExceeded`` propagates so callers
        keep their havoc fallback), but the *representation* handed back
        is the shared polyhedral normal form -- that is what makes this
        byte-identical to the generator-side ``PolyhedraBackend.assign``.
        """
        from repro.logic.polyhedra import canonical_constraints

        renamed, keep = assign_system(facts, var, rhs, low_shift, high_shift)
        projected = self.engine.project(renamed, keep)
        return canonical_constraints(projected)


class EntailmentEngine:
    """Per-domain cache + fast paths fronting an exact backend."""

    #: Clear a cache wholesale once it grows past this many entries; the
    #: contexts of one program are small, so in practice this only guards
    #: long-running multi-program processes.
    MAX_ENTRIES = 200_000

    def __init__(self, backend: Optional[DomainBackend] = None) -> None:
        self.backend = backend if backend is not None else FourierMotzkinBackend()
        self.backend.attach(self)
        self.stats = EntailmentStats()
        self.evictions = 0
        self._entails_cache: Dict[Tuple[FactKey, LinExpr], bool] = {}
        self._glb_cache: Dict[Tuple[FactKey, LinExpr], Optional[Fraction]] = {}
        self._feasible_cache: Dict[FactKey, bool] = {}
        self._projection_cache: Dict[Tuple[FactKey, FrozenSet[str]], object] = {}
        self._assign_cache: Dict[Tuple[FactKey, str, LinExpr, Fraction,
                                       Fraction], object] = {}
        # Per-context interval boxes for the pre-filter tier.  Safe to keep
        # populated (and to share answers through the memo caches) with the
        # pre-filter off: a decided interval answer always equals the exact
        # backend's answer, so cache contents are toggle-independent.
        self._box_cache: Dict[FactKey, IntervalBox] = {}
        # Per-context index for the single-fact fast path: canonical linear
        # part -> smallest canonical constant among the facts.
        self._norm_index: Dict[FactKey, Dict[Tuple, Fraction]] = {}

    # -- maintenance ------------------------------------------------------

    @property
    def domain(self) -> str:
        """Name of the abstract-domain backend answering cold queries."""
        return self.backend.name

    def clear(self) -> None:
        """Drop every cached result (statistics are kept)."""
        self._entails_cache.clear()
        self._glb_cache.clear()
        self._feasible_cache.clear()
        self._projection_cache.clear()
        self._assign_cache.clear()
        self._box_cache.clear()
        self._norm_index.clear()
        self.backend.clear()

    def reset_stats(self) -> None:
        self.stats = EntailmentStats()

    def _guard(self, cache: Dict) -> None:
        if len(cache) > self.MAX_ENTRIES:
            cache.clear()
            self.evictions += 1

    # -- public queries ----------------------------------------------------

    def entails(self, facts: Sequence[LinExpr], query: LinExpr,
                key: Optional[FactKey] = None) -> bool:
        """Whether ``facts |= query >= 0`` over the rationals."""
        if key is None:
            key = frozenset(facts)
        self.stats.queries += 1
        return self._entails_impl(facts, key, query)

    def entails_many(self, facts: Sequence[LinExpr],
                     queries: Sequence[LinExpr],
                     key: Optional[FactKey] = None) -> List[bool]:
        """Batched :meth:`entails`: project the context once for all queries.

        The context is projected onto the union of the query variables a
        single time; every query is then decided against that (much smaller)
        system.  Answers are memoised under the *original* context so later
        point queries hit the cache.
        """
        if key is None:
            key = frozenset(facts)
        results: List[Optional[bool]] = [None] * len(queries)
        pending: List[int] = []
        for index, query in enumerate(queries):
            self.stats.queries += 1
            cached = self._entails_cache.get((key, query))
            if cached is not None:
                self.stats.memo_hits += 1
                results[index] = cached
                continue
            fast = self._fast_entails(facts, key, query)
            if fast is not None:
                self.stats.fast_hits += 1
                self._store_entails(key, query, fast)
                results[index] = fast
                continue
            if active_prefilter():
                verdict = self._box_for(key).entails(query)
                if verdict is not UNDECIDED:
                    self.stats.interval_hits += 1
                    self._store_entails(key, query, verdict)
                    results[index] = verdict
                    continue
            pending.append(index)
        if pending:
            self.stats.misses += len(pending)
            if not self.backend.batch_by_projection:
                # The backend answers point queries cheaply (e.g. from a
                # cached generator representation): no shared projection.
                for index in pending:
                    results[index] = self._entails_impl(facts, key,
                                                        queries[index],
                                                        count=False)
                return results  # type: ignore[return-value]
            union_vars = frozenset(var for index in pending
                                   for var in queries[index].variables())
            try:
                base = self.project(facts, union_vars, key)
            except fm.Infeasible:
                base = None
            if base is None:
                # The context is unsatisfiable: it entails everything.
                for index in pending:
                    self._store_entails(key, queries[index], True)
                    results[index] = True
            else:
                base_key = frozenset(base)
                for index in pending:
                    query = queries[index]
                    answer = self._entails_impl(base, base_key, query,
                                                count=False)
                    self._store_entails(key, query, answer)
                    results[index] = answer
        return results  # type: ignore[return-value]

    def is_feasible(self, facts: Sequence[LinExpr],
                    key: Optional[FactKey] = None) -> bool:
        """Whether the conjunction of ``e >= 0`` facts is satisfiable."""
        if key is None:
            key = frozenset(facts)
        self.stats.queries += 1
        cached = self._feasible_cache.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached
        if not facts:
            self.stats.fast_hits += 1
            self._feasible_cache[key] = True
            return True
        if active_prefilter():
            verdict = self._box_for(key).is_satisfiable()
            if verdict is not UNDECIDED:
                self.stats.interval_hits += 1
                self._guard(self._feasible_cache)
                self._feasible_cache[key] = verdict
                return verdict
        self.stats.misses += 1
        result = self.backend.is_feasible(facts, key)
        self._guard(self._feasible_cache)
        self._feasible_cache[key] = result
        return result

    def greatest_lower_bound(self, facts: Sequence[LinExpr],
                             expression: LinExpr,
                             key: Optional[FactKey] = None) -> Optional[Fraction]:
        """Largest ``c`` with ``facts |= expression >= c`` (None if none)."""
        if key is None:
            key = frozenset(facts)
        self.stats.queries += 1
        cache_key = (key, expression)
        if cache_key in self._glb_cache:
            self.stats.memo_hits += 1
            return self._glb_cache[cache_key]
        result: Optional[Fraction]
        fast_answered = True
        if expression.is_constant():
            # min over any non-empty feasible set is the constant itself; the
            # unsatisfiable case returns None by convention.
            result = (expression.const_term
                      if self._feasible_quiet(facts, key) else None)
        elif not self._overlaps(facts, expression):
            # Unconstrained variables: unbounded below when feasible, and the
            # infeasible convention is None as well.
            result = None
        else:
            fast_answered = False
            if active_prefilter():
                verdict = self._box_for(key).glb(expression)
                if verdict is not UNDECIDED:
                    self.stats.interval_hits += 1
                    self._guard(self._glb_cache)
                    self._glb_cache[cache_key] = verdict
                    return verdict
            self.stats.misses += 1
            result = self._glb_cold(facts, key, expression)
        if fast_answered:
            self.stats.fast_hits += 1
        self._guard(self._glb_cache)
        self._glb_cache[cache_key] = result
        return result

    def project(self, facts: Sequence[LinExpr], keep: FrozenSet[str],
                key: Optional[FactKey] = None) -> Tuple[LinExpr, ...]:
        """Cached exact projection of ``facts`` onto the ``keep`` variables.

        Raises :class:`~repro.logic.fourier_motzkin.Infeasible` for
        unsatisfiable systems (also on cache hits).  ``MemoryError`` from the
        constraint cap is never cached and propagates to the caller.
        """
        if key is None:
            key = frozenset(facts)
        cache_key = (key, keep)
        cached = self._projection_cache.get(cache_key)
        if cached is not None:
            if cached is _INFEASIBLE:
                raise fm.Infeasible()
            return cached  # type: ignore[return-value]
        self.stats.eliminations += 1
        # Fault-injection site: lets the chaos suite force a constraint-cap
        # blowup on the cold path without crafting a pathological program.
        # Cheap no-op unless a fault registry is installed.
        from repro.service import faults

        try:
            faults.fire("engine.project", self.domain)
            projected = self.backend.project(facts, keep)
        except fm.Infeasible:
            self._guard(self._projection_cache)
            self._projection_cache[cache_key] = _INFEASIBLE
            raise
        except MemoryError:
            # Constraint-cap blowups are counted but never cached: the same
            # query may succeed under another backend or a smaller context.
            self.stats.cap_blowups += 1
            raise
        self._guard(self._projection_cache)
        self._projection_cache[cache_key] = projected
        return projected

    # -- internals ---------------------------------------------------------

    def _store_entails(self, key: FactKey, query: LinExpr, result: bool) -> None:
        self._guard(self._entails_cache)
        self._entails_cache[(key, query)] = result

    def _box_for(self, key: FactKey) -> IntervalBox:
        """The (cached) interval box of a context, for the pre-filter tier."""
        box = self._box_cache.get(key)
        if box is None:
            box = IntervalBox.from_facts(key)
            self._guard(self._box_cache)
            self._box_cache[key] = box
        return box

    def _entails_impl(self, facts: Sequence[LinExpr], key: FactKey,
                      query: LinExpr, count: bool = True) -> bool:
        cached = self._entails_cache.get((key, query))
        if cached is not None:
            if count:
                self.stats.memo_hits += 1
            return cached
        fast = self._fast_entails(facts, key, query)
        if fast is not None:
            if count:
                self.stats.fast_hits += 1
            self._store_entails(key, query, fast)
            return fast
        # Interval pre-filter tier: only on counted (top-level) queries --
        # the ``count=False`` calls from :meth:`entails_many` are either
        # already-projected residues or pending queries whose tier checks
        # ran in the batch loop, and both were counted as misses there.
        if count and active_prefilter():
            verdict = self._box_for(key).entails(query)
            if verdict is not UNDECIDED:
                self.stats.interval_hits += 1
                self._store_entails(key, query, verdict)
                return verdict
        if count:
            self.stats.misses += 1
        result = self._entails_cold(facts, key, query)
        self._store_entails(key, query, result)
        return result

    def _entails_cold(self, facts: Sequence[LinExpr], key: FactKey,
                      query: LinExpr) -> bool:
        try:
            lowest = self.backend.minimize(query, facts, key)
        except fm.Infeasible:
            return True
        except fm.Unbounded:
            return False
        return lowest >= 0

    def _glb_cold(self, facts: Sequence[LinExpr], key: FactKey,
                  expression: LinExpr) -> Optional[Fraction]:
        try:
            return self.backend.minimize(expression, facts, key)
        except (fm.Infeasible, fm.Unbounded):
            return None

    def _feasible_quiet(self, facts: Sequence[LinExpr], key: FactKey) -> bool:
        """Feasibility without bumping the top-level query counters."""
        cached = self._feasible_cache.get(key)
        if cached is not None:
            return cached
        result = True if not facts else self.backend.is_feasible(facts, key)
        self._guard(self._feasible_cache)
        self._feasible_cache[key] = result
        return result

    # -- lattice and transfer operations ------------------------------------

    def join(self, facts: Sequence[LinExpr], other_facts: Sequence[LinExpr],
             key: Optional[FactKey] = None,
             other_key: Optional[FactKey] = None) -> List[LinExpr]:
        """The "common facts" join: facts of each side entailed by the other.

        Order is reproducible: ``facts`` first (in order), then the facts
        unique to ``other_facts`` (in order) -- context construction relies
        on this being independent of the backend.
        """
        kept = [fact for fact, ok
                in zip(facts, self.entails_many(other_facts, facts, other_key))
                if ok]
        seen = set(kept)
        candidates = [fact for fact in other_facts if fact not in seen]
        kept.extend(fact for fact, ok
                    in zip(candidates,
                           self.entails_many(facts, candidates, key))
                    if ok)
        return kept

    def widen(self, facts: Sequence[LinExpr], newer_facts: Sequence[LinExpr],
              newer_key: Optional[FactKey] = None) -> List[LinExpr]:
        """Standard widening: the facts of ``facts`` still valid in ``newer``."""
        return [fact for fact, ok
                in zip(facts, self.entails_many(newer_facts, facts, newer_key))
                if ok]

    def assign(self, facts: Sequence[LinExpr], var: str, rhs: LinExpr,
               low_shift: Fraction = _ZERO,
               high_shift: Fraction = _ZERO,
               key: Optional[FactKey] = None) -> Tuple[LinExpr, ...]:
        """Strongest postcondition of ``var := rhs + [low_shift, high_shift]``.

        Delegated to the backend (see :meth:`DomainBackend.assign`): the
        Fourier-Motzkin backend renames the old value of ``var`` to a
        fresh symbol and projects it away, the polyhedra backend applies
        the assignment to the generator representation directly.  Both
        return the *canonical minimal* constraint system of the result, so
        the output is byte-identical across backends.  Raises
        :class:`~repro.logic.fourier_motzkin.Infeasible` for unreachable
        results; ``MemoryError`` from the eliminator's constraint cap
        propagates (callers fall back to ``havoc``) and is never cached.
        """
        if key is None:
            key = frozenset(facts)
        cache_key = (key, var, rhs, low_shift, high_shift)
        cached = self._assign_cache.get(cache_key)
        if cached is not None:
            if cached is _INFEASIBLE:
                raise fm.Infeasible()
            return cached  # type: ignore[return-value]
        try:
            result = self.backend.assign(facts, key, var, rhs,
                                         low_shift, high_shift)
        except fm.Infeasible:
            self._guard(self._assign_cache)
            self._assign_cache[cache_key] = _INFEASIBLE
            raise
        result = tuple(result)
        self._guard(self._assign_cache)
        self._assign_cache[cache_key] = result
        return result

    # -- syntactic fast paths ----------------------------------------------

    def _overlaps(self, facts: Sequence[LinExpr], query: LinExpr) -> bool:
        query_vars = query.variables()
        for fact in facts:
            for var, _ in fact.coeff_items:
                if var in query_vars:
                    return True
        return False

    def _norm_index_for(self, key: FactKey) -> Dict[Tuple, Fraction]:
        index = self._norm_index.get(key)
        if index is None:
            index = {}
            for fact in key:
                if fact.is_constant():
                    continue
                _, canonical = fact.normalised()
                lin = canonical.coeff_items
                const = canonical.const_term
                current = index.get(lin)
                if current is None or const < current:
                    index[lin] = const
            self._guard(self._norm_index)
            self._norm_index[key] = index
        return index

    def _fast_entails(self, facts: Sequence[LinExpr], key: FactKey,
                      query: LinExpr) -> Optional[bool]:
        """Definite answers that need no elimination; ``None`` = undecided."""
        # Constants: trivially true when non-negative; a negative constant is
        # entailed exactly by the infeasible contexts.
        if query.is_constant():
            if query.const_term >= 0:
                return True
            return not self._feasible_quiet(facts, key)
        # The query is a fact (or a positive multiple of one, possibly with
        # extra slack on the constant): f says lin >= -c_f, the query needs
        # lin >= -c_q, so any fact with c_f <= c_q decides it.
        if query in key:
            return True
        _, canonical = query.normalised()
        best = self._norm_index_for(key).get(canonical.coeff_items)
        if best is not None and canonical.const_term >= best:
            return True
        # No variable in common with the context: the query's variables are
        # unconstrained, so the minimum is -inf unless the context itself is
        # infeasible (in which case everything is entailed).
        if not self._overlaps(facts, query):
            return not self._feasible_quiet(facts, key)
        # Non-negative combination of two facts.
        if 2 <= len(key) <= _PAIR_FAST_PATH_LIMIT:
            if self._two_fact_combination(key, query):
                return True
        return None

    def _two_fact_combination(self, key: FactKey, query: LinExpr) -> bool:
        """Whether ``query = a*f1 + b*f2 + c`` with ``a, b, c >= 0`` exactly.

        Sound but deliberately incomplete: only facts whose support is
        contained in the query's support are considered, so no cancellation
        between the two facts is explored.
        """
        qmap = dict(query.coeff_items)
        qvars = set(qmap)
        candidates = [fact for fact in key
                      if all(var in qvars for var, _ in fact.coeff_items)]
        if len(candidates) < 2:
            return False
        for i, f1 in enumerate(candidates):
            m1 = dict(f1.coeff_items)
            for f2 in candidates[i + 1:]:
                m2 = dict(f2.coeff_items)
                solution = self._solve_pair(qmap, qvars, m1, m2)
                if solution is None:
                    continue
                a, b = solution
                slack = (query.const_term - a * f1.const_term
                         - b * f2.const_term)
                if slack >= 0:
                    return True
        return False

    @staticmethod
    def _solve_pair(qmap: Dict[str, Fraction], qvars: Iterable[str],
                    m1: Dict[str, Fraction],
                    m2: Dict[str, Fraction]) -> Optional[Tuple[Fraction, Fraction]]:
        """Solve ``a*m1 + b*m2 = qmap`` over all query variables, a, b >= 0."""
        variables = list(qvars)
        pivot = None
        for p, v1 in enumerate(variables):
            for v2 in variables[p + 1:]:
                det = (m1.get(v1, _ZERO) * m2.get(v2, _ZERO)
                       - m1.get(v2, _ZERO) * m2.get(v1, _ZERO))
                if det != 0:
                    pivot = (v1, v2, det)
                    break
            if pivot:
                break
        if pivot is None:
            return None
        v1, v2, det = pivot
        q1, q2 = qmap[v1], qmap[v2]
        a = (q1 * m2.get(v2, _ZERO) - q2 * m2.get(v1, _ZERO)) / det
        b = (m1.get(v1, _ZERO) * q2 - m1.get(v2, _ZERO) * q1) / det
        if a < 0 or b < 0:
            return None
        for var in variables:
            if a * m1.get(var, _ZERO) + b * m2.get(var, _ZERO) != qmap[var]:
                return None
        return a, b


# ---------------------------------------------------------------------------
# The interval pre-filter toggle
# ---------------------------------------------------------------------------
#
# The pre-filter is observational: every answer the interval tier decides
# equals the exact backend's answer, so toggling it changes *which tier*
# answers (and how fast), never *what* is answered.  The toggle is still
# plumbed like the domain -- env default, per-analysis override, job-hash
# participation -- so perfsmoke can compare the two configurations and the
# result store never conflates their provenance.

#: The process-wide pre-filter override; ``None`` = process default.
_ACTIVE_PREFILTER: Optional[bool] = None


def resolve_prefilter(value) -> bool:
    """Normalise a pre-filter setting (bool, ``"on"``/``"off"``, ``None``).

    ``None`` resolves to the *active* setting (mirroring
    :func:`resolve_domain`), so an analysis without an explicit choice
    inherits an enclosing :func:`use_prefilter` block or the process
    default.
    """
    if value is None:
        return active_prefilter()
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("on", "1", "true", "yes"):
            return True
        if lowered in ("off", "0", "false", "no"):
            return False
        raise ValueError(f"invalid pre-filter setting {value!r}; "
                         f"expected 'on' or 'off'")
    return bool(value)


def default_prefilter() -> bool:
    """The process-default pre-filter state: ``$REPRO_PREFILTER`` or on."""
    value = os.environ.get(PREFILTER_ENV)
    if value is None or not value.strip():
        return True
    return resolve_prefilter(value)


def active_prefilter() -> bool:
    """Whether the interval tier currently fronts the exact backends."""
    return (_ACTIVE_PREFILTER if _ACTIVE_PREFILTER is not None
            else default_prefilter())


def set_active_prefilter(enabled: Optional[bool]) -> bool:
    """Switch the pre-filter; returns the previously active state."""
    global _ACTIVE_PREFILTER
    previous = active_prefilter()
    _ACTIVE_PREFILTER = (resolve_prefilter(enabled)
                         if enabled is not None else None)
    return previous


@contextmanager
def use_prefilter(enabled: Optional[bool]) -> Iterator[bool]:
    """Run a block with the pre-filter forced on/off (restored on exit).

    The analyzer pipeline wraps each analysis in this (from
    ``AnalyzerConfig.prefilter``), mirroring :func:`use_domain`.
    """
    state = resolve_prefilter(enabled)
    global _ACTIVE_PREFILTER
    saved = _ACTIVE_PREFILTER
    _ACTIVE_PREFILTER = state
    try:
        yield state
    finally:
        _ACTIVE_PREFILTER = saved


# ---------------------------------------------------------------------------
# Backend registry and per-domain engines
# ---------------------------------------------------------------------------

def _polyhedra_backend() -> DomainBackend:
    from repro.logic.polyhedra import PolyhedraBackend

    return PolyhedraBackend()


#: Registered backend factories, keyed by domain name.
_BACKEND_FACTORIES: Dict[str, Callable[[], DomainBackend]] = {
    FM_DOMAIN: FourierMotzkinBackend,
    "polyhedra": _polyhedra_backend,
}

#: One engine per domain, created lazily.
_ENGINES: Dict[str, EntailmentEngine] = {}

#: The domain a bare ``get_engine()`` resolves to; ``None`` = process default.
_ACTIVE_DOMAIN: Optional[str] = None


def register_backend(name: str,
                     factory: Callable[[], DomainBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _BACKEND_FACTORIES[name] = factory


def available_domains() -> Tuple[str, ...]:
    """The selectable abstract-domain backends, default first."""
    names = sorted(_BACKEND_FACTORIES)
    names.remove(FM_DOMAIN)
    return (FM_DOMAIN, *names)


def default_domain() -> str:
    """The process-default domain: ``$REPRO_DOMAIN`` or ``fm``."""
    return os.environ.get(DOMAIN_ENV) or FM_DOMAIN


def resolve_domain(domain: Optional[str]) -> str:
    """Validate a domain name (``None`` = the active domain)."""
    name = domain if domain is not None else active_domain()
    if name not in _BACKEND_FACTORIES:
        raise ValueError(
            f"unknown abstract domain {name!r}; "
            f"available: {', '.join(available_domains())}")
    return name


def active_domain() -> str:
    """The domain bare ``get_engine()`` calls currently resolve to."""
    return _ACTIVE_DOMAIN if _ACTIVE_DOMAIN is not None else default_domain()


def set_active_domain(domain: Optional[str]) -> str:
    """Switch the active domain; returns the previously active name."""
    global _ACTIVE_DOMAIN
    previous = active_domain()
    _ACTIVE_DOMAIN = resolve_domain(domain) if domain is not None else None
    return previous


@contextmanager
def use_domain(domain: Optional[str]) -> Iterator[EntailmentEngine]:
    """Run a block with ``domain`` active (restored on exit).

    The analyzer pipeline wraps each analysis in this, so a per-job
    ``domain`` option cannot leak into the next job in the same process.
    """
    name = resolve_domain(domain)
    global _ACTIVE_DOMAIN
    saved = _ACTIVE_DOMAIN
    _ACTIVE_DOMAIN = name
    try:
        yield get_engine(name)
    finally:
        _ACTIVE_DOMAIN = saved


def get_engine(domain: Optional[str] = None) -> EntailmentEngine:
    """The process-wide engine of ``domain`` (default: the active domain)."""
    name = resolve_domain(domain)
    engine = _ENGINES.get(name)
    if engine is None:
        engine = EntailmentEngine(_BACKEND_FACTORIES[name]())
        _ENGINES[name] = engine
    return engine


def clear_cache(domain: Optional[str] = None) -> None:
    """Drop all cached entailment results (useful between experiments)."""
    get_engine(domain).clear()


def reset_stats(domain: Optional[str] = None) -> None:
    """Reset the hit/miss statistics of one process-wide engine."""
    get_engine(domain).reset_stats()


# -- per-process lifecycle hooks (used by repro.service.scheduler) ----------

def reset_engine(domain: Optional[str] = None) -> EntailmentEngine:
    """Install brand-new engine instances and return the active one.

    Worker processes call this from their initializer: a forked worker
    inherits the parent's engine objects, and fresh instances both drop
    that inherited state and guarantee that nothing the worker computes
    can leak back into (or appear to come from) the parent's caches.

    With a ``domain`` only that backend's engine is replaced; without one
    the whole registry is dropped (every backend starts cold), which is
    what a worker that may serve jobs of either domain wants.
    """
    if domain is not None:
        name = resolve_domain(domain)
        _ENGINES[name] = EntailmentEngine(_BACKEND_FACTORIES[name]())
        return _ENGINES[name]
    _ENGINES.clear()
    return get_engine()


def engine_stats(domain: Optional[str] = None) -> Dict[str, object]:
    """One engine's counters as a dict, including the per-tier breakdown.

    The ``tiers`` entry partitions answered queries by the tier that
    decided them (``memo`` -> ``syntactic`` -> ``interval`` -> ``exact``);
    ``prefilter`` records whether the interval tier is currently active.
    """
    data = get_engine(domain).stats.as_dict()
    data["prefilter"] = active_prefilter()
    return data


def engine_fingerprint(domain: Optional[str] = None) -> Dict[str, object]:
    """Identity + cache occupancy of one engine (for isolation tests)."""
    engine = get_engine(domain)
    return {
        "pid": os.getpid(),
        "domain": engine.domain,
        "engine_id": id(engine),
        "queries": engine.stats.queries,
        "eliminations": engine.stats.eliminations,
        "entails_entries": len(engine._entails_cache),
        "projection_entries": len(engine._projection_cache),
    }


def warm_engine(domain: Optional[str] = None) -> EntailmentEngine:
    """Pay per-process one-time costs up front; return the warm engine.

    Importing the LP stack and exercising one tiny end-to-end query moves
    module-import and first-touch costs out of the first real job, so
    per-job wall times measured in a worker are comparable to a warm
    sequential process.  The warm-up is backend-aware: the query runs
    through the *named* domain's engine (default: the active domain), so a
    worker pool configured for ``polyhedra`` jobs warms the polyhedra
    backend instead of silently warming the default one.
    """
    import repro.core.solver          # noqa: F401  (scipy import)
    import repro.lang.parser          # noqa: F401

    engine = get_engine(domain)
    x = LinExpr({"x": 1})
    engine.entails((x,), x)
    engine.clear()
    engine.reset_stats()
    return engine
