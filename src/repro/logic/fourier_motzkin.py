"""Exact linear arithmetic over rationals via Fourier-Motzkin elimination.

The analyzer needs two queries over conjunctions of linear inequalities
(each written ``e >= 0`` for a :class:`~repro.utils.linear.LinExpr` ``e``):

* *feasibility* -- is the conjunction satisfiable over the rationals?
* *minimisation* -- what is ``inf { obj(x) | constraints(x) }``?

Both are answered exactly with Fourier-Motzkin elimination, which is
exponential in the worst case but perfectly adequate for the small contexts
(a handful of inequalities over a handful of variables) produced by the
abstract interpreter.  Working over the rationals instead of the integers is
a sound relaxation: any lower bound valid for all rational models is valid
for all integer models.

The paper's implementation uses a Presburger decision procedure for the same
purpose; rational FM is the standard sound approximation.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.utils.linear import LinExpr


class Infeasible(Exception):
    """Raised internally when a constraint system is detected unsatisfiable."""


class Unbounded(Exception):
    """Raised when a minimisation problem has no finite lower bound."""


class ConstraintCapExceeded(MemoryError):
    """Elimination blew past :data:`MAX_CONSTRAINTS`.

    Subclasses :class:`MemoryError` so existing resource-exhaustion
    handlers (``Context.assign`` havocs the variable) keep working, while
    letting the service layer recognise the blowup specifically: the
    analysis pipeline reports it as the structured ``resource-limit``
    failure kind, and the scheduler's degradation ladder retries the job
    under the ``polyhedra`` backend, which answers the same queries without
    a cap.
    """


#: Safety cap on the number of constraints produced during elimination.
MAX_CONSTRAINTS = 20_000


def _normalise(constraint: LinExpr) -> Optional[LinExpr]:
    """Scale a constraint ``e >= 0`` to a canonical form; drop trivial ones.

    Returns ``None`` for constraints that are trivially true and raises
    :class:`Infeasible` for constraints that are trivially false.
    """
    if constraint.is_constant():
        if constraint.const_term < 0:
            raise Infeasible()
        return None
    # ``normalised`` divides by |lead|, a positive factor, so the direction of
    # the inequality is preserved and positive multiples of the same
    # constraint share one canonical form.
    _, canonical = constraint.normalised()
    return canonical


def _dedupe(constraints: Iterable[LinExpr]) -> List[LinExpr]:
    """Drop duplicates and constraints dominated by a syntactically equal lhs."""
    best: dict = {}
    for constraint in constraints:
        normalised = _normalise(constraint)
        if normalised is None:
            continue
        key = normalised.coeff_items
        current = best.get(key)
        # Same linear part: keep the *stronger* inequality (larger constant
        # means a weaker requirement on the variables... e + c >= 0 with the
        # smallest c is the strongest). Keep the smallest constant.
        if current is None or normalised.const_term < current.const_term:
            best[key] = normalised
    return list(best.values())


def eliminate_variable(constraints: Sequence[LinExpr], var: str) -> List[LinExpr]:
    """Project the polyhedron ``{x | all e >= 0}`` onto the other variables."""
    lowers: List[Tuple[LinExpr, Fraction]] = []   # coeff of var > 0: lower bounds
    uppers: List[Tuple[LinExpr, Fraction]] = []   # coeff of var < 0: upper bounds
    others: List[LinExpr] = []
    for constraint in constraints:
        coeff = constraint.coefficient(var)
        if coeff > 0:
            lowers.append((constraint, coeff))
        elif coeff < 0:
            uppers.append((constraint, -coeff))
        else:
            others.append(constraint)
    result = list(others)
    for low, low_coeff in lowers:
        for high, high_coeff in uppers:
            combined = low * high_coeff + high * low_coeff
            # ``combined`` no longer mentions ``var``.
            result.append(combined)
            if len(result) > MAX_CONSTRAINTS:
                raise ConstraintCapExceeded(
                    "Fourier-Motzkin elimination exceeded the constraint cap")
    return _dedupe(result)


def eliminate_all(constraints: Sequence[LinExpr],
                  keep: Sequence[str] = ()) -> List[LinExpr]:
    """Eliminate every variable not listed in ``keep``."""
    current = _dedupe(constraints)
    variables: List[str] = []
    for constraint in current:
        for var in constraint.variables():
            if var not in variables and var not in keep:
                variables.append(var)
    # Eliminate variables appearing in the fewest constraints first; this is a
    # standard heuristic that keeps intermediate systems small.
    while variables:
        variables.sort(key=lambda v: sum(1 for c in current if c.coefficient(v) != 0))
        var = variables.pop(0)
        current = eliminate_variable(current, var)
        variables = [v for v in variables
                     if any(c.coefficient(v) != 0 for c in current)]
    return current


def is_feasible(constraints: Sequence[LinExpr]) -> bool:
    """Whether the conjunction of ``e >= 0`` constraints is satisfiable."""
    try:
        eliminate_all(constraints)
    except Infeasible:
        return False
    return True


def minimize(objective: LinExpr, constraints: Sequence[LinExpr]) -> Fraction:
    """Return ``inf { objective(x) | constraints }`` exactly.

    Raises :class:`Infeasible` if the constraint set is unsatisfiable and
    :class:`Unbounded` if the objective has no finite lower bound.
    """
    if objective.is_constant():
        if not is_feasible(constraints):
            raise Infeasible()
        return objective.const_term
    goal_var = "__objective__"
    while any(goal_var in c.variables() for c in constraints) \
            or goal_var in objective.variables():
        goal_var += "_"
    goal = LinExpr.var(goal_var)
    system = list(constraints)
    system.append(goal - objective)      # goal - objective >= 0
    system.append(objective - goal)      # objective - goal >= 0
    projected = eliminate_all(system, keep=(goal_var,))
    lower_bounds: List[Fraction] = []
    for constraint in projected:
        coeff = constraint.coefficient(goal_var)
        if coeff > 0:
            # coeff * goal + rest >= 0  =>  goal >= -rest / coeff
            lower_bounds.append(-constraint.const_term / coeff)
        elif coeff == 0 and constraint.const_term < 0:
            raise Infeasible()
    if not lower_bounds:
        raise Unbounded()
    return max(lower_bounds)


def maximize(objective: LinExpr, constraints: Sequence[LinExpr]) -> Fraction:
    """Return ``sup { objective(x) | constraints }`` exactly (see :func:`minimize`)."""
    return -minimize(-objective, constraints)


def entails(constraints: Sequence[LinExpr], fact: LinExpr) -> bool:
    """Whether ``constraints |= fact >= 0`` (over the rationals)."""
    try:
        lowest = minimize(fact, constraints)
    except Infeasible:
        return True
    except Unbounded:
        return False
    return lowest >= 0


def greatest_lower_bound(constraints: Sequence[LinExpr],
                         expression: LinExpr) -> Optional[Fraction]:
    """The largest constant ``c`` with ``constraints |= expression >= c``.

    Returns ``None`` when no finite lower bound exists.  An unsatisfiable
    context entails everything; by convention we return ``None`` in that case
    as well (callers treat unreachable code separately).
    """
    try:
        return minimize(expression, constraints)
    except (Infeasible, Unbounded):
        return None
