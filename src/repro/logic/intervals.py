"""A sound, exact per-variable bounds domain: the cheap first tier.

Most entailment queries the analyzer asks on the paper's benchmarks are
decidable from variable *bounds* alone (``x >= 1 && x <= n`` style
contexts dominate).  This module derives an :class:`IntervalBox` -- one
``[low, high]`` interval per variable, ``Fraction``-exact -- from a
context's facts in a single linear scan, and offers ``entails`` /
``is_satisfiable`` / ``glb`` *deciders* that answer **only when bounds
alone provably give the exact backend's answer** and return
:data:`UNDECIDED` otherwise.

That "decided answers equal the exact answer" discipline is what lets the
:class:`~repro.logic.entailment.EntailmentEngine` front both exact
backends (Fourier-Motzkin and the DD polyhedra) with this tier and still
keep the registry-wide byte-identity invariant: memo caches can be shared
between pre-filter on and off because a decided answer never differs from
the cold one.  Concretely:

* only *single-variable* facts ``a*x + c >= 0`` contribute bounds; the
  box therefore always **contains** the context's region (it is a sound
  over-approximation), and the multi-variable leftovers are kept as the
  ``residual`` facts;
* when every fact is single-variable the box *is* the region
  (``exact``), so interval evaluation is the exact optimum;
* a crossed interval (``low > high``) proves the context infeasible
  outright, since the bounds are consequences of the actual facts;
* a box optimum is attained at a *corner*; when that corner (completed
  with arbitrary in-bounds values for the remaining variables) also
  satisfies every residual fact, it is a genuine point of the region --
  a **witness** that the box optimum is the exact optimum even though
  the box over-approximates.

The decision rules (see each method) use only those facts, so every
decided answer is a theorem about the exact region --
``tests/test_domain_differential.py`` checks this against both exact
backends over randomized systems.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Optional, Tuple

from repro.utils.linear import LinExpr

_ZERO = Fraction(0)

#: Sentinel returned by the deciders when bounds alone cannot answer.
#: Distinct from ``None`` because ``glb`` legitimately *decides* ``None``
#: (the engine's "no finite greatest lower bound" convention).
UNDECIDED = object()

#: One bound pair: ``None`` means unbounded in that direction.
Bounds = Tuple[Optional[Fraction], Optional[Fraction]]

#: Bound-propagation rounds over the residual facts.  Chains longer than
#: this stay undecided (sound); the cap keeps construction linear-ish.
_PROPAGATION_ROUNDS = 4


class IntervalBox:
    """Per-variable bounds harvested from ``e >= 0`` facts.

    ``bounds`` maps each mentioned variable to ``(low, high)`` with
    ``None`` for a missing bound.  ``exact`` records that *every* fact was
    single-variable, i.e. the box equals the context's region instead of
    merely containing it; otherwise ``residual`` holds the multi-variable
    facts the box dropped (used for witness-point checks).  ``infeasible``
    records a crossed interval, which proves the *context* (not just the
    box) unsatisfiable.
    """

    __slots__ = ("bounds", "residual", "exact", "infeasible")

    def __init__(self, bounds: Dict[str, Bounds],
                 residual: Tuple[LinExpr, ...], exact: bool,
                 infeasible: bool) -> None:
        self.bounds = bounds
        self.residual = residual
        self.exact = exact
        self.infeasible = infeasible

    # -- construction ------------------------------------------------------

    @classmethod
    def from_facts(cls, facts: Iterable[LinExpr]) -> "IntervalBox":
        """One linear scan: fold every single-variable fact into a bound."""
        bounds: Dict[str, Bounds] = {}
        residual = []
        exact = True
        infeasible = False
        for fact in facts:
            items = fact.coeff_items
            if not items:
                if fact.const_term < 0:
                    infeasible = True
                continue
            if len(items) != 1:
                exact = False
                residual.append(fact)
                continue
            (var, coeff), = items
            # a*x + c >= 0  <=>  x >= -c/a (a > 0)  |  x <= -c/a (a < 0).
            value = -fact.const_term / coeff
            low, high = bounds.get(var, (None, None))
            if coeff > 0:
                if low is None or value > low:
                    low = value
            else:
                if high is None or value < high:
                    high = value
            if low is not None and high is not None and low > high:
                infeasible = True
            bounds[var] = (low, high)
        box = cls(bounds, tuple(residual), exact, infeasible)
        if residual and not infeasible:
            box._propagate()
        return box

    def _propagate(self, rounds: int = _PROPAGATION_ROUNDS) -> None:
        """Tighten the box with bounds implied by the residual facts.

        For a fact ``a_v*v + S >= 0`` (``S`` the rest of the fact) every
        region point satisfies ``a_v*v >= -S >= -max(S)``, so the box
        maximum of ``S`` yields a bound on ``v`` that is a *consequence*
        of the facts -- the tightened box still contains the region, and
        witness completion stays valid because the deciders re-check the
        residual facts pointwise.  A few rounds let bounds flow through
        chains of facts; a crossed result proves the context infeasible.
        """
        for _ in range(rounds):
            changed = False
            for fact in self.residual:
                items = fact.coeff_items
                for var, coeff in items:
                    rest = fact.const_term
                    for other, other_coeff in items:
                        if other == var:
                            continue
                        low, high = self.bounds.get(other, (None, None))
                        bound = high if other_coeff > 0 else low
                        if bound is None:
                            rest = None
                            break
                        rest += other_coeff * bound
                    if rest is None:
                        continue
                    value = -rest / coeff
                    low, high = self.bounds.get(var, (None, None))
                    if coeff > 0:
                        if low is None or value > low:
                            low, changed = value, True
                    else:
                        if high is None or value < high:
                            high, changed = value, True
                    if low is not None and high is not None and low > high:
                        self.infeasible = True
                        return
                    self.bounds[var] = (low, high)
            if not changed:
                return

    # -- interval evaluation -----------------------------------------------

    def minimum(self, expression: LinExpr) -> Optional[Fraction]:
        """Exact minimum of ``expression`` over the box; ``None`` = -inf.

        For a linear function over a product of intervals the minimum is
        attained coordinate-wise: the lower bound where the coefficient is
        positive, the upper bound where it is negative.  A missing bound
        in a needed direction makes the minimum ``-inf``.
        """
        total = expression.const_term
        for var, coeff in expression.coeff_items:
            low, high = self.bounds.get(var, (None, None))
            bound = low if coeff > 0 else high
            if bound is None:
                return None
            total += coeff * bound
        return total

    # -- witness points ----------------------------------------------------

    def _corner(self, expression: LinExpr) -> Dict[str, Fraction]:
        """The box corner attaining ``minimum(expression)``.

        Only valid when that minimum is finite (every needed bound
        exists); the caller checks.
        """
        point: Dict[str, Fraction] = {}
        for var, coeff in expression.coeff_items:
            low, high = self.bounds.get(var, (None, None))
            point[var] = low if coeff > 0 else high  # type: ignore[assignment]
        return point

    def _witnessed(self, point: Dict[str, Fraction]) -> bool:
        """Whether ``point`` extends to a genuine point of the region.

        Variables not pinned by ``point`` get an in-bounds value chosen
        greedily: the bound that helps the fact being evaluated (upper for
        a positive coefficient, lower for a negative one), else zero
        clamped into the interval.  Any in-bounds choice satisfies every
        single-variable fact by construction; the residual multi-variable
        facts are then evaluated exactly.  ``True`` proves the completed
        point lies in the region, so any box optimum it attains is the
        region's optimum -- the over-approximation gap is closed from the
        inside.  ``False`` only means *this* completion missed: the
        deciders fall back to :data:`UNDECIDED`, never to a wrong answer.
        """
        for fact in self.residual:
            total = fact.const_term
            for var, coeff in fact.coeff_items:
                value = point.get(var)
                if value is None:
                    low, high = self.bounds.get(var, (None, None))
                    preferred = high if coeff > 0 else low
                    if preferred is not None:
                        value = preferred
                    elif low is not None and low > 0:
                        value = low
                    elif high is not None and high < 0:
                        value = high
                    else:
                        value = _ZERO
                    point[var] = value
                total += coeff * value
            if total < 0:
                return False
        return True

    # -- unboundedness certificates ----------------------------------------

    def _halfspace_glb(self, expression: LinExpr):
        """Complete glb decision for a single-fact, bounds-free context.

        When the only residual fact is ``a.x + c >= 0`` and no involved
        variable carries a bound, the region restricted to those
        coordinates is a full halfspace: the minimum of ``expression`` is
        finite iff its linear part is ``ratio * a`` with ``ratio >= 0``
        (then ``const - ratio*c``, attained on the boundary); otherwise a
        direction with ``a.d >= 0`` and ``expression.d < 0`` exists -- a
        free coordinate, the sliding direction of a non-proportional form,
        or ``a`` itself for a negative multiple -- so the glb is the
        engine's unbounded ``None``.  Returns :data:`UNDECIDED` when the
        shape conditions do not hold.
        """
        if len(self.residual) != 1:
            return UNDECIDED
        fact = self.residual[0]
        coeffs = dict(fact.coeff_items)
        involved = set(coeffs)
        involved.update(var for var, _ in expression.coeff_items)
        for var in involved:
            if self.bounds.get(var, (None, None)) != (None, None):
                return UNDECIDED
        ratio: Optional[Fraction] = None
        matched = 0
        for var, coeff in expression.coeff_items:
            base = coeffs.get(var)
            if base is None:
                return None  # free coordinate: unbounded below
            matched += 1
            current = coeff / base
            if ratio is None:
                ratio = current
            elif current != ratio:
                return None  # independent form: slide along the boundary
        if ratio is None:
            return UNDECIDED  # constant expression: not this tier's call
        if matched != len(coeffs):
            # A fact variable the expression lacks: the forms are
            # independent, so the boundary has a sliding direction.
            return None
        if ratio < 0:
            return None  # the fact's own normal is a decreasing ray
        return expression.const_term - ratio * fact.const_term

    def _unbounded_below(self, expression: LinExpr) -> bool:
        """A coordinate recession ray along which ``expression`` decreases.

        The direction ``-e_v`` (for ``coeff_v > 0``; ``+e_v`` mirrored)
        recedes in every fact when ``v`` has no bound on that side and
        every residual fact's ``v`` coefficient points the right way.  The
        caller must separately establish the region is non-empty before
        concluding the minimum is ``-inf``.
        """
        for var, coeff in expression.coeff_items:
            low, high = self.bounds.get(var, (None, None))
            if (low if coeff > 0 else high) is not None:
                continue
            if all((fcoeff <= 0 if coeff > 0 else fcoeff >= 0)
                   for fact in self.residual
                   for fvar, fcoeff in fact.coeff_items if fvar == var):
                return True
        return False

    # -- deciders ----------------------------------------------------------

    def entails(self, query: LinExpr):
        """``region |= query >= 0``: ``True``/``False`` or :data:`UNDECIDED`.

        * infeasible box => the *context* is unsatisfiable and entails
          everything: decide ``True``;
        * box minimum ``>= 0`` => the region is inside the box, so its
          minimum is at least as large: decide ``True`` (sound even when
          the box over-approximates);
        * box minimum ``< 0`` (or ``-inf``) decides ``False`` when the box
          is ``exact`` (the box minimum *is* the region minimum) or when
          the minimising corner is a witness -- a genuine region point
          where the query goes negative; otherwise the region could still
          avoid the violating corner, so the answer is :data:`UNDECIDED`.
        """
        if self.infeasible:
            return True
        minimum = self.minimum(query)
        if minimum is not None and minimum >= 0:
            return True
        if self.exact:
            return False
        if minimum is not None:
            if self._witnessed(self._corner(query)):
                return False
            return UNDECIDED
        value = self._halfspace_glb(query)
        if value is None:
            return False  # unbounded below over a non-empty halfspace
        if value is not UNDECIDED:
            return value >= 0
        if self._unbounded_below(query) and self._witnessed({}):
            return False
        return UNDECIDED

    def is_satisfiable(self):
        """Feasibility of the context: ``True``/``False`` or :data:`UNDECIDED`.

        An infeasible box proves the context unsatisfiable; an exact box
        (never crossed) is itself a non-empty region; otherwise any
        witness point proves satisfiability.
        """
        if self.infeasible:
            return False
        if self.exact:
            return True
        if self._witnessed({}):
            return True
        return UNDECIDED

    def glb(self, expression: LinExpr):
        """Greatest lower bound of ``expression`` under the context.

        The engine's callers use the *value*, so a merely-sound bound
        would be wrong: decided only when the box minimum provably equals
        the region minimum.  That holds when the box is ``exact``, and
        when the minimising corner is a witness: the box minimum is a
        lower bound on the region's (box contains region) and the witness
        attains it from inside.  An infeasible context decides the
        engine's ``None`` convention.
        """
        if self.infeasible:
            return None
        minimum = self.minimum(expression)
        if self.exact:
            return minimum
        if minimum is None:
            value = self._halfspace_glb(expression)
            if value is not UNDECIDED:
                return value
            if self._unbounded_below(expression) and self._witnessed({}):
                return None  # -inf: no finite greatest lower bound
            return UNDECIDED
        if self._witnessed(self._corner(expression)):
            return minimum
        return UNDECIDED

    def __repr__(self) -> str:
        if self.infeasible:
            return "IntervalBox(infeasible)"
        inner = ", ".join(
            f"{var} in [{low if low is not None else '-inf'}, "
            f"{high if high is not None else 'inf'}]"
            for var, (low, high) in sorted(self.bounds.items()))
        return (f"IntervalBox({inner or 'top'}"
                f"{', exact' if self.exact else ''})")
