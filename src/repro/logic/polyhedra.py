"""Exact rational polyhedra: the second abstract-domain backend.

This module implements a convex-polyhedra abstract domain in the style of
the Apron/PPL libraries, entirely over :class:`fractions.Fraction` so every
answer is exact (no widening-by-rounding, no floating point anywhere):

* a :class:`Polyhedron` keeps the classic *dual representation*: the
  constraint side (a conjunction of ``e >= 0`` facts) and the generator
  side (lines, rays and vertices of the homogenised cone), converted into
  each other with the double description method (Chernikova's algorithm
  with the Fukuda-Prodon combinatorial adjacency test, which performs the
  redundancy elimination: only extreme rays / facet-defining inequalities
  survive a conversion);
* decision queries (emptiness, entailment, exact minimisation) are answered
  on the generator side -- a linear function is minimised over a polyhedron
  by evaluating it on finitely many generators;
* projection drops coordinates on the generator side (the projection of the
  generators generates the projection) and converts back to a *canonical
  minimal* constraint system: implicit equalities come out as a reduced
  row-echelon basis, inequalities are reduced modulo that basis, normalised
  and sorted.

:class:`PolyhedraBackend` adapts the domain to the
:class:`~repro.logic.entailment.EntailmentEngine` backend interface, caching
one constructed polyhedron per context so repeated queries against the same
context cost one generator enumeration in total.  Select it with
``--domain polyhedra`` (or ``REPRO_DOMAIN=polyhedra``); the Fourier-Motzkin
backend remains the default.  Both backends are exact, so every decision
query must agree -- ``tests/test_domain_differential.py`` asserts exactly
that over randomized inequality systems.
"""

from __future__ import annotations

from fractions import Fraction
from functools import reduce
from math import gcd
from typing import (Dict, FrozenSet, Iterable, List, Optional, Sequence,
                    Set, Tuple)

from repro.logic import fourier_motzkin as fm
from repro.utils.linear import LinExpr

Vector = Tuple[Fraction, ...]

_ZERO = Fraction(0)
_ONE = Fraction(1)


# ---------------------------------------------------------------------------
# Exact vector helpers
# ---------------------------------------------------------------------------

def _dot(a: Vector, b: Vector) -> Fraction:
    return sum((x * y for x, y in zip(a, b)), _ZERO)


def _unit(dim: int, index: int) -> Vector:
    return tuple(_ONE if i == index else _ZERO for i in range(dim))


def _primitive(vector: Sequence[Fraction]) -> Vector:
    """Scale to the unique coprime-integer representative (sign preserved).

    Primitive vectors keep coefficients small across repeated combinations
    and make generator/constraint representatives canonical.
    """
    denominator = reduce(lambda acc, value: acc * value.denominator // gcd(
        acc, value.denominator), vector, 1)
    integers = [int(value * denominator) for value in vector]
    common = reduce(gcd, (abs(value) for value in integers), 0)
    if common in (0, 1):
        return tuple(Fraction(value) for value in integers)
    return tuple(Fraction(value // common) for value in integers)


def _combine(a: Vector, ca: Fraction, b: Vector, cb: Fraction) -> Vector:
    return tuple(ca * x + cb * y for x, y in zip(a, b))


# ---------------------------------------------------------------------------
# The double description method (Chernikova)
# ---------------------------------------------------------------------------

def double_description(dim: int, constraints: Sequence[Vector]
                       ) -> Tuple[List[Vector], List[Vector]]:
    """Generators ``(lines, rays)`` of ``{y : a . y >= 0 for a in constraints}``.

    Starts from the full space (``dim`` lines, no rays) and adds one
    halfspace at a time.  While a line violates the new constraint the
    lineality is pivoted down; once every line saturates it, rays are split
    by sign and adjacent positive/negative pairs are combined (Chernikova's
    step).  Adjacency uses the Fukuda-Prodon combinatorial test on the
    saturation sets, so only *extreme* rays are ever kept -- this is the
    redundancy elimination that makes conversions canonical.
    """
    lines: List[Vector] = [_unit(dim, i) for i in range(dim)]
    rays: List[Vector] = []
    saturated: List[Set[int]] = []          # per ray: saturated constraint ids
    for index, constraint in enumerate(constraints):
        line_products = [_dot(constraint, line) for line in lines]
        pivot = next((i for i, value in enumerate(line_products) if value != 0),
                     None)
        if pivot is not None:
            # A line leaves the constraint's hyperplane: the lineality drops
            # by one.  Every other generator is shifted along the pivot line
            # into the hyperplane; the pivot line itself survives as the one
            # ray pointing into the halfspace.
            pivot_line = lines.pop(pivot)
            pivot_value = line_products.pop(pivot)
            if pivot_value < 0:
                pivot_line = tuple(-x for x in pivot_line)
                pivot_value = -pivot_value
            lines = [_primitive(_combine(line, _ONE,
                                         pivot_line, -value / pivot_value))
                     if value != 0 else line
                     for line, value in zip(lines, line_products)]
            new_rays: List[Vector] = []
            for ray, sat in zip(rays, saturated):
                value = _dot(constraint, ray)
                if value != 0:
                    ray = _primitive(_combine(ray, _ONE,
                                              pivot_line, -value / pivot_value))
                new_rays.append(ray)
                sat.add(index)
            # The pivot line saturates every earlier constraint (all lines
            # do, inductively) but not this one.
            new_rays.append(pivot_line)
            saturated.append(set(range(index)))
            rays = new_rays
            continue
        products = [_dot(constraint, ray) for ray in rays]
        if all(value >= 0 for value in products):
            for sat, value in zip(saturated, products):
                if value == 0:
                    sat.add(index)
            continue
        positive = [i for i, value in enumerate(products) if value > 0]
        zero = [i for i, value in enumerate(products) if value == 0]
        negative = [i for i, value in enumerate(products) if value < 0]
        next_rays: List[Vector] = [rays[i] for i in positive]
        next_sat: List[Set[int]] = [saturated[i] for i in positive]
        for i in zero:
            next_rays.append(rays[i])
            next_sat.append(saturated[i] | {index})
        for p in positive:
            for n in negative:
                common = saturated[p] & saturated[n]
                if not _adjacent(p, n, common, saturated):
                    continue
                combined = _primitive(_combine(rays[n], products[p],
                                               rays[p], -products[n]))
                next_rays.append(combined)
                next_sat.append(common | {index})
        rays = next_rays
        saturated = next_sat
    return lines, rays


def _adjacent(p: int, n: int, common: Set[int],
              saturated: Sequence[Set[int]]) -> bool:
    """Fukuda-Prodon: extreme-ray pair iff no third ray saturates ``common``."""
    for h, sat in enumerate(saturated):
        if h != p and h != n and common <= sat:
            return False
    return True


# ---------------------------------------------------------------------------
# Canonicalisation of constraint output
# ---------------------------------------------------------------------------

def _row_echelon(rows: List[Vector]) -> List[Vector]:
    """Reduced row-echelon form over the column order (primitive rows)."""
    basis: List[Vector] = []
    width = len(rows[0]) if rows else 0
    work = [list(row) for row in rows]
    pivot_row = 0
    for column in range(width):
        chosen = next((r for r in range(pivot_row, len(work))
                       if work[r][column] != 0), None)
        if chosen is None:
            continue
        work[pivot_row], work[chosen] = work[chosen], work[pivot_row]
        lead = work[pivot_row][column]
        work[pivot_row] = [value / lead for value in work[pivot_row]]
        for r in range(len(work)):
            if r != pivot_row and work[r][column] != 0:
                factor = work[r][column]
                work[r] = [value - factor * pivot for value, pivot
                           in zip(work[r], work[pivot_row])]
        pivot_row += 1
        if pivot_row == len(work):
            break
    for row in work[:pivot_row]:
        basis.append(_primitive(row))
    return basis


def _reduce_modulo(vector: Vector, basis: Sequence[Vector]) -> Vector:
    """Reduce ``vector`` by the echelon ``basis`` (canonical representative)."""
    values = list(vector)
    for row in basis:
        pivot_col = next(i for i, value in enumerate(row) if value != 0)
        if values[pivot_col] != 0:
            factor = values[pivot_col] / row[pivot_col]
            values = [value - factor * pivot for value, pivot
                      in zip(values, row)]
    return _primitive(values)


# ---------------------------------------------------------------------------
# The polyhedron
# ---------------------------------------------------------------------------

class Polyhedron:
    """A closed convex rational polyhedron in generator representation.

    Coordinates are the sorted variable names plus a final homogenising
    coordinate ``t``: the polyhedron is the ``t = 1`` slice of the cone
    spanned by ``lines`` and ``rays``; rays with ``t > 0`` are (scaled)
    vertices, rays with ``t = 0`` are recession directions.
    """

    __slots__ = ("variables", "lines", "rays")

    def __init__(self, variables: Tuple[str, ...], lines: List[Vector],
                 rays: List[Vector]) -> None:
        self.variables = variables
        self.lines = lines
        self.rays = rays

    # -- construction ------------------------------------------------------

    @classmethod
    def from_facts(cls, facts: Iterable[LinExpr]) -> "Polyhedron":
        """The polyhedron ``{x : e(x) >= 0 for every fact e}``."""
        cleaned: List[LinExpr] = []
        infeasible = False
        for fact in facts:
            if fact.is_constant():
                if fact.const_term < 0:
                    infeasible = True
                continue
            _, canonical = fact.normalised()
            cleaned.append(canonical)
        names = sorted({var for fact in cleaned for var in fact.variables()})
        variables = tuple(names)
        dim = len(variables) + 1
        if infeasible:
            return cls(variables, [], [])
        column = {var: i for i, var in enumerate(variables)}
        vectors: List[Vector] = [_unit(dim, dim - 1)]        # t >= 0 first
        for fact in sorted(set(cleaned), key=LinExpr.sort_key):
            row = [_ZERO] * dim
            for var, coeff in fact.coeff_items:
                row[column[var]] = coeff
            row[dim - 1] = fact.const_term
            vectors.append(_primitive(row))
        lines, rays = double_description(dim, vectors)
        return cls(variables, lines, rays)

    # -- basic queries -----------------------------------------------------

    def is_empty(self) -> bool:
        """No generator with a positive homogenising coordinate: no point."""
        return not any(ray[-1] > 0 for ray in self.rays)

    def _objective_vector(self, expression: LinExpr) -> Optional[Vector]:
        """``expression`` as a coordinate vector; None if it mentions an
        unconstrained variable (one this polyhedron says nothing about)."""
        column = {var: i for i, var in enumerate(self.variables)}
        row = [_ZERO] * (len(self.variables) + 1)
        for var, coeff in expression.coeff_items:
            if var not in column:
                return None
            row[column[var]] = coeff
        row[-1] = expression.const_term
        return tuple(row)

    def minimize(self, expression: LinExpr) -> Fraction:
        """``inf { expression(x) | x in self }`` exactly.

        Raises :class:`~repro.logic.fourier_motzkin.Infeasible` on the empty
        polyhedron and :class:`~repro.logic.fourier_motzkin.Unbounded` when
        the infimum is ``-inf``.
        """
        if self.is_empty():
            raise fm.Infeasible()
        vector = self._objective_vector(expression)
        if vector is None:
            # A variable the polyhedron does not constrain: the value can be
            # pushed to -inf along that free coordinate.
            raise fm.Unbounded()
        linear = vector[:-1] + (_ZERO,)     # drop the constant for directions
        for line in self.lines:
            if _dot(linear, line) != 0:
                raise fm.Unbounded()
        best: Optional[Fraction] = None
        for ray in self.rays:
            value = _dot(linear, ray)
            if ray[-1] == 0:
                if value < 0:
                    raise fm.Unbounded()
                continue
            vertex_value = value / ray[-1] + expression.const_term
            if best is None or vertex_value < best:
                best = vertex_value
        assert best is not None     # non-empty => at least one vertex
        return best

    def entails(self, fact: LinExpr) -> bool:
        """Whether every point satisfies ``fact >= 0``."""
        try:
            return self.minimize(fact) >= 0
        except fm.Infeasible:
            return True
        except fm.Unbounded:
            return False

    def contains(self, state: Dict[str, Fraction]) -> bool:
        """Membership of a concrete point (used by the differential tests)."""
        if self.is_empty():
            return False
        facts = self.constraints()
        return all(fact.evaluate(state) >= 0 for fact in facts)

    # -- conversions -------------------------------------------------------

    def extend(self, variables: Iterable[str]) -> "Polyhedron":
        """Embed into the space over ``variables`` (a superset of ours).

        New coordinates are unconstrained: each is added as a full line,
        and existing generators get zero entries in the new columns.
        """
        names = sorted(set(variables) | set(self.variables))
        if tuple(names) == self.variables:
            return self
        column = {var: i for i, var in enumerate(self.variables)}
        dim = len(names) + 1
        positions = [column.get(var) for var in names] + [len(self.variables)]

        def grow(vector: Vector) -> Vector:
            return tuple(_ZERO if source is None else vector[source]
                         for source in positions)

        lines = [grow(line) for line in self.lines]
        lines.extend(_unit(dim, i) for i, var in enumerate(names)
                     if var not in column)
        return Polyhedron(tuple(names), lines,
                          [grow(ray) for ray in self.rays])

    def assign(self, var: str, rhs: LinExpr, low_shift: Fraction = _ZERO,
               high_shift: Fraction = _ZERO) -> "Polyhedron":
        """Image under ``var := rhs + [low_shift, high_shift]`` -- no FM.

        The affine substitution is applied to the generators directly (the
        image of a polyhedron's generators generates the image), then the
        nondeterministic shift is a Minkowski sum with the segment
        ``[low_shift, high_shift]`` along the ``var`` axis: each vertex
        splits into its two shifted endpoints, recession rays and lines
        pass through the (shift-invariant) linear part unchanged.
        """
        extended = self.extend(set(rhs.variables()) | {var})
        names = extended.variables
        index = names.index(var)
        column = {name: i for i, name in enumerate(names)}
        coeffs = [(column[name], coeff) for name, coeff in rhs.coeff_items]
        constant = rhs.const_term

        def image(vector: Vector) -> Vector:
            # The homogenising coordinate scales the constant term; for
            # lines and recession rays it is zero, so they map linearly.
            value = sum((coeff * vector[i] for i, coeff in coeffs), _ZERO)
            value += constant * vector[-1]
            return vector[:index] + (value,) + vector[index + 1:]

        lines = []
        seen: Set[Vector] = set()
        for line in extended.lines:
            mapped = _primitive(image(line))
            if any(value != 0 for value in mapped) and mapped not in seen \
                    and tuple(-v for v in mapped) not in seen:
                seen.add(mapped)
                lines.append(mapped)
        rays = []
        seen_rays: Set[Vector] = set()
        for ray in extended.rays:
            mapped = image(ray)
            shifts = ({low_shift, high_shift} if ray[-1] > 0 else {_ZERO})
            for shift in shifts:
                shifted = mapped[:index] \
                    + (mapped[index] + shift * ray[-1],) \
                    + mapped[index + 1:]
                small = _primitive(shifted)
                if any(value != 0 for value in small) \
                        and small not in seen_rays:
                    seen_rays.add(small)
                    rays.append(small)
        return Polyhedron(names, lines, rays)

    def project(self, keep: Iterable[str]) -> "Polyhedron":
        """Project onto the ``keep`` variables (generator-side: drop columns)."""
        keep_set = set(keep)
        kept = tuple(var for var in self.variables if var in keep_set)
        columns = [i for i, var in enumerate(self.variables)
                   if var in keep_set] + [len(self.variables)]

        def shrink(vector: Vector) -> Vector:
            return tuple(vector[i] for i in columns)

        lines = []
        seen: Set[Vector] = set()
        for line in self.lines:
            small = _primitive(shrink(line))
            if any(value != 0 for value in small) and small not in seen \
                    and tuple(-v for v in small) not in seen:
                seen.add(small)
                lines.append(small)
        rays = []
        seen_rays: Set[Vector] = set()
        for ray in self.rays:
            small = _primitive(shrink(ray))
            if any(value != 0 for value in small) and small not in seen_rays:
                seen_rays.add(small)
                rays.append(small)
        return Polyhedron(kept, lines, rays)

    def constraints(self) -> Tuple[LinExpr, ...]:
        """The canonical minimal constraint system (``e >= 0`` facts).

        Runs the double description method on the polar side: the facets of
        this polyhedron are the extreme rays of the dual cone
        ``{a : a . l = 0, a . r >= 0}``.  Implicit equalities surface as the
        dual cone's lineality and are emitted as a reduced-row-echelon basis
        (each equality as a ``+e``/``-e`` fact pair); inequalities are
        reduced modulo that basis, made primitive and sorted, so equal
        polyhedra yield byte-identical constraint tuples.

        Raises :class:`~repro.logic.fourier_motzkin.Infeasible` on the empty
        polyhedron (it has no finite constraint representation here).
        """
        if self.is_empty():
            raise fm.Infeasible()
        dim = len(self.variables) + 1
        dual_constraints: List[Vector] = []
        for line in sorted(self.lines):
            dual_constraints.append(line)
            dual_constraints.append(tuple(-value for value in line))
        dual_constraints.extend(sorted(self.rays))
        dual_lines, dual_rays = double_description(dim, dual_constraints)
        basis = _row_echelon(list(dual_lines))
        facts: List[LinExpr] = []
        for row in basis:
            expr = self._expr_from(row)
            if expr is None:
                continue        # t = 0 cannot arise on a non-empty polyhedron
            facts.append(expr)
            facts.append(-expr)
        inequalities: Set[LinExpr] = set()
        for ray in dual_rays:
            reduced = _reduce_modulo(ray, basis)
            expr = self._expr_from(reduced)
            if expr is not None:
                inequalities.add(expr)
        facts.extend(sorted(inequalities, key=LinExpr.sort_key))
        return tuple(facts)

    def _expr_from(self, vector: Vector) -> Optional[LinExpr]:
        coeffs = {var: value for var, value
                  in zip(self.variables, vector[:-1]) if value != 0}
        if not coeffs:
            return None          # the trivial ``t >= 0`` / constant facet
        return LinExpr(coeffs, vector[-1])

    def __repr__(self) -> str:
        if self.is_empty():
            return "Polyhedron(empty)"
        return (f"Polyhedron(vars={list(self.variables)}, "
                f"lines={len(self.lines)}, rays={len(self.rays)})")


# ---------------------------------------------------------------------------
# The EntailmentEngine backend
# ---------------------------------------------------------------------------

def canonical_constraints(facts: Iterable[LinExpr]) -> Tuple[LinExpr, ...]:
    """The canonical minimal constraint system of ``{x : facts}``.

    One primal DD conversion plus one dual conversion; the output is the
    :meth:`Polyhedron.constraints` normal form, which depends only on the
    described *point set* -- every backend funnels representation-producing
    results (``Context.assign``) through this form, which is what makes
    context fact tuples (and therefore base-function atoms and
    certificates) byte-identical across backends and pre-filter settings.
    Raises :class:`~repro.logic.fourier_motzkin.Infeasible` when empty.
    """
    return Polyhedron.from_facts(facts).constraints()


class PolyhedraBackend:
    """Adapts :class:`Polyhedron` to the entailment-engine backend interface.

    Decision queries (feasibility, entailment, exact lower bounds) run on
    the generator representation: the polyhedron of a context is built once
    (one Chernikova conversion), cached under the context's fact key, and
    every further query is a generator enumeration.

    Representation-producing operations never touch the Fourier-Motzkin
    eliminator: ``assign`` applies the affine substitution to the cached
    generators (:meth:`Polyhedron.assign`) and projection drops generator
    columns, so dense contexts that drive FM into its constraint cap cost
    one generator pass here.  Both operations emit the canonical
    constraint normal form (:meth:`Polyhedron.constraints`), the same form
    the FM backend canonicalises its eliminations into -- the registry-wide
    bound/certificate identity in ``tests/test_domain_identity.py`` pins
    that the two backends stay byte-identical.
    """

    name = "polyhedra"
    #: The engine may batch ``entails_many`` through one shared projection;
    #: the polyhedron cache makes that pointless here (queries are cheap
    #: once the polyhedron exists), so answer point-wise instead.
    batch_by_projection = False
    #: Caches are cleared wholesale past this size (mirrors the engine cap).
    MAX_ENTRIES = 50_000

    def __init__(self, engine=None) -> None:
        self.engine = engine
        self._polyhedra: Dict[FrozenSet[LinExpr], Polyhedron] = {}

    def attach(self, engine) -> None:
        self.engine = engine

    # -- polyhedron cache --------------------------------------------------

    def polyhedron_for(self, facts: Sequence[LinExpr],
                       key: FrozenSet[LinExpr]) -> Polyhedron:
        polyhedron = self._polyhedra.get(key)
        if polyhedron is None:
            if self.engine is not None:
                self.engine.stats.eliminations += 1
            polyhedron = Polyhedron.from_facts(facts)
            if len(self._polyhedra) > self.MAX_ENTRIES:
                self._polyhedra.clear()
            self._polyhedra[key] = polyhedron
        return polyhedron

    # -- backend interface -------------------------------------------------

    def is_feasible(self, facts: Sequence[LinExpr],
                    key: FrozenSet[LinExpr]) -> bool:
        return not self.polyhedron_for(facts, key).is_empty()

    def minimize(self, objective: LinExpr, facts: Sequence[LinExpr],
                 key: FrozenSet[LinExpr]) -> Fraction:
        return self.polyhedron_for(facts, key).minimize(objective)

    def project(self, facts: Sequence[LinExpr],
                keep: FrozenSet[str]) -> Tuple[LinExpr, ...]:
        """Generator-side projection, in the canonical constraint form."""
        polyhedron = Polyhedron.from_facts(facts)
        if self.engine is not None:
            self.engine.stats.eliminations += 1
        return polyhedron.project(keep).constraints()

    def assign(self, facts: Sequence[LinExpr], key: FrozenSet[LinExpr],
               var: str, rhs: LinExpr, low_shift: Fraction,
               high_shift: Fraction) -> Tuple[LinExpr, ...]:
        """Strongest postcondition from the generator side -- zero FM work.

        Reuses the context's cached polyhedron, so a fixpoint that assigns
        under the same context repeatedly pays one Chernikova conversion
        for the context plus one dual conversion per distinct assignment.
        Raises :class:`~repro.logic.fourier_motzkin.Infeasible` when the
        result is empty (unreachable), like the FM path.
        """
        polyhedron = self.polyhedron_for(facts, key)
        return polyhedron.assign(var, rhs, low_shift, high_shift).constraints()

    def clear(self) -> None:
        self._polyhedra.clear()
