"""Operational semantics, simulation and the weakest pre-expectation calculus.

This package provides the three semantic substrates the paper relies on:

* :mod:`repro.semantics.interp` -- a cost-counting operational interpreter
  with pluggable schedulers for non-determinism (the runtime used by the
  simulation-based evaluation, replacing the paper's C++/GSL harness),
* :mod:`repro.semantics.vexec` -- a NumPy batch executor advancing whole
  batches of runs in lockstep (the fast path behind the Figure 8 sweeps),
* :mod:`repro.semantics.sampler` -- Monte-Carlo estimation of expected cost
  and the candlestick statistics shown in Figure 8 / Appendix F, fronted by
  a scalar/vec engine selection,
* :mod:`repro.semantics.ert` -- the expected-cost transformer ``ert[c]``
  (Appendix B) evaluated by bounded unrolling,
* :mod:`repro.semantics.mdp` -- explicit-state (pushdown-free) MDP semantics
  with expected total reward computed by value iteration (Appendix A).
"""

from repro.semantics.interp import (
    AngelicScheduler,
    DemonicScheduler,
    ExecutionResult,
    Interpreter,
    RandomScheduler,
    Scheduler,
    run_program,
)
from repro.semantics.sampler import (
    SAMPLER_ENGINES,
    CostHistogram,
    SampleStatistics,
    estimate_expected_cost,
    histogram_of_costs,
    sample_costs,
    spawn_seeds,
    sweep_expected_cost,
)
from repro.semantics.vexec import (BatchResult, VecInterpreter,
                                   VectorisationError, VexecRangeError)
from repro.semantics.ert import expected_cost_ert, ert_transformer
from repro.semantics.mdp import MDPSemantics, expected_cost_mdp

__all__ = [
    "AngelicScheduler", "DemonicScheduler", "ExecutionResult", "Interpreter",
    "RandomScheduler", "Scheduler", "run_program",
    "SAMPLER_ENGINES", "CostHistogram", "SampleStatistics",
    "estimate_expected_cost", "histogram_of_costs", "sample_costs",
    "spawn_seeds", "sweep_expected_cost",
    "BatchResult", "VecInterpreter", "VectorisationError", "VexecRangeError",
    "expected_cost_ert", "ert_transformer",
    "MDPSemantics", "expected_cost_mdp",
]
