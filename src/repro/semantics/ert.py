"""The expected-cost transformer ``ert[c]`` (paper Appendix B, Table 2).

``ert[c, D](f)(state)`` is the exact expected number of resource units
consumed when running ``c`` from ``state``, followed by a continuation whose
expected cost is ``f``.  Loops and recursive calls are defined as least fixed
points; per Theorem C.2 / C.5 these are the suprema of bounded unrollings, so
evaluating the transformer with a finite *fuel* yields a monotonically
increasing lower approximation that converges to the true value.

This module provides

* :func:`ert_transformer` -- ``ert[c](f)`` as a Python callable on states
  (exact for loop-free, call-free code; fuel-bounded otherwise),
* :func:`expected_cost_ert` -- the expected cost of a whole program from a
  given initial state (``f = 0``),

which the test-suite uses to cross-check both the interpreter and the bounds
produced by the analyzer on small inputs.

Non-deterministic choices are resolved *demonically* (maximum), matching the
paper's definition.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.lang import ast
from repro.lang.errors import EvaluationError

State = Mapping[str, int]
Expectation = Callable[[State], Fraction]

#: Default unrolling fuel for loops and recursive calls.
DEFAULT_FUEL = 64


def _zero(_state: State) -> Fraction:
    return Fraction(0)


def _eval_expr(expr: ast.Expr, state: State):
    if isinstance(expr, ast.Const):
        # Exact evaluation, as in the interpreter: integral constants
        # become ints, non-integral ones stay exact Fractions (guards such
        # as ``x < 5/2`` must not silently truncate to ``x < 2``).
        value = expr.value
        return int(value) if value.denominator == 1 else value
    if isinstance(expr, ast.Var):
        value = state.get(expr.name, 0)
        # State values are ints except when an Assign stored an exact
        # non-integral Fraction; read those back exactly too.
        if isinstance(value, Fraction) and value.denominator != 1:
            return value
        return int(value)
    if isinstance(expr, ast.Not):
        return 0 if _eval_expr(expr.operand, state) != 0 else 1
    if isinstance(expr, ast.BinOp):
        op = expr.op
        if op == "and":
            return int(_eval_expr(expr.left, state) != 0
                       and _eval_expr(expr.right, state) != 0)
        if op == "or":
            return int(_eval_expr(expr.left, state) != 0
                       or _eval_expr(expr.right, state) != 0)
        left = _eval_expr(expr.left, state)
        right = _eval_expr(expr.right, state)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "div":
            return left // right
        if op == "mod":
            return left % right
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
    raise EvaluationError(f"cannot evaluate {expr!r} in the ert semantics")


def _guard_outcomes(condition: ast.Expr, state: State):
    """Evaluate a guard; yields the possible boolean outcomes (1 or 2 of them).

    Deterministic guards yield a single outcome; guards containing ``*``
    yield both outcomes so the caller can take the demonic maximum.
    """
    if isinstance(condition, ast.Star):
        return (True, False)
    if isinstance(condition, ast.BinOp) and condition.op in ("and", "or"):
        left = _guard_outcomes(condition.left, state)
        right = _guard_outcomes(condition.right, state)
        results = set()
        for a in left:
            for b in right:
                results.add((a and b) if condition.op == "and" else (a or b))
        return tuple(sorted(results, reverse=True))
    if isinstance(condition, ast.Not):
        return tuple(sorted({not value for value
                             in _guard_outcomes(condition.operand, state)}, reverse=True))
    return (_eval_expr(condition, state) != 0,)


def ert_command(command: ast.Command, declarations: Dict[str, ast.Procedure],
                continuation: Expectation, state: State, fuel: int) -> Fraction:
    """Evaluate ``ert[command, declarations](continuation)(state)`` with ``fuel``."""
    if isinstance(command, ast.Abort):
        return Fraction(0)
    if isinstance(command, ast.Skip):
        return continuation(state)
    if isinstance(command, (ast.Assert, ast.Assume)):
        outcomes = _guard_outcomes(command.condition, state)
        # assert e:  [e true] * f   (execution stops, collecting 0, otherwise)
        return max(continuation(state) if outcome else Fraction(0)
                   for outcome in outcomes)
    if isinstance(command, ast.Tick):
        if command.is_constant:
            amount = Fraction(command.amount)
        else:
            amount = Fraction(_eval_expr(command.amount, state))
        return amount + continuation(state)
    if isinstance(command, ast.Assign):
        new_state = dict(state)
        new_state[command.target] = _eval_expr(command.expr, state)
        return continuation(new_state)
    if isinstance(command, ast.Sample):
        base = _eval_expr(command.expr, state)
        total = Fraction(0)
        for value, probability in command.distribution.support():
            new_state = dict(state)
            if command.op == "+":
                new_state[command.target] = base + value
            elif command.op == "-":
                new_state[command.target] = base - value
            else:
                new_state[command.target] = base * value
            total += probability * continuation(new_state)
        return total
    if isinstance(command, ast.If):
        outcomes = _guard_outcomes(command.condition, state)
        results = []
        for outcome in outcomes:
            branch = command.then_branch if outcome else command.else_branch
            results.append(ert_command(branch, declarations, continuation, state, fuel))
        return max(results)
    if isinstance(command, ast.NonDetChoice):
        left = ert_command(command.left, declarations, continuation, state, fuel)
        right = ert_command(command.right, declarations, continuation, state, fuel)
        return max(left, right)
    if isinstance(command, ast.ProbChoice):
        p = command.probability
        left = ert_command(command.left, declarations, continuation, state, fuel)
        right = ert_command(command.right, declarations, continuation, state, fuel)
        return p * left + (1 - p) * right
    if isinstance(command, ast.Seq):
        def run_from(index: int, current_state: State) -> Fraction:
            if index == len(command.commands):
                return continuation(current_state)
            return ert_command(command.commands[index], declarations,
                               lambda s, i=index: run_from(i + 1, s),
                               current_state, fuel)
        return run_from(0, state)
    if isinstance(command, ast.While):
        # Bounded unrolling (Theorem C.2): while^0 = abort, expected cost 0.
        # The characteristic-function iterates F^k(0) are evaluated lazily and
        # memoised per (k, state) so that probabilistic bodies do not cause an
        # exponential blow-up in the fuel.
        if fuel <= 0:
            return Fraction(0)
        levels: List[Dict[Tuple[Tuple[str, int], ...], Fraction]] = \
            [dict() for _ in range(fuel + 1)]

        def unrolled(level: int, sigma: State) -> Fraction:
            key = tuple(sorted(sigma.items()))
            cache = levels[level]
            if key in cache:
                return cache[key]
            if level == 0:
                value = Fraction(0)
            else:
                outcomes = _guard_outcomes(command.condition, sigma)
                results = []
                for outcome in outcomes:
                    if outcome:
                        results.append(ert_command(
                            command.body, declarations,
                            lambda s, lvl=level: unrolled(lvl - 1, s),
                            dict(sigma), fuel))
                    else:
                        results.append(continuation(sigma))
                value = max(results)
            cache[key] = value
            return value

        return unrolled(fuel, state)
    if isinstance(command, ast.Call):
        if fuel <= 0:
            return Fraction(0)
        callee = declarations.get(command.procedure)
        if callee is None:
            raise EvaluationError(f"undefined procedure {command.procedure!r}")
        return ert_command(callee.body, declarations, continuation, state, fuel - 1)
    raise EvaluationError(f"unknown command {command!r}")


def ert_transformer(command: ast.Command,
                    declarations: Optional[Dict[str, ast.Procedure]] = None,
                    continuation: Optional[Expectation] = None,
                    fuel: int = DEFAULT_FUEL) -> Expectation:
    """Return ``ert[command](continuation)`` as a callable on states."""
    decls = declarations or {}
    post = continuation if continuation is not None else _zero

    def transformed(state: State) -> Fraction:
        # Nested loops recurse once per fuel level per nesting depth; allow a
        # comfortably deep Python stack for the bounded-unrolling evaluation.
        import sys
        limit = sys.getrecursionlimit()
        if limit < 50_000:
            sys.setrecursionlimit(50_000)
        try:
            return ert_command(command, decls, post, dict(state), fuel)
        finally:
            sys.setrecursionlimit(limit)

    return transformed


def expected_cost_ert(program: ast.Program, initial_state: Optional[State] = None,
                      fuel: int = DEFAULT_FUEL) -> Fraction:
    """Expected cost of running the program from ``initial_state`` (fuel-bounded).

    For loop-free and call-free programs the result is exact for any positive
    fuel; otherwise it is a lower bound converging to the exact value as the
    fuel grows (Theorem C.2 / C.5).
    """
    state = {var: 0 for var in program.variables()}
    if initial_state:
        state.update({k: int(v) for k, v in initial_state.items()})
    transformer = ert_transformer(program.main_procedure.body, program.procedures,
                                  fuel=fuel)
    return transformer(state)
