"""Cost-counting operational interpreter for the probabilistic language.

The interpreter executes a program on a concrete integer state, resolving

* probabilistic branchings and sampling assignments with a ``numpy`` random
  generator, and
* non-deterministic choices (``if *``) with a pluggable :class:`Scheduler`.

It accumulates the cost defined by ``tick`` commands and is the substrate of
the simulation-based evaluation (the paper used a separate C++/GSL harness
for this purpose).  ``assert``/``assume`` failures terminate the run, exactly
as in the paper's semantics ("terminates the program if the expression
evaluates to 0").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Optional, Union

import numpy as np

from repro.lang import ast
from repro.lang.errors import EvaluationError

State = Dict[str, int]


class Scheduler:
    """Resolves non-deterministic choices; subclass and override :meth:`choose`."""

    def choose(self, command: ast.Command, state: State, rng) -> bool:
        """Return True to take the left/then branch, False otherwise."""
        raise NotImplementedError


class RandomScheduler(Scheduler):
    """Resolve ``if *`` uniformly at random (the default for simulation)."""

    def choose(self, command: ast.Command, state: State, rng) -> bool:
        return bool(rng.random() < 0.5)


class DemonicScheduler(Scheduler):
    """Always take the left branch (a simple deterministic policy).

    Combined with :class:`AngelicScheduler` it lets tests explore both
    resolutions of a non-deterministic choice; a truly worst-case scheduler
    would need to solve the MDP (see :mod:`repro.semantics.mdp`).
    """

    def choose(self, command: ast.Command, state: State, rng) -> bool:
        return True


class AngelicScheduler(Scheduler):
    """Always take the right branch."""

    def choose(self, command: ast.Command, state: State, rng) -> bool:
        return False


@dataclass
class ExecutionResult:
    """Outcome of one program run."""

    state: State
    cost: Fraction
    steps: int
    terminated: bool
    assertion_failed: bool = False

    @property
    def cost_float(self) -> float:
        return float(self.cost)


class _ProgramStop(Exception):
    """Internal control-flow signal raised by failing assert/assume."""


class _StepBudgetExceeded(Exception):
    """Internal signal raised when the step budget is exhausted."""


class Interpreter:
    """Executes programs; one instance can be reused for many runs."""

    def __init__(self, program: ast.Program,
                 scheduler: Optional[Scheduler] = None,
                 max_steps: int = 1_000_000,
                 max_call_depth: int = 512) -> None:
        self.program = program
        self.scheduler = scheduler if scheduler is not None else RandomScheduler()
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth

    # -- public API -------------------------------------------------------------

    def run(self, initial_state: Optional[Dict[str, Union[int, Fraction]]] = None,
            rng: Optional[np.random.Generator] = None,
            seed: Optional[int] = None) -> ExecutionResult:
        """Execute the main procedure from ``initial_state``."""
        if rng is None:
            rng = np.random.default_rng(seed)
        state: State = {var: 0 for var in self.program.variables()}
        if initial_state:
            for var, value in initial_state.items():
                state[str(var)] = int(value)
        self._cost = Fraction(0)
        self._steps = 0
        self._rng = rng
        terminated = True
        assertion_failed = False
        try:
            self._exec(self.program.main_procedure.body, state, 0)
        except _ProgramStop:
            assertion_failed = True
        except _StepBudgetExceeded:
            terminated = False
        return ExecutionResult(state=state, cost=self._cost, steps=self._steps,
                               terminated=terminated,
                               assertion_failed=assertion_failed)

    # -- expression evaluation ------------------------------------------------------

    def eval_expr(self, expr: ast.Expr, state: State) -> int:
        if isinstance(expr, ast.Const):
            value = expr.value
            if value.denominator == 1:
                return int(value)
            return int(value)  # truncate non-integral constants
        if isinstance(expr, ast.Var):
            return state.get(expr.name, 0)
        if isinstance(expr, ast.Star):
            raise EvaluationError("'*' may only appear as a branching guard")
        if isinstance(expr, ast.Not):
            return 0 if self.eval_expr(expr.operand, state) != 0 else 1
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, state)
        raise EvaluationError(f"cannot evaluate expression {expr!r}")

    def _eval_binop(self, expr: ast.BinOp, state: State) -> int:
        op = expr.op
        if op == "and":
            return 1 if (self.eval_bool(expr.left, state)
                         and self.eval_bool(expr.right, state)) else 0
        if op == "or":
            return 1 if (self.eval_bool(expr.left, state)
                         or self.eval_bool(expr.right, state)) else 0
        left = self.eval_expr(expr.left, state)
        right = self.eval_expr(expr.right, state)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "div":
            if right == 0:
                raise EvaluationError("division by zero")
            return left // right
        if op == "mod":
            if right == 0:
                raise EvaluationError("modulo by zero")
            return left % right
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        raise EvaluationError(f"unknown operator {op!r}")

    def eval_bool(self, expr: ast.Expr, state: State) -> bool:
        if isinstance(expr, ast.Star):
            return self.scheduler.choose(expr, state, self._rng)
        return self.eval_expr(expr, state) != 0

    # -- command execution --------------------------------------------------------------

    def _charge_step(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise _StepBudgetExceeded()

    def _exec(self, command: ast.Command, state: State, depth: int) -> None:
        self._charge_step()
        if isinstance(command, ast.Skip):
            return
        if isinstance(command, ast.Abort):
            # ``abort`` diverges; for simulation purposes we stop the run and
            # count the cost so far (its ert is 0, so aborting programs are
            # not used in cost measurements).
            raise _ProgramStop()
        if isinstance(command, (ast.Assert, ast.Assume)):
            if not self.eval_bool(command.condition, state):
                raise _ProgramStop()
            return
        if isinstance(command, ast.Tick):
            if command.is_constant:
                self._cost += command.amount
            else:
                self._cost += Fraction(self.eval_expr(command.amount, state))
            return
        if isinstance(command, ast.Assign):
            state[command.target] = self.eval_expr(command.expr, state)
            return
        if isinstance(command, ast.Sample):
            base = self.eval_expr(command.expr, state)
            drawn = command.distribution.sample(self._rng)
            if command.op == "+":
                state[command.target] = base + drawn
            elif command.op == "-":
                state[command.target] = base - drawn
            else:
                state[command.target] = base * drawn
            return
        if isinstance(command, ast.Seq):
            for sub in command.commands:
                self._exec(sub, state, depth)
            return
        if isinstance(command, ast.If):
            if self.eval_bool(command.condition, state):
                self._exec(command.then_branch, state, depth)
            else:
                self._exec(command.else_branch, state, depth)
            return
        if isinstance(command, ast.NonDetChoice):
            if self.scheduler.choose(command, state, self._rng):
                self._exec(command.left, state, depth)
            else:
                self._exec(command.right, state, depth)
            return
        if isinstance(command, ast.ProbChoice):
            if self._rng.random() < float(command.probability):
                self._exec(command.left, state, depth)
            else:
                self._exec(command.right, state, depth)
            return
        if isinstance(command, ast.While):
            while self.eval_bool(command.condition, state):
                self._exec(command.body, state, depth)
                self._charge_step()
            return
        if isinstance(command, ast.Call):
            if depth >= self.max_call_depth:
                raise EvaluationError(
                    f"call depth limit {self.max_call_depth} exceeded")
            callee = self.program.procedures.get(command.procedure)
            if callee is None:
                raise EvaluationError(f"undefined procedure {command.procedure!r}")
            self._exec(callee.body, state, depth + 1)
            return
        raise EvaluationError(f"unknown command {command!r}")


def run_program(program: ast.Program,
                initial_state: Optional[Dict[str, int]] = None,
                seed: Optional[int] = None,
                scheduler: Optional[Scheduler] = None,
                max_steps: int = 1_000_000) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    interpreter = Interpreter(program, scheduler=scheduler, max_steps=max_steps)
    return interpreter.run(initial_state, seed=seed)
