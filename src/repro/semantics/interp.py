"""Cost-counting operational interpreter for the probabilistic language.

The interpreter executes a program on a concrete integer state, resolving

* probabilistic branchings and sampling assignments with a ``numpy`` random
  generator, and
* non-deterministic choices (``if *``) with a pluggable :class:`Scheduler`.

It accumulates the cost defined by ``tick`` commands and is the substrate of
the simulation-based evaluation (the paper used a separate C++/GSL harness
for this purpose).  ``assert``/``assume`` failures terminate the run, exactly
as in the paper's semantics ("terminates the program if the expression
evaluates to 0").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Optional, Union

import numpy as np

from repro.lang import ast
from repro.lang.errors import EvaluationError, UninitializedReadError

State = Dict[str, int]


class Scheduler:
    """Resolves non-deterministic choices; subclass and override :meth:`choose`."""

    def choose(self, command: ast.Command, state: State, rng) -> bool:
        """Return True to take the left/then branch, False otherwise."""
        raise NotImplementedError


class RandomScheduler(Scheduler):
    """Resolve ``if *`` uniformly at random (the default for simulation)."""

    def choose(self, command: ast.Command, state: State, rng) -> bool:
        return bool(rng.random() < 0.5)


class DemonicScheduler(Scheduler):
    """Always take the left branch (a simple deterministic policy).

    Combined with :class:`AngelicScheduler` it lets tests explore both
    resolutions of a non-deterministic choice; a truly worst-case scheduler
    would need to solve the MDP (see :mod:`repro.semantics.mdp`).
    """

    def choose(self, command: ast.Command, state: State, rng) -> bool:
        return True


class AngelicScheduler(Scheduler):
    """Always take the right branch."""

    def choose(self, command: ast.Command, state: State, rng) -> bool:
        return False


@dataclass
class ExecutionResult:
    """Outcome of one program run."""

    state: State
    cost: Fraction
    steps: int
    terminated: bool
    assertion_failed: bool = False

    @property
    def cost_float(self) -> float:
        return float(self.cost)


class _ProgramStop(Exception):
    """Internal control-flow signal raised by failing assert/assume."""


class _StepBudgetExceeded(Exception):
    """Internal signal raised when the step budget is exhausted."""


class Interpreter:
    """Executes programs; one instance can be reused for many runs.

    Command and expression trees are compiled once per interpreter into
    nested closures (the classic closure-compilation trick), so repeated
    runs -- the Monte-Carlo sampler executes the same program hundreds of
    times -- pay no per-node ``isinstance`` dispatch.  The compiled form is
    observationally identical to the tree-walking :meth:`_exec` (same
    evaluation order, same RNG draw sequence, same step accounting), which
    is kept for direct use.
    """

    def __init__(self, program: ast.Program,
                 scheduler: Optional[Scheduler] = None,
                 max_steps: int = 1_000_000,
                 max_call_depth: int = 512,
                 strict_init: bool = False) -> None:
        self.program = program
        self.scheduler = scheduler if scheduler is not None else RandomScheduler()
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        #: Strict-initialization mode: the state is seeded only from
        #: ``initial_state`` (no zero-fill) and reading a never-assigned
        #: variable raises :class:`UninitializedReadError`.  This is the
        #: runtime oracle for the lint pass's definite-initialization
        #: analysis (see ``repro.lang.analysis``): lint-clean programs
        #: must run identically in both modes.
        self.strict_init = strict_init
        self._main_fn = None
        self._proc_cache: Dict[str, object] = {}

    # -- public API -------------------------------------------------------------

    def run(self, initial_state: Optional[Dict[str, Union[int, Fraction]]] = None,
            rng: Optional[np.random.Generator] = None,
            seed: Optional[int] = None) -> ExecutionResult:
        """Execute the main procedure from ``initial_state``."""
        if rng is None:
            rng = np.random.default_rng(seed)
        state: State = {} if self.strict_init else \
            {var: 0 for var in self.program.variables()}
        if initial_state:
            for var, value in initial_state.items():
                state[str(var)] = int(value)
        self._cost = Fraction(0)
        self._steps = 0
        self._rng = rng
        terminated = True
        assertion_failed = False
        if self._main_fn is None:
            self._main_fn = self._compile_command(self.program.main_procedure.body)
        try:
            self._main_fn(state, 0)
        except _ProgramStop:
            assertion_failed = True
        except _StepBudgetExceeded:
            terminated = False
        return ExecutionResult(state=state, cost=self._cost, steps=self._steps,
                               terminated=terminated,
                               assertion_failed=assertion_failed)

    # -- expression evaluation ------------------------------------------------------

    def eval_expr(self, expr: ast.Expr, state: State) -> Union[int, Fraction]:
        if isinstance(expr, ast.Const):
            value = expr.value
            if value.denominator == 1:
                return int(value)
            # Evaluate non-integral constants exactly: guards such as
            # ``x < 5/2`` must not silently truncate to ``x < 2``.
            # Fraction arithmetic/comparisons compose with int state values.
            return value
        if isinstance(expr, ast.Var):
            if self.strict_init and expr.name not in state:
                raise UninitializedReadError(expr.name)
            return state.get(expr.name, 0)
        if isinstance(expr, ast.Star):
            raise EvaluationError("'*' may only appear as a branching guard")
        if isinstance(expr, ast.Not):
            return 0 if self.eval_expr(expr.operand, state) != 0 else 1
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, state)
        raise EvaluationError(f"cannot evaluate expression {expr!r}")

    def _eval_binop(self, expr: ast.BinOp, state: State) -> int:
        op = expr.op
        if op == "and":
            return 1 if (self.eval_bool(expr.left, state)
                         and self.eval_bool(expr.right, state)) else 0
        if op == "or":
            return 1 if (self.eval_bool(expr.left, state)
                         or self.eval_bool(expr.right, state)) else 0
        left = self.eval_expr(expr.left, state)
        right = self.eval_expr(expr.right, state)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "div":
            if right == 0:
                raise EvaluationError("division by zero")
            return left // right
        if op == "mod":
            if right == 0:
                raise EvaluationError("modulo by zero")
            return left % right
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        raise EvaluationError(f"unknown operator {op!r}")

    def eval_bool(self, expr: ast.Expr, state: State) -> bool:
        if isinstance(expr, ast.Star):
            return self.scheduler.choose(expr, state, self._rng)
        return self.eval_expr(expr, state) != 0

    # -- command execution --------------------------------------------------------------

    def _charge_step(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise _StepBudgetExceeded()

    def _exec(self, command: ast.Command, state: State, depth: int) -> None:
        self._charge_step()
        if isinstance(command, ast.Skip):
            return
        if isinstance(command, ast.Abort):
            # ``abort`` diverges; for simulation purposes we stop the run and
            # count the cost so far (its ert is 0, so aborting programs are
            # not used in cost measurements).
            raise _ProgramStop()
        if isinstance(command, (ast.Assert, ast.Assume)):
            if not self.eval_bool(command.condition, state):
                raise _ProgramStop()
            return
        if isinstance(command, ast.Tick):
            if command.is_constant:
                self._cost += command.amount
            else:
                self._cost += Fraction(self.eval_expr(command.amount, state))
            return
        if isinstance(command, ast.Assign):
            state[command.target] = self.eval_expr(command.expr, state)
            return
        if isinstance(command, ast.Sample):
            base = self.eval_expr(command.expr, state)
            drawn = command.distribution.sample(self._rng)
            if command.op == "+":
                state[command.target] = base + drawn
            elif command.op == "-":
                state[command.target] = base - drawn
            else:
                state[command.target] = base * drawn
            return
        if isinstance(command, ast.Seq):
            for sub in command.commands:
                self._exec(sub, state, depth)
            return
        if isinstance(command, ast.If):
            if self.eval_bool(command.condition, state):
                self._exec(command.then_branch, state, depth)
            else:
                self._exec(command.else_branch, state, depth)
            return
        if isinstance(command, ast.NonDetChoice):
            if self.scheduler.choose(command, state, self._rng):
                self._exec(command.left, state, depth)
            else:
                self._exec(command.right, state, depth)
            return
        if isinstance(command, ast.ProbChoice):
            if self._rng.random() < float(command.probability):
                self._exec(command.left, state, depth)
            else:
                self._exec(command.right, state, depth)
            return
        if isinstance(command, ast.While):
            while self.eval_bool(command.condition, state):
                self._exec(command.body, state, depth)
                self._charge_step()
            return
        if isinstance(command, ast.Call):
            if depth >= self.max_call_depth:
                raise EvaluationError(
                    f"call depth limit {self.max_call_depth} exceeded")
            callee = self.program.procedures.get(command.procedure)
            if callee is None:
                raise EvaluationError(f"undefined procedure {command.procedure!r}")
            self._exec(callee.body, state, depth + 1)
            return
        raise EvaluationError(f"unknown command {command!r}")

    # -- closure compilation --------------------------------------------------------------
    #
    # Each ``_compile_*`` method returns a closure over the pre-resolved
    # children, so the per-node type dispatch happens once per program
    # instead of once per execution step.  Runtime-dependent lookups
    # (``self.scheduler``, ``self._rng``, procedure resolution, error
    # raising for malformed nodes) stay inside the closures to keep the
    # observable behaviour of the tree walker, including for nodes that are
    # never reached.

    def _compile_expr(self, expr: ast.Expr):
        if isinstance(expr, ast.Const):
            # Exact evaluation, as in eval_expr: integral constants become
            # ints, non-integral ones stay exact Fractions.
            value = int(expr.value) if expr.value.denominator == 1 else expr.value
            return lambda state: value
        if isinstance(expr, ast.Var):
            name = expr.name
            if self.strict_init:
                def read(state):
                    try:
                        return state[name]
                    except KeyError:
                        raise UninitializedReadError(name) from None
                return read
            return lambda state: state.get(name, 0)
        if isinstance(expr, ast.Star):
            def star(state):
                raise EvaluationError("'*' may only appear as a branching guard")
            return star
        if isinstance(expr, ast.Not):
            operand = self._compile_expr(expr.operand)
            return lambda state: 0 if operand(state) != 0 else 1
        if isinstance(expr, ast.BinOp):
            return self._compile_binop(expr)

        def unknown(state):
            raise EvaluationError(f"cannot evaluate expression {expr!r}")
        return unknown

    def _compile_binop(self, expr: ast.BinOp):
        op = expr.op
        if op == "and":
            left_bool = self._compile_bool(expr.left)
            right_bool = self._compile_bool(expr.right)
            return lambda state: 1 if (left_bool(state) and right_bool(state)) else 0
        if op == "or":
            left_bool = self._compile_bool(expr.left)
            right_bool = self._compile_bool(expr.right)
            return lambda state: 1 if (left_bool(state) or right_bool(state)) else 0
        left = self._compile_expr(expr.left)
        right = self._compile_expr(expr.right)
        if op == "+":
            return lambda state: left(state) + right(state)
        if op == "-":
            return lambda state: left(state) - right(state)
        if op == "*":
            return lambda state: left(state) * right(state)
        if op == "div":
            def div(state):
                divisor = right(state)
                if divisor == 0:
                    raise EvaluationError("division by zero")
                return left(state) // divisor
            return div
        if op == "mod":
            def mod(state):
                divisor = right(state)
                if divisor == 0:
                    raise EvaluationError("modulo by zero")
                return left(state) % divisor
            return mod
        if op == "==":
            return lambda state: int(left(state) == right(state))
        if op == "!=":
            return lambda state: int(left(state) != right(state))
        if op == "<":
            return lambda state: int(left(state) < right(state))
        if op == "<=":
            return lambda state: int(left(state) <= right(state))
        if op == ">":
            return lambda state: int(left(state) > right(state))
        if op == ">=":
            return lambda state: int(left(state) >= right(state))

        def unknown(state):
            raise EvaluationError(f"unknown operator {op!r}")
        return unknown

    def _compile_bool(self, expr: ast.Expr):
        if isinstance(expr, ast.Star):
            return lambda state: self.scheduler.choose(expr, state, self._rng)
        inner = self._compile_expr(expr)
        return lambda state: inner(state) != 0

    def _compile_command(self, command: ast.Command):
        charge = self._charge_step
        if isinstance(command, ast.Skip):
            return lambda state, depth: charge()
        if isinstance(command, ast.Abort):
            def run_abort(state, depth):
                charge()
                raise _ProgramStop()
            return run_abort
        if isinstance(command, (ast.Assert, ast.Assume)):
            condition = self._compile_bool(command.condition)

            def run_assert(state, depth):
                charge()
                if not condition(state):
                    raise _ProgramStop()
            return run_assert
        if isinstance(command, ast.Tick):
            if command.is_constant:
                amount = command.amount

                def run_tick(state, depth):
                    charge()
                    self._cost += amount
            else:
                amount_fn = self._compile_expr(command.amount)

                def run_tick(state, depth):
                    charge()
                    self._cost += Fraction(amount_fn(state))
            return run_tick
        if isinstance(command, ast.Assign):
            target = command.target
            value = self._compile_expr(command.expr)

            def run_assign(state, depth):
                charge()
                state[target] = value(state)
            return run_assign
        if isinstance(command, ast.Sample):
            target = command.target
            base_fn = self._compile_expr(command.expr)
            sample = command.distribution.sample
            op = command.op
            if op == "+":
                def run_sample(state, depth):
                    charge()
                    state[target] = base_fn(state) + sample(self._rng)
            elif op == "-":
                def run_sample(state, depth):
                    charge()
                    state[target] = base_fn(state) - sample(self._rng)
            else:
                def run_sample(state, depth):
                    charge()
                    state[target] = base_fn(state) * sample(self._rng)
            return run_sample
        if isinstance(command, ast.Seq):
            subs = [self._compile_command(sub) for sub in command.commands]

            def run_seq(state, depth):
                charge()
                for sub in subs:
                    sub(state, depth)
            return run_seq
        if isinstance(command, ast.If):
            condition = self._compile_bool(command.condition)
            then_branch = self._compile_command(command.then_branch)
            else_branch = self._compile_command(command.else_branch)

            def run_if(state, depth):
                charge()
                if condition(state):
                    then_branch(state, depth)
                else:
                    else_branch(state, depth)
            return run_if
        if isinstance(command, ast.NonDetChoice):
            left = self._compile_command(command.left)
            right = self._compile_command(command.right)

            def run_nondet(state, depth):
                charge()
                if self.scheduler.choose(command, state, self._rng):
                    left(state, depth)
                else:
                    right(state, depth)
            return run_nondet
        if isinstance(command, ast.ProbChoice):
            probability = float(command.probability)
            left = self._compile_command(command.left)
            right = self._compile_command(command.right)

            def run_prob(state, depth):
                charge()
                if self._rng.random() < probability:
                    left(state, depth)
                else:
                    right(state, depth)
            return run_prob
        if isinstance(command, ast.While):
            condition = self._compile_bool(command.condition)
            body = self._compile_command(command.body)

            def run_while(state, depth):
                charge()
                while condition(state):
                    body(state, depth)
                    charge()
            return run_while
        if isinstance(command, ast.Call):
            name = command.procedure

            def run_call(state, depth):
                charge()
                if depth >= self.max_call_depth:
                    raise EvaluationError(
                        f"call depth limit {self.max_call_depth} exceeded")
                callee_fn = self._proc_cache.get(name)
                if callee_fn is None:
                    callee = self.program.procedures.get(name)
                    if callee is None:
                        raise EvaluationError(f"undefined procedure {name!r}")
                    callee_fn = self._compile_command(callee.body)
                    self._proc_cache[name] = callee_fn
                callee_fn(state, depth + 1)
            return run_call

        def run_unknown(state, depth):
            charge()
            raise EvaluationError(f"unknown command {command!r}")
        return run_unknown


def run_program(program: ast.Program,
                initial_state: Optional[Dict[str, int]] = None,
                seed: Optional[int] = None,
                scheduler: Optional[Scheduler] = None,
                max_steps: int = 1_000_000) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    interpreter = Interpreter(program, scheduler=scheduler, max_steps=max_steps)
    return interpreter.run(initial_state, seed=seed)
