"""Explicit-state MDP semantics with expected total reward (paper Appendix A).

The paper gives the operational semantics of programs as a (pushdown) Markov
decision process whose states are configurations ``(location, store)`` and
whose rewards are the ``tick`` amounts; the expected resource consumption is
the expected total reward until termination, maximised over schedulers.

For programs whose reachable configuration space is finite (or that we are
willing to truncate), this module builds that MDP explicitly and computes the
expected reward:

* without non-determinism the defining equations are linear and solved
  directly (Gauss-Seidel style iteration on the sparse system),
* with non-determinism value iteration computes the demonic supremum.

The configuration representation avoids an explicit pushdown by keeping the
continuation (a tuple of remaining commands) inside the configuration, which
is equivalent for the programs in the benchmark suite (bounded call depth).

This is a verification substrate: the test-suite uses it to cross-check the
interpreter, the ``ert`` transformer and the inferred bounds on small inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.lang import ast
from repro.lang.errors import EvaluationError
from repro.semantics.ert import _eval_expr, _guard_outcomes

StateItems = Tuple[Tuple[str, int], ...]
Continuation = Tuple[ast.Command, ...]
Config = Tuple[Continuation, StateItems]


@dataclass
class _Transition:
    """One scheduler action: a probability distribution over successors."""

    reward: Fraction
    successors: List[Tuple[Fraction, Config]]


class MDPSemantics:
    """Explicit-state expected-reward computation for one program."""

    def __init__(self, program: ast.Program, max_configs: int = 200_000) -> None:
        self.program = program
        self.max_configs = max_configs
        self.truncated = False

    # -- configuration helpers ---------------------------------------------------

    def _initial_config(self, initial_state: Dict[str, int]) -> Config:
        state = {var: 0 for var in self.program.variables()}
        state.update({k: int(v) for k, v in initial_state.items()})
        items = tuple(sorted(state.items()))
        return ((self.program.main_procedure.body,), items)

    @staticmethod
    def _with_state(items: StateItems, var: str, value: int) -> StateItems:
        return tuple(sorted(dict(items, **{var: value}).items()))

    # -- single step --------------------------------------------------------------

    def _step(self, config: Config) -> List[_Transition]:
        """All scheduler actions available in ``config`` (empty = terminal)."""
        continuation, items = config
        if not continuation:
            return []
        command, rest = continuation[0], continuation[1:]
        state = dict(items)

        def advance(new_items: StateItems = items,
                    prepend: Sequence[ast.Command] = ()) -> Config:
            return (tuple(prepend) + rest, new_items)

        if isinstance(command, ast.Skip):
            return [_Transition(Fraction(0), [(Fraction(1), advance())])]
        if isinstance(command, ast.Abort):
            # Diverges with no further reward: model as termination with 0.
            return [_Transition(Fraction(0), [(Fraction(1), ((), items))])]
        if isinstance(command, (ast.Assert, ast.Assume)):
            outcomes = _guard_outcomes(command.condition, state)
            transitions = []
            for outcome in outcomes:
                target = advance() if outcome else ((), items)
                transitions.append(_Transition(Fraction(0), [(Fraction(1), target)]))
            return transitions
        if isinstance(command, ast.Tick):
            amount = Fraction(command.amount) if command.is_constant \
                else Fraction(_eval_expr(command.amount, state))
            return [_Transition(amount, [(Fraction(1), advance())])]
        if isinstance(command, ast.Assign):
            value = _eval_expr(command.expr, state)
            return [_Transition(Fraction(0), [(Fraction(1), advance(
                self._with_state(items, command.target, value)))])]
        if isinstance(command, ast.Sample):
            base = _eval_expr(command.expr, state)
            successors: List[Tuple[Fraction, Config]] = []
            for value, probability in command.distribution.support():
                if command.op == "+":
                    outcome = base + value
                elif command.op == "-":
                    outcome = base - value
                else:
                    outcome = base * value
                successors.append((probability, advance(
                    self._with_state(items, command.target, outcome))))
            return [_Transition(Fraction(0), successors)]
        if isinstance(command, ast.Seq):
            return [_Transition(Fraction(0),
                                [(Fraction(1), advance(prepend=command.commands))])]
        if isinstance(command, ast.If):
            outcomes = _guard_outcomes(command.condition, state)
            transitions = []
            for outcome in outcomes:
                branch = command.then_branch if outcome else command.else_branch
                transitions.append(_Transition(
                    Fraction(0), [(Fraction(1), advance(prepend=(branch,)))]))
            return transitions
        if isinstance(command, ast.NonDetChoice):
            return [
                _Transition(Fraction(0), [(Fraction(1), advance(prepend=(command.left,)))]),
                _Transition(Fraction(0), [(Fraction(1), advance(prepend=(command.right,)))]),
            ]
        if isinstance(command, ast.ProbChoice):
            p = command.probability
            successors = []
            if p > 0:
                successors.append((p, advance(prepend=(command.left,))))
            if p < 1:
                successors.append((1 - p, advance(prepend=(command.right,))))
            return [_Transition(Fraction(0), successors)]
        if isinstance(command, ast.While):
            outcomes = _guard_outcomes(command.condition, state)
            transitions = []
            for outcome in outcomes:
                if outcome:
                    transitions.append(_Transition(Fraction(0), [
                        (Fraction(1), advance(prepend=(command.body, command)))]))
                else:
                    transitions.append(_Transition(Fraction(0), [(Fraction(1), advance())]))
            return transitions
        if isinstance(command, ast.Call):
            callee = self.program.procedures.get(command.procedure)
            if callee is None:
                raise EvaluationError(f"undefined procedure {command.procedure!r}")
            return [_Transition(Fraction(0),
                                [(Fraction(1), advance(prepend=(callee.body,)))])]
        raise EvaluationError(f"unknown command {command!r}")

    # -- reachability + solving --------------------------------------------------------

    def expected_cost(self, initial_state: Optional[Dict[str, int]] = None,
                      iterations: int = 10_000,
                      tolerance: float = 1e-9) -> float:
        """Expected total reward from ``initial_state`` (demonic scheduler).

        The reachable configuration graph is explored breadth-first up to
        ``max_configs`` configurations; configurations beyond the cap are
        treated as absorbing with value 0, which makes the result a lower
        bound in the truncated case (``self.truncated`` is set).
        """
        from collections import deque

        start = self._initial_config(initial_state or {})
        index: Dict[Config, int] = {start: 0}
        order: List[Config] = [start]
        transitions: List[List[_Transition]] = [[]]
        # Breadth-first exploration: when the configuration space must be
        # truncated, BFS keeps the explored region "around" the initial
        # configuration, which keeps the truncation error small (a DFS would
        # follow one unboundedly growing path and miss the returning ones).
        frontier = deque([start])
        self.truncated = False
        while frontier:
            config = frontier.popleft()
            actions = self._step(config)
            transitions[index[config]] = actions
            for action in actions:
                for _, successor in action.successors:
                    if successor in index:
                        continue
                    if len(index) >= self.max_configs:
                        self.truncated = True
                        continue
                    index[successor] = len(order)
                    order.append(successor)
                    transitions.append([])
                    frontier.append(successor)
        assert len(transitions) == len(order)

        values = [0.0] * len(order)
        rewards_cache = [
            [(float(action.reward),
              [(float(p), index.get(succ)) for p, succ in action.successors])
             for action in transitions[i]]
            for i in range(len(order))
        ]
        for _ in range(iterations):
            delta = 0.0
            for i in range(len(order)):
                actions = rewards_cache[i]
                if not actions:
                    continue
                best = None
                for reward, successors in actions:
                    total = reward
                    for probability, j in successors:
                        if j is not None:
                            total += probability * values[j]
                    if best is None or total > best:
                        best = total
                if best is None:
                    best = 0.0
                delta = max(delta, abs(best - values[i]))
                values[i] = best
            if delta < tolerance:
                break
        return values[0]


def expected_cost_mdp(program: ast.Program,
                      initial_state: Optional[Dict[str, int]] = None,
                      max_configs: int = 200_000,
                      iterations: int = 10_000) -> float:
    """Convenience wrapper around :class:`MDPSemantics`."""
    semantics = MDPSemantics(program, max_configs=max_configs)
    return semantics.expected_cost(initial_state, iterations=iterations)
