"""Monte-Carlo estimation of expected resource usage.

The paper's evaluation (Sec. 7.2, Figure 8, Appendix F) compares the
statically inferred bounds against the *measured* expected number of ticks,
obtained by sampling each program many times for a range of inputs.  This
module is the Python replacement for the C++/GSL simulation harness:

* :func:`estimate_expected_cost` samples a program ``runs`` times for one
  input and returns :class:`SampleStatistics` (mean, spread, quartiles),
* :func:`sweep_expected_cost` repeats the estimation over a range of inputs
  for one swept variable while the others stay fixed -- exactly the set-up of
  the Appendix F candlestick plots,
* :func:`histogram_of_costs` builds the Figure 8 tick histogram,
* :func:`relative_error` computes the "Error (%)" column of Table 1.

Two sampler engines are available (the ``engine`` argument):

* ``"scalar"`` -- the closure-compiled scalar interpreter
  (:mod:`repro.semantics.interp`), one run at a time.  This is the oracle:
  exact operational semantics, arbitrary schedulers, exact rational state.
* ``"vec"`` -- the NumPy batch executor (:mod:`repro.semantics.vexec`),
  which advances all runs in lockstep over integer state arrays with
  per-lane ``SeedSequence``-spawned streams.  Results are reproducible
  independent of batch size and agree with the scalar engine exactly on
  deterministic programs and in distribution on probabilistic ones.
* ``"auto"`` -- use ``vec`` whenever the program/scheduler can be
  vectorised, silently falling back to ``scalar`` otherwise.

Seeds for sweeps are derived with ``np.random.SeedSequence(seed).spawn``
(see :func:`spawn_seeds`), so every sweep point gets an independent,
collision-free stream -- unlike naive ``seed + index`` derivations whose
streams are correlated across neighbouring points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.lang import ast
from repro.lang.analysis import vectorizability_verdict
from repro.semantics.interp import Interpreter, RandomScheduler, Scheduler
from repro.semantics.vexec import (VecInterpreter, VectorisationError,
                                   VexecRangeError, fresh_seedseq)

State = Dict[str, int]
Seed = Union[None, int, np.random.SeedSequence]

#: The selectable sampler engines.
SAMPLER_ENGINES = ("scalar", "vec", "auto")


@dataclass
class SampleStatistics:
    """Summary statistics of sampled program costs (one input valuation)."""

    mean: float
    std: float
    minimum: float
    maximum: float
    first_quartile: float
    median: float
    third_quartile: float
    runs: int
    unfinished_runs: int = 0
    #: The engine that actually produced the samples ("scalar" or "vec") --
    #: 'auto' resolution and runtime fallback are reported through this.
    engine: str = "scalar"
    #: Why the 'auto' engine fell back to the scalar interpreter, naming
    #: the offending construct (empty when no fallback happened).
    fallback_reason: str = ""

    def candlestick(self) -> Tuple[float, float, float, float]:
        """(low, q1, q3, high) -- the candlestick of the Appendix F plots."""
        return (self.minimum, self.first_quartile, self.third_quartile, self.maximum)

    def standard_error(self) -> float:
        if self.runs == 0:
            return float("nan")
        return self.std / (self.runs ** 0.5)


@dataclass
class CostHistogram:
    """Sampled cost histogram (Figure 8 left).

    Unlike a bare ``(counts, edges, mean)`` tuple this also reports how many
    runs did *not* terminate within the step budget -- silently dropping
    them would bias the histogram (and its mean) toward cheap runs.
    """

    counts: np.ndarray
    edges: np.ndarray
    mean: float
    runs: int
    unfinished_runs: int
    engine: str = "scalar"


def spawn_seeds(seed: Seed, count: int) -> List[Seed]:
    """``count`` independent child seeds derived from ``seed``.

    Children are ``SeedSequence`` objects spawned from ``seed`` -- distinct,
    collision-free streams, unlike ``seed + index`` arithmetic where
    neighbouring points share almost their entire stream state.  ``None``
    (fresh OS entropy per point) is passed through unchanged.
    """
    if seed is None:
        return [None] * count
    # fresh_seedseq rebuilds caller-provided SeedSequences so spawning
    # neither mutates the caller's object nor varies across repeated calls.
    return list(fresh_seedseq(seed).spawn(count))


#: Compiled-executor cache: sweeps call ``estimate_expected_cost`` once per
#: point on the same program; recompiling the identical tree per point is
#: pure waste.  Keyed on ``id(program)`` with an identity re-check (so a
#: recycled id can never alias a different program) and bounded FIFO.
_VEC_EXECUTOR_CACHE: Dict[Tuple[int, int], VecInterpreter] = {}
_VEC_EXECUTOR_CACHE_SIZE = 8


def _vec_executor(program: ast.Program, scheduler: Optional[Scheduler],
                  max_steps: int) -> VecInterpreter:
    if scheduler is not None:
        # Scheduler instances may carry state; don't share them via a cache.
        return VecInterpreter(program, scheduler=scheduler,
                              max_steps=max_steps)
    key = (id(program), max_steps)
    cached = _VEC_EXECUTOR_CACHE.get(key)
    if cached is not None and cached.program is program:
        return cached
    executor = VecInterpreter(program, max_steps=max_steps)
    while len(_VEC_EXECUTOR_CACHE) >= _VEC_EXECUTOR_CACHE_SIZE:
        _VEC_EXECUTOR_CACHE.pop(next(iter(_VEC_EXECUTOR_CACHE)))
    _VEC_EXECUTOR_CACHE[key] = executor
    return executor


def resolve_engine_with_reason(engine: str, program: ast.Program,
                               scheduler: Optional[Scheduler] = None,
                               max_steps: int = 1_000_000
                               ) -> Tuple[str, Optional[VecInterpreter], str]:
    """Resolve an engine name; the third element says *why* 'auto' fell back.

    ``"auto"`` consults the front end's static
    :func:`~repro.lang.analysis.vectorizability_verdict` first: a rejected
    program goes straight to the scalar interpreter with the verdict's
    reason (naming the offending construct and its span) instead of paying
    for a compile attempt that is known to fail.  The static verdict and
    the compiler are pinned to agree by ``tests/test_program_fuzz.py``; a
    compile attempt remains as a belt-and-braces fallback so a divergence
    could only ever cost performance, never correctness.
    """
    if engine not in SAMPLER_ENGINES:
        raise ValueError(f"unknown sampler engine {engine!r}; "
                         f"choose one of {SAMPLER_ENGINES}")
    if engine == "scalar":
        return "scalar", None, ""
    if engine == "auto":
        mode = VecInterpreter._resolve_choice_mode(
            scheduler if scheduler is not None else RandomScheduler())
        verdict = vectorizability_verdict(program, max_steps=max_steps,
                                          choice_mode=mode)
        if not verdict.ok:
            return "scalar", None, verdict.reason
    try:
        executor = _vec_executor(program, scheduler, max_steps)
    except VectorisationError as exc:
        if engine == "vec":
            raise
        return "scalar", None, str(exc)
    return "vec", executor, ""


def resolve_engine(engine: str, program: ast.Program,
                   scheduler: Optional[Scheduler] = None,
                   max_steps: int = 1_000_000
                   ) -> Tuple[str, Optional[VecInterpreter]]:
    """Resolve an engine name to ``("scalar", None)`` or ``("vec", executor)``.

    ``"vec"`` raises :class:`VectorisationError` when the program or
    scheduler cannot be vectorised; ``"auto"`` falls back to the scalar
    interpreter instead (see :func:`resolve_engine_with_reason` for the
    explanation of *why*).
    """
    chosen, executor, _ = resolve_engine_with_reason(engine, program,
                                                     scheduler, max_steps)
    return chosen, executor


def sample_costs(program: ast.Program,
                 initial_state: Optional[State] = None,
                 runs: int = 1000,
                 seed: Seed = 0,
                 scheduler: Optional[Scheduler] = None,
                 max_steps: int = 1_000_000,
                 engine: str = "scalar",
                 batch_size: Optional[int] = None
                 ) -> Tuple[np.ndarray, int, str, str]:
    """Sample ``runs`` executions.

    Returns ``(costs of terminated runs, #unfinished, engine used,
    fallback reason)``.  The cost array contains one float per run that
    terminated within the step budget (assertion-failed runs count as
    terminated, with the cost accumulated up to the failing assertion,
    exactly as in the scalar semantics).  The returned engine name is
    what actually ran -- ``"auto"`` resolution and the runtime overflow
    fallback both surface here, with the reason naming the construct (or
    runtime event) that blocked vectorisation.
    """
    chosen, executor, reason = resolve_engine_with_reason(
        engine, program, scheduler, max_steps)
    if chosen == "vec":
        try:
            batch = executor.run_batch(initial_state, runs=runs, seed=seed,
                                       batch_size=batch_size)
        except VexecRangeError as exc:
            # Values left the int64-safe range at runtime.  Under 'auto'
            # that is the executor's limitation, not the program's error:
            # retry on the scalar interpreter (exact Python ints).
            if engine == "vec":
                raise
            reason = str(exc)
        else:
            return batch.finished_costs(), batch.unfinished_runs, "vec", ""
    interpreter = Interpreter(program, scheduler=scheduler, max_steps=max_steps)
    rng = np.random.default_rng(seed)
    costs: List[float] = []
    unfinished = 0
    for _ in range(runs):
        result = interpreter.run(initial_state, rng=rng)
        if not result.terminated:
            unfinished += 1
            continue
        costs.append(float(result.cost))
    return np.asarray(costs, dtype=float), unfinished, "scalar", reason


def summarise_costs(costs: np.ndarray, unfinished: int,
                    engine: str = "scalar",
                    fallback_reason: str = "") -> SampleStatistics:
    """Fold a sampled cost array into :class:`SampleStatistics`."""
    if len(costs) == 0:
        nan = float("nan")
        return SampleStatistics(nan, nan, nan, nan, nan, nan, nan, 0,
                                unfinished, engine, fallback_reason)
    data = np.asarray(costs, dtype=float)
    q1, median, q3 = np.percentile(data, [25, 50, 75])
    return SampleStatistics(
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if len(data) > 1 else 0.0,
        minimum=float(data.min()),
        maximum=float(data.max()),
        first_quartile=float(q1),
        median=float(median),
        third_quartile=float(q3),
        runs=len(data),
        unfinished_runs=unfinished,
        engine=engine,
        fallback_reason=fallback_reason,
    )


def estimate_expected_cost(program: ast.Program,
                           initial_state: Optional[State] = None,
                           runs: int = 1000,
                           seed: Seed = 0,
                           scheduler: Optional[Scheduler] = None,
                           max_steps: int = 1_000_000,
                           engine: str = "scalar",
                           batch_size: Optional[int] = None) -> SampleStatistics:
    """Sample ``runs`` executions and summarise the observed costs."""
    costs, unfinished, used, reason = sample_costs(
        program, initial_state, runs=runs, seed=seed, scheduler=scheduler,
        max_steps=max_steps, engine=engine, batch_size=batch_size)
    return summarise_costs(costs, unfinished, used, reason)


def sweep_expected_cost(program: ast.Program,
                        swept_variable: str,
                        values: Sequence[int],
                        fixed_state: Optional[State] = None,
                        runs: int = 500,
                        seed: Seed = 0,
                        scheduler: Optional[Scheduler] = None,
                        max_steps: int = 1_000_000,
                        engine: str = "scalar"
                        ) -> List[Tuple[int, SampleStatistics]]:
    """Estimate expected cost for each value of the swept input variable."""
    series: List[Tuple[int, SampleStatistics]] = []
    base = dict(fixed_state or {})
    seeds = spawn_seeds(seed, len(values))
    for value, run_seed in zip(values, seeds):
        state = dict(base)
        state[swept_variable] = int(value)
        stats = estimate_expected_cost(program, state, runs=runs, seed=run_seed,
                                       scheduler=scheduler, max_steps=max_steps,
                                       engine=engine)
        series.append((int(value), stats))
    return series


def relative_error(bound_value: float, measured_mean: float) -> float:
    """The absolute relative error (in percent) between bound and measurement.

    This matches the "Error(%)" column of Table 1: the mean absolute error
    between the measured expected cost and the inferred bound, normalised by
    the measured value.
    """
    if measured_mean == 0:
        return 0.0 if bound_value == 0 else float("inf")
    return abs(bound_value - measured_mean) / abs(measured_mean) * 100.0


def mean_relative_error(pairs: Iterable[Tuple[float, float]]) -> float:
    """Average relative error over (bound, measured) pairs (one per input)."""
    errors = [relative_error(bound, measured) for bound, measured in pairs]
    finite = [err for err in errors if err == err and err != float("inf")]
    if not finite:
        return float("nan")
    return sum(finite) / len(finite)


def histogram_of_costs(program: ast.Program,
                       initial_state: Optional[State] = None,
                       runs: int = 10_000,
                       bins: int = 40,
                       seed: Seed = 0,
                       max_steps: int = 1_000_000,
                       engine: str = "scalar",
                       batch_size: Optional[int] = None) -> CostHistogram:
    """Sampled cost histogram (Figure 8 left), with unfinished-run accounting."""
    costs, unfinished, used, _ = sample_costs(program, initial_state,
                                              runs=runs, seed=seed,
                                              max_steps=max_steps,
                                              engine=engine,
                                              batch_size=batch_size)
    data = np.asarray(costs, dtype=float)
    counts, edges = np.histogram(data, bins=bins)
    mean = float(data.mean()) if len(data) else float("nan")
    return CostHistogram(counts=counts, edges=edges, mean=mean,
                         runs=len(data), unfinished_runs=unfinished,
                         engine=used)
