"""Monte-Carlo estimation of expected resource usage.

The paper's evaluation (Sec. 7.2, Figure 8, Appendix F) compares the
statically inferred bounds against the *measured* expected number of ticks,
obtained by sampling each program many times for a range of inputs.  This
module is the Python replacement for the C++/GSL simulation harness:

* :func:`estimate_expected_cost` samples a program ``runs`` times for one
  input and returns :class:`SampleStatistics` (mean, spread, quartiles),
* :func:`sweep_expected_cost` repeats the estimation over a range of inputs
  for one swept variable while the others stay fixed -- exactly the set-up of
  the Appendix F candlestick plots,
* :func:`relative_error` computes the "Error (%)" column of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.lang import ast
from repro.semantics.interp import Interpreter, Scheduler

State = Dict[str, int]


@dataclass
class SampleStatistics:
    """Summary statistics of sampled program costs (one input valuation)."""

    mean: float
    std: float
    minimum: float
    maximum: float
    first_quartile: float
    median: float
    third_quartile: float
    runs: int
    unfinished_runs: int = 0

    def candlestick(self) -> Tuple[float, float, float, float]:
        """(low, q1, q3, high) -- the candlestick of the Appendix F plots."""
        return (self.minimum, self.first_quartile, self.third_quartile, self.maximum)

    def standard_error(self) -> float:
        if self.runs == 0:
            return float("nan")
        return self.std / (self.runs ** 0.5)


def estimate_expected_cost(program: ast.Program,
                           initial_state: Optional[State] = None,
                           runs: int = 1000,
                           seed: Optional[int] = 0,
                           scheduler: Optional[Scheduler] = None,
                           max_steps: int = 1_000_000) -> SampleStatistics:
    """Sample ``runs`` executions and summarise the observed costs."""
    interpreter = Interpreter(program, scheduler=scheduler, max_steps=max_steps)
    rng = np.random.default_rng(seed)
    costs: List[float] = []
    unfinished = 0
    for _ in range(runs):
        result = interpreter.run(initial_state, rng=rng)
        if not result.terminated:
            unfinished += 1
            continue
        costs.append(float(result.cost))
    if not costs:
        nan = float("nan")
        return SampleStatistics(nan, nan, nan, nan, nan, nan, nan, 0, unfinished)
    data = np.asarray(costs, dtype=float)
    q1, median, q3 = np.percentile(data, [25, 50, 75])
    return SampleStatistics(
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if len(data) > 1 else 0.0,
        minimum=float(data.min()),
        maximum=float(data.max()),
        first_quartile=float(q1),
        median=float(median),
        third_quartile=float(q3),
        runs=len(data),
        unfinished_runs=unfinished,
    )


def sweep_expected_cost(program: ast.Program,
                        swept_variable: str,
                        values: Sequence[int],
                        fixed_state: Optional[State] = None,
                        runs: int = 500,
                        seed: Optional[int] = 0,
                        scheduler: Optional[Scheduler] = None,
                        max_steps: int = 1_000_000
                        ) -> List[Tuple[int, SampleStatistics]]:
    """Estimate expected cost for each value of the swept input variable."""
    series: List[Tuple[int, SampleStatistics]] = []
    base = dict(fixed_state or {})
    for index, value in enumerate(values):
        state = dict(base)
        state[swept_variable] = int(value)
        run_seed = None if seed is None else seed + index
        stats = estimate_expected_cost(program, state, runs=runs, seed=run_seed,
                                       scheduler=scheduler, max_steps=max_steps)
        series.append((int(value), stats))
    return series


def relative_error(bound_value: float, measured_mean: float) -> float:
    """The absolute relative error (in percent) between bound and measurement.

    This matches the "Error(%)" column of Table 1: the mean absolute error
    between the measured expected cost and the inferred bound, normalised by
    the measured value.
    """
    if measured_mean == 0:
        return 0.0 if bound_value == 0 else float("inf")
    return abs(bound_value - measured_mean) / abs(measured_mean) * 100.0


def mean_relative_error(pairs: Iterable[Tuple[float, float]]) -> float:
    """Average relative error over (bound, measured) pairs (one per input)."""
    errors = [relative_error(bound, measured) for bound, measured in pairs]
    finite = [err for err in errors if err == err and err != float("inf")]
    if not finite:
        return float("nan")
    return sum(finite) / len(finite)


def histogram_of_costs(program: ast.Program,
                       initial_state: Optional[State] = None,
                       runs: int = 10_000,
                       bins: int = 40,
                       seed: Optional[int] = 0,
                       max_steps: int = 1_000_000
                       ) -> Tuple[np.ndarray, np.ndarray, float]:
    """Sampled cost histogram (Figure 8 left). Returns (counts, edges, mean)."""
    interpreter = Interpreter(program, max_steps=max_steps)
    rng = np.random.default_rng(seed)
    costs = []
    for _ in range(runs):
        result = interpreter.run(initial_state, rng=rng)
        if result.terminated:
            costs.append(float(result.cost))
    data = np.asarray(costs, dtype=float)
    counts, edges = np.histogram(data, bins=bins)
    return counts, edges, float(data.mean()) if len(data) else float("nan")
