"""Vectorised batch-of-runs executor for the Monte-Carlo evaluation.

The scalar closure interpreter (:mod:`repro.semantics.interp`) executes one
run at a time; the Figure 8 / Appendix F sweeps need tens of thousands of
runs per input point, which makes the per-node Python dispatch the dominant
cost of the evaluation harness.  This module executes a whole *batch* of
runs in lockstep over NumPy integer state arrays instead:

* the command tree is compiled once (structured compilation, mirroring the
  scalar closure compiler) into functions over ``(batch,)``-shaped ``int64``
  state arrays,
* ``if`` / ``while`` / probabilistic / non-deterministic branches are
  executed with *per-lane active masks* -- every lane follows exactly the
  control path it would follow under the scalar semantics, lanes that
  diverge are simply masked out of the other branch,
* distribution sampling is batched: every finite-support distribution is
  sampled by inverse-CDF lookup (``searchsorted``) over per-lane uniform
  draws,
* each lane owns a step budget and a cost accumulator; constant ``tick``
  amounts are scaled by the least common denominator so costs stay *exact*
  rationals (``cost_numerators / cost_denominator``),
* randomness comes from ``np.random.SeedSequence(seed).spawn(runs)``:
  lane ``i`` always consumes stream ``i`` regardless of ``batch_size``, so
  results are bit-reproducible independent of how the batch is split.

The scalar interpreter remains the oracle: deterministic programs produce
byte-identical results on both paths, probabilistic programs agree in
distribution (per-lane streams necessarily differ from the scalar
interpreter's single shared stream); see ``tests/test_vexec_equivalence.py``.

Programs the vectoriser cannot express -- non-integral constants inside
expressions, or a custom :class:`~repro.semantics.interp.Scheduler` that is
neither random, demonic nor angelic -- raise :class:`VectorisationError` at
compile time, and the ``auto`` sampler engine falls back to the scalar path.

Lane state is ``int64`` where the scalar oracle uses arbitrary-precision
Python ints.  Silent wrap-around is guarded against: every value written to
state or the cost accumulator is range-checked against 2^61,
multiplications are pre-checked, and constant ticks are bounded at compile
time via the step budget -- out-of-range programs raise
:class:`~repro.lang.errors.EvaluationError` (or are rejected at compile
time) instead of producing wrong numbers.  Deeply chained additions of
values near the 2^61 ceiling inside one expression could still wrap before
the post-write check; values that large are far outside the benchmark
domain, and the scalar engine remains available for them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.lang import ast
from repro.lang.distributions import Distribution
from repro.lang.errors import EvaluationError
from repro.semantics.interp import (
    AngelicScheduler,
    DemonicScheduler,
    ExecutionResult,
    RandomScheduler,
    Scheduler,
)

__all__ = ["BatchResult", "VecInterpreter", "VectorisationError",
           "VexecRangeError", "fresh_seedseq"]

#: How many uniforms each lane buffers per refill of its private stream.
_STREAM_CHUNK = 256

#: Default ceiling on lanes executed at once (bounds peak memory).
_DEFAULT_MAX_BATCH = 65_536

#: Magnitude ceiling for lane values.  The scalar oracle computes with
#: arbitrary-precision Python ints; int64 lanes would wrap *silently*, so
#: every value written to state/cost is checked against this bound (and
#: multiplications are pre-checked), turning would-be overflow into a loud
#: ``EvaluationError`` instead of confidently wrong results.  2**61 leaves
#: headroom so a single add/subtract of two in-range values cannot wrap
#: before the post-write check sees it.
_VALUE_LIMIT = 1 << 61


def _check_range(values) -> None:
    arr = np.asarray(values)
    if arr.size and int(np.abs(arr).max()) > _VALUE_LIMIT:
        raise VexecRangeError(
            "value magnitude exceeds the vectorised executor's integer "
            "range (2^61); use the scalar engine for this program")


def _masked_abs_bound(values, mask) -> float:
    """Largest magnitude among the *active* lanes (masked-out lanes may
    hold values this expression would never see under scalar semantics)."""
    if np.ndim(values) == 0:
        return abs(float(values))
    active = np.asarray(values)[mask]
    return float(np.abs(active).max()) if active.size else 0.0


def _check_product(bound_left: float, bound_right: float) -> None:
    """Pre-check for multiplications: products can blow far past int64 in
    one step, so a post-hoc range check would miss the wrap."""
    if bound_left * bound_right > float(_VALUE_LIMIT):
        raise VexecRangeError(
            "multiplication may exceed the vectorised executor's integer "
            "range (2^61); use the scalar engine for this program")


class VectorisationError(Exception):
    """The program (or scheduler) cannot be compiled to the batch executor."""


class VexecRangeError(EvaluationError):
    """A lane value left the executor's int64-safe range at *runtime*.

    Subclasses :class:`EvaluationError` (the run genuinely cannot proceed
    on this engine) but is distinguishable so the ``auto`` sampler engine
    can retry on the scalar interpreter, whose exact Python ints have no
    such limit.  Genuine program errors (division by zero, call-depth)
    stay plain ``EvaluationError`` -- the scalar engine would raise those
    too, so retrying would be wasted work.
    """


def fresh_seedseq(seed: Union[None, int, np.random.SeedSequence]
                  ) -> np.random.SeedSequence:
    """A SeedSequence for ``seed`` that is safe to ``spawn`` from.

    ``SeedSequence.spawn`` advances the parent's ``n_children_spawned``
    counter, so spawning from a caller-provided object would both mutate the
    caller's state and make repeated calls non-reproducible.  Rebuild an
    identical sequence (same entropy and spawn key, zero children spawned)
    instead.
    """
    if isinstance(seed, np.random.SeedSequence):
        return np.random.SeedSequence(entropy=seed.entropy,
                                      spawn_key=seed.spawn_key,
                                      pool_size=seed.pool_size)
    return np.random.SeedSequence(seed)


# ---------------------------------------------------------------------------
# Per-lane random streams
# ---------------------------------------------------------------------------


class _LaneStreams:
    """Buffered per-lane uniform streams.

    Each lane draws from its own ``Generator`` (seeded from its own
    ``SeedSequence`` child), so a lane's draw sequence depends only on its
    global run index and its own control path -- never on the other lanes
    or on the batch split.  Draws are buffered ``_STREAM_CHUNK`` at a time
    so the per-lane Python cost is paid once per chunk, not once per draw.
    """

    def __init__(self, seed_seqs: Sequence[np.random.SeedSequence],
                 chunk: int = _STREAM_CHUNK) -> None:
        self._gens = [np.random.default_rng(seq) for seq in seed_seqs]
        width = len(self._gens)
        self._chunk = chunk
        self._buffer = np.empty((width, chunk), dtype=np.float64)
        self._position = np.full(width, chunk, dtype=np.int64)

    def uniform(self, mask: np.ndarray) -> np.ndarray:
        """One uniform in [0, 1) per active lane (full-width array)."""
        lanes = np.nonzero(mask)[0]
        position = self._position
        exhausted = lanes[position[lanes] >= self._chunk]
        if exhausted.size:
            buffer, gens, chunk = self._buffer, self._gens, self._chunk
            for lane in exhausted.tolist():
                buffer[lane] = gens[lane].random(chunk)
                position[lane] = 0
        out = np.zeros(len(position), dtype=np.float64)
        taken = position[lanes]
        out[lanes] = self._buffer[lanes, taken]
        position[lanes] = taken + 1
        return out


# ---------------------------------------------------------------------------
# Batch state
# ---------------------------------------------------------------------------


class _Ctx:
    """Mutable per-batch execution state (one lane per run)."""

    __slots__ = ("state", "cost", "steps", "stopped", "exhausted",
                 "streams", "max_steps", "width")

    def __init__(self, width: int, variables: Sequence[str],
                 init: Dict[str, int], streams: _LaneStreams,
                 max_steps: int) -> None:
        self.width = width
        self.state = {var: np.full(width, init.get(var, 0), dtype=np.int64)
                      for var in variables}
        self.cost = np.zeros(width, dtype=np.int64)
        self.steps = np.zeros(width, dtype=np.int64)
        self.stopped = np.zeros(width, dtype=bool)      # assert/assume/abort
        self.exhausted = np.zeros(width, dtype=bool)    # step budget
        self.streams = streams
        self.max_steps = max_steps


def _charge(ctx: _Ctx, mask: np.ndarray) -> np.ndarray:
    """Charge one step to every active lane; retire budget-exhausted lanes."""
    ctx.steps += mask
    over = ctx.steps > ctx.max_steps
    over &= mask
    if over.any():
        ctx.exhausted |= over
        mask = mask & ~over
    return mask


@dataclass
class BatchResult:
    """Outcome of one batched execution (`runs` lanes).

    Costs are exact: lane ``i`` consumed
    ``Fraction(cost_numerators[i], cost_denominator)`` resource units.
    """

    runs: int
    cost_numerators: np.ndarray
    cost_denominator: int
    steps: np.ndarray
    terminated: np.ndarray
    assertion_failed: np.ndarray
    state: Dict[str, np.ndarray]

    def costs(self) -> np.ndarray:
        """Per-lane costs as float64 (num / den)."""
        return self.cost_numerators / float(self.cost_denominator)

    def cost_fractions(self) -> List[Fraction]:
        den = self.cost_denominator
        return [Fraction(int(num), den) for num in self.cost_numerators]

    def finished_costs(self) -> np.ndarray:
        """Float costs of the lanes that terminated within budget."""
        return self.costs()[self.terminated]

    @property
    def unfinished_runs(self) -> int:
        return int(self.runs - np.count_nonzero(self.terminated))

    def result_at(self, lane: int) -> ExecutionResult:
        """Lane ``lane`` repackaged as a scalar :class:`ExecutionResult`."""
        state = {var: int(values[lane]) for var, values in self.state.items()}
        return ExecutionResult(
            state=state,
            cost=Fraction(int(self.cost_numerators[lane]),
                          self.cost_denominator),
            steps=int(self.steps[lane]),
            terminated=bool(self.terminated[lane]),
            assertion_failed=bool(self.assertion_failed[lane]))


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class VecInterpreter:
    """Executes a program over a whole batch of runs in lockstep.

    Compilation happens eagerly in the constructor so unsupported programs
    raise :class:`VectorisationError` before any work is done (the ``auto``
    sampler engine relies on this to fall back to the scalar interpreter).
    """

    def __init__(self, program: ast.Program,
                 scheduler: Optional[Scheduler] = None,
                 max_steps: int = 1_000_000,
                 max_call_depth: int = 512) -> None:
        self.program = program
        self.scheduler = scheduler if scheduler is not None else RandomScheduler()
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        self._choice_mode = self._resolve_choice_mode(self.scheduler)
        self.cost_denominator = self._cost_scale(program)
        self._variables = sorted(program.variables())
        self._uses_randomness = self._needs_streams(program, self._choice_mode)
        self._proc_fns: Dict[str, object] = {}
        for name, proc in program.procedures.items():
            self._proc_fns[name] = self._compile_command(proc.body)
        self._main_fn = self._proc_fns[program.main]

    # -- public API ---------------------------------------------------------

    def run_batch(self,
                  initial_state: Optional[Dict[str, Union[int, Fraction]]] = None,
                  runs: int = 1000,
                  seed: Union[None, int, np.random.SeedSequence] = 0,
                  batch_size: Optional[int] = None) -> BatchResult:
        """Execute ``runs`` lanes from ``initial_state``.

        ``seed`` may be an int, ``None`` (fresh OS entropy) or a
        ``SeedSequence``.  ``batch_size`` only bounds peak memory: lane
        ``i`` always consumes the ``i``-th spawned stream, so results are
        identical for every split.
        """
        runs = int(runs)
        init: Dict[str, int] = {}
        if initial_state:
            for var, value in initial_state.items():
                init[str(var)] = int(value)
            _check_range(list(init.values()))
        # Keep initial-state variables the program never mentions: the
        # scalar interpreter carries them through to the final state.
        variables = sorted(set(self._variables) | set(init))
        children: Sequence[Optional[np.random.SeedSequence]]
        if self._uses_randomness and runs:
            children = fresh_seedseq(seed).spawn(runs)
        else:
            children = [None] * runs
        if batch_size is None:
            batch_size = min(runs, _DEFAULT_MAX_BATCH)
        batch_size = max(1, int(batch_size))

        pieces: List[_Ctx] = []
        for low in range(0, runs, batch_size):
            width = min(batch_size, runs - low)
            streams = _LaneStreams(children[low:low + width]) \
                if self._uses_randomness else None
            ctx = _Ctx(width, variables, init, streams, self.max_steps)
            self._main_fn(ctx, np.ones(width, dtype=bool), 0)
            pieces.append(ctx)

        def gather(select) -> np.ndarray:
            if not pieces:
                return np.zeros(0, dtype=np.int64)
            return np.concatenate([select(ctx) for ctx in pieces])

        state = {var: gather(lambda ctx, v=var: ctx.state[v])
                 for var in variables}
        return BatchResult(
            runs=runs,
            cost_numerators=gather(lambda ctx: ctx.cost),
            cost_denominator=self.cost_denominator,
            steps=gather(lambda ctx: ctx.steps),
            terminated=~gather(lambda ctx: ctx.exhausted).astype(bool)
            if pieces else np.zeros(0, dtype=bool),
            assertion_failed=gather(lambda ctx: ctx.stopped).astype(bool)
            if pieces else np.zeros(0, dtype=bool),
            state=state)

    # -- compilation helpers ------------------------------------------------

    @staticmethod
    def _resolve_choice_mode(scheduler: Scheduler) -> Optional[str]:
        # Exact type checks: a subclass may override ``choose`` with
        # state-dependent behaviour the vectoriser cannot reproduce.
        if type(scheduler) is RandomScheduler:
            return "random"
        if type(scheduler) is DemonicScheduler:
            return "left"
        if type(scheduler) is AngelicScheduler:
            return "right"
        return None

    @staticmethod
    def _needs_streams(program: ast.Program, choice_mode: Optional[str]) -> bool:
        """Whether any lane will ever draw a uniform (streams can be skipped
        entirely for deterministic programs and deterministic schedulers)."""
        def has_star(expr: ast.Expr) -> bool:
            if isinstance(expr, ast.Star):
                return True
            return any(has_star(child) for child in expr.children())

        for node in program.iter_nodes():
            if isinstance(node, (ast.Sample, ast.ProbChoice)):
                return True
            if choice_mode == "random":
                if isinstance(node, ast.NonDetChoice):
                    return True
                if isinstance(node, (ast.Assert, ast.Assume, ast.If, ast.While)) \
                        and has_star(node.condition):
                    return True
        return False

    @staticmethod
    def _cost_scale(program: ast.Program) -> int:
        """LCM of the constant tick denominators (keeps costs integral)."""
        scale = 1
        for node in program.iter_nodes():
            if isinstance(node, ast.Tick) and node.is_constant:
                scale = math.lcm(scale, node.amount.denominator)
        return scale

    def _choose(self, ctx: _Ctx, mask: np.ndarray) -> np.ndarray:
        """Per-lane scheduler decision: True = take the left/then branch."""
        if self._choice_mode == "random":
            return mask & (ctx.streams.uniform(mask) < 0.5)
        if self._choice_mode == "left":
            return mask.copy()
        return np.zeros_like(mask)

    def _require_choice_mode(self, what: str, node=None) -> None:
        if self._choice_mode is None:
            raise VectorisationError(
                f"scheduler {type(self.scheduler).__name__} cannot resolve "
                f"{what}{ast.span_suffix(node)} lane-wise; "
                f"use the scalar interpreter")

    # -- expressions --------------------------------------------------------

    def _compile_expr(self, expr: ast.Expr):
        if isinstance(expr, ast.Const):
            value = expr.value
            if value.denominator != 1:
                raise VectorisationError(
                    f"non-integral constant {value}{ast.span_suffix(expr)} "
                    f"cannot be executed over integer state arrays")
            constant = int(value)
            if abs(constant) > _VALUE_LIMIT:
                # Reject at compile time so engine='auto' can fall back to
                # the scalar interpreter (which computes with exact ints).
                raise VectorisationError(
                    f"constant {constant}{ast.span_suffix(expr)} exceeds the "
                    f"vectorised executor's integer range (2^61)")
            return lambda ctx, mask: constant
        if isinstance(expr, ast.Var):
            name = expr.name
            return lambda ctx, mask: ctx.state[name]
        if isinstance(expr, ast.Star):
            def star(ctx, mask):
                raise EvaluationError("'*' may only appear as a branching guard")
            return star
        if isinstance(expr, ast.Not):
            operand = self._compile_expr(expr.operand)

            def negate(ctx, mask):
                value = operand(ctx, mask)
                return (np.asarray(value) == 0).astype(np.int64)
            return negate
        if isinstance(expr, ast.BinOp):
            return self._compile_binop(expr)
        raise VectorisationError(
            f"cannot vectorise expression {expr}{ast.span_suffix(expr)}")

    def _compile_binop(self, expr: ast.BinOp):
        op = expr.op
        if op in ("and", "or"):
            left_bool = self._compile_bool(expr.left)
            right_bool = self._compile_bool(expr.right)
            # int64 results for the same reason as the comparisons below.
            if op == "and":
                # Lane-wise short-circuit: the right operand only runs on
                # lanes where the left side held (matching the scalar
                # interpreter's guard behaviour for e.g. division guards).
                def conjunction(ctx, mask):
                    taken = mask & np.asarray(left_bool(ctx, mask))
                    return (taken & np.asarray(right_bool(ctx, taken))
                            ).astype(np.int64)
                return conjunction

            def disjunction(ctx, mask):
                left = mask & np.asarray(left_bool(ctx, mask))
                remaining = mask & ~left
                return (left | (remaining
                                & np.asarray(right_bool(ctx, remaining)))
                        ).astype(np.int64)
            return disjunction

        left = self._compile_expr(expr.left)
        right = self._compile_expr(expr.right)
        if op == "+":
            return lambda ctx, mask: left(ctx, mask) + right(ctx, mask)
        if op == "-":
            return lambda ctx, mask: left(ctx, mask) - right(ctx, mask)
        if op == "*":
            def multiply(ctx, mask):
                lhs = left(ctx, mask)
                rhs = right(ctx, mask)
                _check_product(_masked_abs_bound(lhs, mask),
                               _masked_abs_bound(rhs, mask))
                return lhs * rhs
            return multiply
        if op in ("div", "mod"):
            def divide(ctx, mask):
                numerator = left(ctx, mask)
                denominator = np.asarray(right(ctx, mask))
                zero = denominator == 0
                if denominator.ndim == 0:
                    if zero and mask.any():
                        raise EvaluationError(
                            "division by zero" if op == "div" else "modulo by zero")
                    safe = denominator
                else:
                    if np.any(zero & mask):
                        raise EvaluationError(
                            "division by zero" if op == "div" else "modulo by zero")
                    safe = np.where(zero, 1, denominator)
                # NumPy's integer // and % use floor semantics, matching
                # Python's operators on negative operands.
                return numerator // safe if op == "div" else numerator % safe
            return divide
        # Comparisons yield int64 0/1, like the scalar oracle's int(l < r):
        # numpy bool arrays behave like logical values under +/- (True+True
        # is True), which would diverge in arithmetic contexts.
        if op == "==":
            return lambda ctx, mask: np.asarray(
                left(ctx, mask) == right(ctx, mask)).astype(np.int64)
        if op == "!=":
            return lambda ctx, mask: np.asarray(
                left(ctx, mask) != right(ctx, mask)).astype(np.int64)
        if op == "<":
            return lambda ctx, mask: np.asarray(
                left(ctx, mask) < right(ctx, mask)).astype(np.int64)
        if op == "<=":
            return lambda ctx, mask: np.asarray(
                left(ctx, mask) <= right(ctx, mask)).astype(np.int64)
        if op == ">":
            return lambda ctx, mask: np.asarray(
                left(ctx, mask) > right(ctx, mask)).astype(np.int64)
        if op == ">=":
            return lambda ctx, mask: np.asarray(
                left(ctx, mask) >= right(ctx, mask)).astype(np.int64)
        raise VectorisationError(f"unknown operator {op!r}")

    def _compile_bool(self, expr: ast.Expr):
        if isinstance(expr, ast.Star):
            self._require_choice_mode("a '*' guard", expr)
            return lambda ctx, mask: self._choose(ctx, mask)
        inner = self._compile_expr(expr)
        return lambda ctx, mask: np.asarray(inner(ctx, mask)) != 0

    # -- distributions ------------------------------------------------------

    @staticmethod
    def _compile_distribution(distribution: Distribution):
        support = distribution.support()
        values = np.array([value for value, _ in support], dtype=np.int64)
        cumulative = np.cumsum([float(prob) for _, prob in support])
        top = len(values) - 1

        def draw(ctx, mask):
            u = ctx.streams.uniform(mask)
            # Inverse CDF: first index whose cumulative mass exceeds u --
            # exactly the scalar Distribution.sample walk, vectorised.
            index = np.searchsorted(cumulative, u, side="right")
            return values[np.minimum(index, top)]
        return draw

    # -- commands -----------------------------------------------------------

    def _compile_command(self, command: ast.Command):
        if isinstance(command, ast.Skip):
            return lambda ctx, mask, depth: _charge(ctx, mask)
        if isinstance(command, ast.Abort):
            def run_abort(ctx, mask, depth):
                mask = _charge(ctx, mask)
                ctx.stopped |= mask
                return np.zeros_like(mask)
            return run_abort
        if isinstance(command, (ast.Assert, ast.Assume)):
            condition = self._compile_bool(command.condition)

            def run_assert(ctx, mask, depth):
                mask = _charge(ctx, mask)
                if not mask.any():
                    return mask
                holds = np.asarray(condition(ctx, mask))
                failed = mask & ~holds
                if failed.any():
                    ctx.stopped |= failed
                    mask = mask & holds
                return mask
            return run_assert
        if isinstance(command, ast.Tick):
            return self._compile_tick(command)
        if isinstance(command, ast.Assign):
            target = command.target
            value = self._compile_expr(command.expr)

            def run_assign(ctx, mask, depth):
                mask = _charge(ctx, mask)
                if mask.any():
                    result = np.asarray(value(ctx, mask), dtype=np.int64)
                    _check_range(result[mask] if result.ndim else result)
                    np.copyto(ctx.state[target], result, where=mask)
                return mask
            return run_assign
        if isinstance(command, ast.Sample):
            return self._compile_sample(command)
        if isinstance(command, ast.Seq):
            subs = [self._compile_command(sub) for sub in command.commands]

            def run_seq(ctx, mask, depth):
                mask = _charge(ctx, mask)
                for sub in subs:
                    if not mask.any():
                        return mask
                    mask = sub(ctx, mask, depth)
                return mask
            return run_seq
        if isinstance(command, ast.If):
            condition = self._compile_bool(command.condition)
            then_branch = self._compile_command(command.then_branch)
            else_branch = self._compile_command(command.else_branch)

            def run_if(ctx, mask, depth):
                mask = _charge(ctx, mask)
                if not mask.any():
                    return mask
                holds = np.asarray(condition(ctx, mask))
                taken = mask & holds
                other = mask & ~holds
                if taken.any():
                    taken = then_branch(ctx, taken, depth)
                if other.any():
                    other = else_branch(ctx, other, depth)
                return taken | other
            return run_if
        if isinstance(command, ast.NonDetChoice):
            self._require_choice_mode("'if *'", command)
            left = self._compile_command(command.left)
            right = self._compile_command(command.right)

            def run_nondet(ctx, mask, depth):
                mask = _charge(ctx, mask)
                if not mask.any():
                    return mask
                taken = self._choose(ctx, mask)
                other = mask & ~taken
                if taken.any():
                    taken = left(ctx, taken, depth)
                if other.any():
                    other = right(ctx, other, depth)
                return taken | other
            return run_nondet
        if isinstance(command, ast.ProbChoice):
            probability = float(command.probability)
            left = self._compile_command(command.left)
            right = self._compile_command(command.right)

            def run_prob(ctx, mask, depth):
                mask = _charge(ctx, mask)
                if not mask.any():
                    return mask
                u = ctx.streams.uniform(mask)
                taken = mask & (u < probability)
                other = mask & ~taken
                if taken.any():
                    taken = left(ctx, taken, depth)
                if other.any():
                    other = right(ctx, other, depth)
                return taken | other
            return run_prob
        if isinstance(command, ast.While):
            condition = self._compile_bool(command.condition)
            body = self._compile_command(command.body)

            def run_while(ctx, mask, depth):
                mask = _charge(ctx, mask)
                if not mask.any():
                    return mask
                holds = np.asarray(condition(ctx, mask))
                live = mask & holds
                done = mask & ~holds
                while live.any():
                    live = body(ctx, live, depth)
                    live = _charge(ctx, live)
                    if not live.any():
                        break
                    holds = np.asarray(condition(ctx, live))
                    done |= live & ~holds
                    live = live & holds
                return done
            return run_while
        if isinstance(command, ast.Call):
            name = command.procedure
            proc_fns = self._proc_fns
            limit = self.max_call_depth

            def run_call(ctx, mask, depth):
                mask = _charge(ctx, mask)
                if not mask.any():
                    return mask
                if depth >= limit:
                    raise EvaluationError(f"call depth limit {limit} exceeded")
                callee = proc_fns.get(name)
                if callee is None:
                    raise EvaluationError(f"undefined procedure {name!r}")
                return callee(ctx, mask, depth + 1)
            return run_call
        raise VectorisationError(
            f"cannot vectorise command {type(command).__name__}"
            f"{ast.span_suffix(command)}")

    def _compile_tick(self, command: ast.Tick):
        scale = self.cost_denominator
        if command.is_constant:
            amount = command.amount * scale
            assert amount.denominator == 1  # scale is the LCM by construction
            numerator = int(amount)
            # The step budget bounds how often this tick can fire, so the
            # accumulator range can be proven at compile time -- no per-hit
            # runtime check needed on this hot path.
            if abs(numerator) * (self.max_steps + 1) > _VALUE_LIMIT:
                raise VectorisationError(
                    f"constant tick amount {command.amount}"
                    f"{ast.span_suffix(command)} could overflow the "
                    f"vectorised cost accumulator within the step budget; "
                    f"use the scalar engine")

            def run_tick(ctx, mask, depth):
                mask = _charge(ctx, mask)
                if mask.any():
                    np.add(ctx.cost, numerator, out=ctx.cost, where=mask)
                return mask
            return run_tick
        amount_fn = self._compile_expr(command.amount)

        def run_tick_expr(ctx, mask, depth):
            mask = _charge(ctx, mask)
            if mask.any():
                amount = np.asarray(amount_fn(ctx, mask), dtype=np.int64)
                _check_product(_masked_abs_bound(amount, mask), float(scale))
                np.add(ctx.cost, amount * scale, out=ctx.cost, where=mask)
                _check_range(ctx.cost)
            return mask
        return run_tick_expr

    def _compile_sample(self, command: ast.Sample):
        target = command.target
        base_fn = self._compile_expr(command.expr)
        draw = self._compile_distribution(command.distribution)
        op = command.op
        # The distribution's support is finite and known at compile time,
        # so the multiplicative overflow pre-check only needs the base's
        # runtime bound.
        drawn_bound = float(max(abs(command.distribution.min_value()),
                                abs(command.distribution.max_value())))

        def run_sample(ctx, mask, depth):
            mask = _charge(ctx, mask)
            if not mask.any():
                return mask
            base = base_fn(ctx, mask)
            drawn = draw(ctx, mask)
            if op == "+":
                result = base + drawn
            elif op == "-":
                result = base - drawn
            else:
                _check_product(_masked_abs_bound(base, mask), drawn_bound)
                result = base * drawn
            result = np.asarray(result, dtype=np.int64)
            _check_range(result[mask] if result.ndim else result)
            np.copyto(ctx.state[target], result, where=mask)
            return mask
        return run_sample
