"""Batch-analysis orchestration: jobs, scheduler, persistent store, server.

This layer turns the one-shot analyzer (:mod:`repro.core.analyzer`) into a
throughput-oriented system:

* :mod:`repro.service.jobs` -- picklable, content-addressed analysis jobs
  and JSON-able results (bound + derivation certificate included);
* :mod:`repro.service.scheduler` -- multiprocess fan-out with per-worker
  warm entailment engines, per-job timeouts, deterministic result order,
  and supervision: pool rebuilds, retry/backoff, poison-job quarantine and
  the graceful-degradation ladder;
* :mod:`repro.service.retry` -- the deterministic retry/backoff policy the
  supervisor runs under;
* :mod:`repro.service.faults` -- the seeded fault-injection registry behind
  the chaos tests and the CI chaos leg;
* :mod:`repro.service.store` -- the on-disk content-addressed result cache
  (checksummed records, corrupt-entry quarantine);
* :mod:`repro.service.server` -- the ``repro serve`` JSON request loop.

See ARCHITECTURE.md for where this sits in the layer cake.
"""

from repro.service.faults import (FaultRegistry, FaultSpec, InjectedFault,
                                  unit_fraction)
from repro.service.jobs import (AnalysisJob, JobResult, bound_from_payload,
                                job_from_benchmark, job_from_file, run_job)
from repro.service.retry import RetryPolicy
from repro.service.scheduler import (BatchReport, JobOutcome, SchedulerConfig,
                                     default_worker_count, run_batch, run_jobs)
from repro.service.server import AnalysisServer, serve_stdio
from repro.service.store import ResultStore, default_cache_dir

__all__ = [
    "AnalysisJob", "JobResult", "bound_from_payload", "job_from_benchmark",
    "job_from_file", "run_job",
    "BatchReport", "JobOutcome", "SchedulerConfig", "default_worker_count",
    "run_batch", "run_jobs",
    "AnalysisServer", "serve_stdio",
    "ResultStore", "default_cache_dir",
    "FaultRegistry", "FaultSpec", "InjectedFault", "unit_fraction",
    "RetryPolicy",
]
