"""Hot-entry in-memory cache tier above the persistent result store.

The content-addressed disk store (:mod:`repro.service.store`) makes repeat
analyses cheap -- but "cheap" still means a file open, a JSON parse and a
checksum verification per hit, which at gateway request rates is the hot
path.  :class:`HotResultCache` is the tier above it: a size-bounded LRU of
fully deserialised :class:`~repro.service.jobs.JobResult` objects keyed by
job hash, consulted before any disk I/O.

Design points:

* **bounded** -- at most ``max_entries`` records; inserting beyond the
  bound evicts the least-recently-used entry (and counts it), so a gateway
  serving an unbounded stream of distinct programs holds steady memory;
* **thread-safe** -- the gateway touches the cache from the asyncio event
  loop *and* from dispatcher threads, so every operation holds one lock
  (the critical sections are dict moves, far cheaper than the disk tier
  they shield);
* **stats-instrumented** -- hits/misses/puts/evictions and the derived hit
  rate are first-class, reported through gateway ``stats``/``health`` ops
  and recorded by the ``perfsmoke --serve`` bench;
* **cacheable-only** -- like the disk store, only results whose status is a
  deterministic property of the job content are kept
  (:attr:`JobResult.cacheable`), so a timeout can never shadow a future
  successful run.

Results are shared by reference (they are treated as immutable once
produced), so a hit costs no copy; callers must not mutate returned
records.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

from repro.service.jobs import JobResult

#: Default hot-tier capacity: comfortably the whole Table 1 suite plus a
#: working set of ad-hoc requests, at a few KB per deserialised record.
DEFAULT_HOT_CACHE_SIZE = 256


class CacheStats:
    """Hit/miss/eviction counters of one :class:`HotResultCache`."""

    __slots__ = ("hits", "misses", "puts", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "evictions": self.evictions,
                "hit_rate": round(self.hit_rate(), 4)}

    def __repr__(self) -> str:
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"puts={self.puts}, evictions={self.evictions})")


class HotResultCache:
    """Thread-safe, size-bounded LRU of :class:`JobResult` by job hash."""

    def __init__(self, max_entries: int = DEFAULT_HOT_CACHE_SIZE) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1 (use no cache at "
                             "all to disable the hot tier)")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, JobResult]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, job_hash: str) -> Optional[JobResult]:
        """The hot entry for ``job_hash`` (refreshing its recency), or None."""
        with self._lock:
            result = self._entries.get(job_hash)
            if result is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(job_hash)
            self.stats.hits += 1
            return result

    def put(self, result: JobResult) -> bool:
        """Insert a cacheable result; True when it was kept.

        Re-inserting an existing hash refreshes its recency without
        counting a new put (store hits are re-announced on every request).
        """
        if not result.cacheable:
            return False
        with self._lock:
            if result.job_hash in self._entries:
                self._entries.move_to_end(result.job_hash)
                return True
            self._entries[result.job_hash] = result
            self.stats.puts += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return True

    def __contains__(self, job_hash: str) -> bool:
        with self._lock:
            return job_hash in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> int:
        """Drop every entry; return how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def as_dict(self) -> Dict[str, object]:
        """JSON-able snapshot for stats/health endpoints."""
        with self._lock:
            entries = len(self._entries)
        payload = self.stats.as_dict()
        payload.update({"entries": entries, "max_entries": self.max_entries})
        return payload

    def __repr__(self) -> str:
        return (f"HotResultCache({len(self)}/{self.max_entries}, "
                f"{self.stats!r})")
