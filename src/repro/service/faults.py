"""Deterministic, seeded fault injection for the service layer.

The supervision machinery of :mod:`repro.service.scheduler` (pool rebuild,
retry/backoff, poison-job quarantine, the degradation ladder) and the store
hardening of :mod:`repro.service.store` (quarantine, checksums, crash-safe
writes) only earn their keep if they can be *exercised*: a fault that cannot
be reproduced cannot be tested, and a chaos run whose faults move around
between invocations cannot assert anything about recovery.  This module is
the single switchboard for injecting infrastructure faults into otherwise
untouched product code paths:

* product code calls :func:`fire` at a handful of **sites** (worker job
  entry, store read/write, engine projection).  With no registry installed
  the call is a cheap no-op -- production never pays more than one ``is
  None`` check per site;
* tests and the CI chaos leg install a :class:`FaultRegistry` (directly via
  :func:`configure`, or through the ``$REPRO_FAULTS`` environment variable)
  describing *which* faults fire *where* and *how often*;
* every decision is **deterministic**: whether a fault fires depends only on
  the registry seed, the fault kind and the site key (for workers:
  ``<job_hash>:<attempt>``), never on wall clock, pid or scheduling order.
  Re-running a chaos batch replays the exact same fault schedule, so the
  chaos gate can assert byte-identical recovery.

Fault kinds and their sites:

=================== ================ ==========================================
kind                site             effect
=================== ================ ==========================================
``worker-crash``    ``worker``       ``os._exit(70)`` -- hard worker death,
                                     breaks the whole ``ProcessPoolExecutor``
``worker-hang``     ``worker``       sleep ``duration`` seconds (exercises the
                                     timeout/degradation path)
``store-corrupt``   ``store.get``    clobber the record on disk before the
                                     read (exercises quarantine)
``store-write-fail`` ``store.put``   raise :class:`InjectedFault` (an
                                     ``OSError``) instead of writing
``store-write-slow`` ``store.put``   sleep ``duration`` seconds, then write
``store-kill``      ``store.put``    leave a partial temp file behind (as a
                                     kill -9 mid-write would) and raise
``fm-cap``          ``engine.project`` raise
                                     :class:`~repro.logic.fourier_motzkin.ConstraintCapExceeded`
                                     (exercises the domain-fallback rung)
=================== ================ ==========================================

``$REPRO_FAULTS`` grammar (semicolon-separated specs, comma-separated
key=value parameters)::

    REPRO_FAULTS='worker-crash:p=0.2;store-corrupt:p=0.5'
    REPRO_FAULTS_SEED=42

Worker faults only fire inside pool workers (the scheduler tags pool
execution); an injected ``os._exit`` can therefore never take down the
parent process, ``repro serve``, or an inline (``workers=0``) batch.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Environment variables switching fault injection on without code changes.
FAULTS_ENV = "REPRO_FAULTS"
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"

#: Exit status used by the injected hard worker crash (chosen to be
#: recognisable in worker-death post-mortems; BSD's EX_SOFTWARE).
CRASH_EXIT_STATUS = 70

#: Known fault kinds per injection site (documentation + validation).
SITE_KINDS: Dict[str, Tuple[str, ...]] = {
    "worker": ("worker-crash", "worker-hang"),
    "store.get": ("store-corrupt",),
    "store.put": ("store-write-fail", "store-write-slow", "store-kill"),
    "engine.project": ("fm-cap",),
}

_KIND_SITE: Dict[str, str] = {kind: site
                              for site, kinds in SITE_KINDS.items()
                              for kind in kinds}


class InjectedFault(OSError):
    """An injected infrastructure fault (store write failures and friends).

    Subclasses ``OSError`` so product code exercising its real error
    handling (``except OSError``) treats injected faults exactly like the
    genuine article.
    """


def unit_fraction(*parts: object) -> float:
    """A deterministic pseudo-random fraction in ``[0, 1)`` from ``parts``.

    SHA-256 over the joined string representation: stable across processes,
    platforms and Python hash randomisation, so fault decisions (and the
    retry policy's jitter) are reproducible everywhere.
    """
    payload = "|".join(str(part) for part in parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class FaultSpec:
    """One configured fault: what fires, where, how often."""

    kind: str
    #: Probability of firing per (kind, key) pair, decided deterministically
    #: from the registry seed.
    probability: float = 1.0
    #: Substring filter on the site key ("" = every key).  Worker keys are
    #: ``<job_hash>:<attempt>``, store keys are the record hash, engine keys
    #: are the active domain name -- so a spec can target one job, one
    #: attempt, or one backend.
    match: str = ""
    #: Stop firing after this many activations in this process (None = no
    #: limit).  Counted per process; forked workers inherit the parent's
    #: count at fork time.
    limit: Optional[int] = None
    #: Sleep length for ``worker-hang``/``store-write-slow``.
    duration: float = 30.0

    @property
    def site(self) -> str:
        site = _KIND_SITE.get(self.kind)
        if site is None:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: "
                f"{', '.join(sorted(_KIND_SITE))}")
        return site

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "site": self.site,
                "probability": self.probability, "match": self.match,
                "limit": self.limit, "duration": self.duration}


@dataclass
class FaultEvent:
    """One fault that actually fired (what ends up in ``JobResult.fault_events``)."""

    site: str
    kind: str
    key: str
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"site": self.site, "kind": self.kind,
                                   "key": self.key}
        if self.detail:
            data["detail"] = self.detail
        return data


class FaultRegistry:
    """The active fault configuration plus its activation log."""

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0) -> None:
        self.specs = tuple(specs)
        for spec in self.specs:
            spec.site  # noqa: B018 -- validates the kind eagerly
        self.seed = seed
        self.fired: List[FaultEvent] = []
        self._activations: Dict[FaultSpec, int] = {}

    # -- decisions ---------------------------------------------------------

    def decide(self, site: str, key: str) -> List[FaultSpec]:
        """The specs that fire at ``(site, key)`` -- deterministic in the key."""
        firing = []
        for spec in self.specs:
            if spec.site != site:
                continue
            if spec.match and spec.match not in key:
                continue
            if spec.limit is not None \
                    and self._activations.get(spec, 0) >= spec.limit:
                continue
            if spec.probability < 1.0 \
                    and unit_fraction(self.seed, spec.kind, key) \
                    >= spec.probability:
                continue
            firing.append(spec)
        return firing

    def record(self, spec: FaultSpec, key: str, detail: str = "") -> FaultEvent:
        self._activations[spec] = self._activations.get(spec, 0) + 1
        event = FaultEvent(site=spec.site, kind=spec.kind, key=key,
                           detail=detail)
        self.fired.append(event)
        return event

    def describe(self) -> List[Dict[str, object]]:
        return [spec.to_dict() for spec in self.specs]


#: The process-wide registry; ``None`` = fault injection off (the default).
_REGISTRY: Optional[FaultRegistry] = None

#: Whether this process is a pool worker (set by the scheduler's worker
#: entry point).  Worker faults never fire outside a pool worker, so an
#: injected ``os._exit`` cannot take down the parent / server process.
_IN_POOL_WORKER = False


def parse_spec(text: str) -> List[FaultSpec]:
    """Parse the ``$REPRO_FAULTS`` mini-grammar (or a JSON list of dicts).

    ``kind:p=0.2,match=abc,limit=3,duration=0.5;kind2:...``
    """
    text = text.strip()
    if not text:
        return []
    if text.startswith("["):
        return [FaultSpec(**item) for item in json.loads(text)]
    specs = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, _, params = chunk.partition(":")
        kwargs: Dict[str, object] = {}
        if params:
            for pair in params.split(","):
                name, _, value = pair.partition("=")
                name = name.strip()
                if name in ("p", "probability"):
                    kwargs["probability"] = float(value)
                elif name == "match":
                    kwargs["match"] = value.strip()
                elif name == "limit":
                    kwargs["limit"] = int(value)
                elif name == "duration":
                    kwargs["duration"] = float(value)
                else:
                    raise ValueError(
                        f"unknown fault parameter {name!r} in {chunk!r}")
        specs.append(FaultSpec(kind=kind.strip(), **kwargs))
    return specs


def registry_from_env() -> Optional[FaultRegistry]:
    """Build a registry from ``$REPRO_FAULTS`` (None when unset/empty)."""
    text = os.environ.get(FAULTS_ENV, "")
    specs = parse_spec(text)
    if not specs:
        return None
    seed = int(os.environ.get(FAULTS_SEED_ENV, "0"))
    return FaultRegistry(specs, seed=seed)


def configure(specs: Sequence[FaultSpec], seed: int = 0) -> FaultRegistry:
    """Install a fault registry programmatically (tests, chaos passes)."""
    global _REGISTRY
    _REGISTRY = FaultRegistry(specs, seed=seed)
    return _REGISTRY


def disable() -> None:
    """Switch fault injection off entirely."""
    global _REGISTRY
    _REGISTRY = None


def active() -> Optional[FaultRegistry]:
    return _REGISTRY


def describe() -> Optional[List[Dict[str, object]]]:
    """The active fault specs as JSON-able dicts (None when off)."""
    return _REGISTRY.describe() if _REGISTRY is not None else None


def enter_pool_worker() -> None:
    """Mark this process as a pool worker (called by the worker initializer).

    Only marked processes run ``worker`` site faults, so a crash/hang spec
    can never kill the scheduler's parent process or an inline batch.
    """
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


def drain_events() -> List[Dict[str, object]]:
    """Pop every fault event fired in this process since the last drain."""
    if _REGISTRY is None or not _REGISTRY.fired:
        return []
    events = [event.to_dict() for event in _REGISTRY.fired]
    _REGISTRY.fired.clear()
    return events


# ---------------------------------------------------------------------------
# The injection sites
# ---------------------------------------------------------------------------

def fire(site: str, key: str, path: Optional[str] = None) -> None:
    """Run the faults configured for ``(site, key)`` (no-op when off).

    ``path`` is site context: for store sites, the record path the fault
    should corrupt / leave partial state next to.
    """
    registry = _REGISTRY
    if registry is None:
        return
    for spec in registry.decide(site, key):
        _perform(registry, spec, key, path)


def _perform(registry: FaultRegistry, spec: FaultSpec, key: str,
             path: Optional[str]) -> None:
    kind = spec.kind
    if kind == "worker-crash":
        if not _IN_POOL_WORKER:
            return
        registry.record(spec, key, detail="os._exit")
        os._exit(CRASH_EXIT_STATUS)
    if kind == "worker-hang":
        if not _IN_POOL_WORKER:
            return
        registry.record(spec, key, detail=f"sleep {spec.duration}s")
        time.sleep(spec.duration)
        return
    if kind == "store-corrupt":
        if path and os.path.exists(path):
            registry.record(spec, key, detail="record clobbered on disk")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write('{"injected": "corruption"')   # not JSON
        return
    if kind == "store-write-fail":
        registry.record(spec, key, detail="write refused")
        raise InjectedFault(f"injected store write failure for {key}")
    if kind == "store-write-slow":
        registry.record(spec, key, detail=f"sleep {spec.duration}s")
        time.sleep(spec.duration)
        return
    if kind == "store-kill":
        # Simulate a kill -9 between the temp write and the atomic rename:
        # partial temp state survives (no cleanup runs in a real crash) and
        # the caller sees the write fail.
        if path:
            directory = os.path.dirname(path) or "."
            os.makedirs(directory, exist_ok=True)
            partial = os.path.join(directory, f".tmp-injected-{key[:12]}.json")
            with open(partial, "w", encoding="utf-8") as handle:
                handle.write('{"half": "a reco')
        registry.record(spec, key, detail="killed mid-write")
        raise InjectedFault(f"injected crash during store write for {key}")
    if kind == "fm-cap":
        from repro.logic.fourier_motzkin import ConstraintCapExceeded

        registry.record(spec, key, detail="constraint cap forced")
        raise ConstraintCapExceeded(
            "injected: Fourier-Motzkin elimination exceeded the "
            "constraint cap")
    raise ValueError(f"unknown fault kind {spec.kind!r}")


# Environment-driven activation happens at import time: the scheduler's
# worker processes (forked or spawned) and every CLI entry point then share
# one switch that requires no code changes to flip.
_REGISTRY = registry_from_env()
