"""The always-on analysis gateway: an asyncio JSON-lines socket front end.

``repro serve`` (stdio, :mod:`repro.service.server`) answers one request at
a time -- one slow ``analyze`` stalls every other caller.  The gateway is
the concurrent front end the service layer was growing toward: an asyncio
TCP server (JSON lines, localhost by default) that accepts many
simultaneous connections, validates and content-hashes every request into
an :class:`~repro.service.jobs.AnalysisJob`, and answers it through four
tiers, cheapest first:

1. **hot memory** -- a size-bounded in-process LRU of deserialised results
   (:class:`~repro.service.cache.HotResultCache`), no disk I/O at all;
2. **disk store** -- the shared content-addressed
   :class:`~repro.service.store.ResultStore` (safe for many gateway/worker
   processes on one root); hits are promoted into the hot tier;
3. **coalescing** -- a request whose job hash is already *in flight*
   attaches to the existing computation instead of spawning another: a
   storm of identical requests costs exactly one analysis, and every
   waiter gets the same :class:`~repro.service.jobs.JobResult` when it
   lands;
4. **computation** -- the job enters a bounded admission queue and runs on
   the long-lived :class:`~repro.service.scheduler.SupervisedPool` (worker
   processes with warm engines, pool-break supervision, the graceful
   degradation ladder).  When the queue is full the gateway answers a
   structured ``busy`` response with a ``retry_after`` estimate instead of
   accepting unbounded work -- backpressure, not collapse.

Batch requests stream: each job's result is written the moment it lands
(``batch-result`` lines, then one ``batch-done`` summary), never held back
at a batch barrier.  Responses carry the request ``id``, so clients may
pipeline requests on one connection and match answers by id -- completion
order is not request order.

Shutdown is graceful: SIGINT/SIGTERM (or a ``shutdown`` request) stops
accepting connections, drains in-flight requests (their responses are
still delivered and their store writes still land), retires the worker
pool, and exits 0.

Protocol (one JSON object per line, newline-terminated)::

    {"op": "analyze", "id": 1, "source": "proc main(n) {...}",
     "options": {"max_degree": 2}, "name": "mine"}
    {"op": "batch", "id": 2, "jobs": [{"source": "..."}, ...]}
    {"op": "stats", "id": 3}
    {"op": "health", "id": 4}
    {"op": "ping"}
    {"op": "shutdown"}

``analyze`` responses::

    {"op": "analyze", "id": 1, "status": "ok", "tier": "memory|store|"
     "coalesced|computed", "cached": true|false, "result": {...}}
    {"op": "analyze", "id": 1, "status": "busy", "error": "...",
     "retry_after": 0.8}
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import json
import socket
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.service.cache import DEFAULT_HOT_CACHE_SIZE, HotResultCache
from repro.service.jobs import AnalysisJob, JobResult
from repro.service.retry import RetryPolicy
from repro.service.scheduler import (SupervisedPool, _execute_job,
                                     apply_degradation)
from repro.service.server import _job_from_request
from repro.service.store import ResultStore

#: Gateway defaults: loopback only (an analysis service executes nothing,
#: but there is no reason to listen wider without being asked).
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 9471

#: Admission-queue bound: distinct jobs accepted but not yet resolved.
#: Beyond it the gateway answers ``busy`` instead of queueing more work.
DEFAULT_QUEUE_LIMIT = 64

#: How long a graceful shutdown waits for in-flight requests to land.
DEFAULT_DRAIN_TIMEOUT = 30.0

#: Reader line limit: programs travel as source text in one JSON line.
LINE_LIMIT = 4 * 1024 * 1024

#: Fallback ``retry_after`` before any job has been timed.
DEFAULT_JOB_WALL_ESTIMATE = 0.5


class GatewayBusy(Exception):
    """Raised internally when admission control rejects a job."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"gateway saturated; retry in {retry_after}s")
        self.retry_after = retry_after


class GatewayStats:
    """Counters of one gateway process (reported by ``stats``/``health``)."""

    __slots__ = ("connections", "requests", "analyses", "memory_hits",
                 "store_hits", "coalesced", "busy_rejections", "errors")

    def __init__(self) -> None:
        self.connections = 0
        self.requests = 0
        self.analyses = 0        # jobs actually executed by this process
        self.memory_hits = 0     # answered from the hot LRU tier
        self.store_hits = 0      # answered from the disk store tier
        self.coalesced = 0       # attached to an in-flight duplicate
        self.busy_rejections = 0
        self.errors = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class AnalysisGateway:
    """The asyncio front end over cache tiers and the supervised pool."""

    def __init__(self, store: Optional[ResultStore] = None,
                 workers: int = 0,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 hot_cache_size: int = DEFAULT_HOT_CACHE_SIZE,
                 default_options: Optional[Dict[str, object]] = None,
                 timeout: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 degrade: bool = True,
                 drain_timeout: float = DEFAULT_DRAIN_TIMEOUT) -> None:
        if timeout is not None and workers < 1:
            raise ValueError("timeout requires workers >= 1 (inline "
                             "execution cannot preempt a running job)")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.store = store
        self.workers = workers
        self.queue_limit = queue_limit
        self.default_options = dict(default_options or {})
        self.degrade = degrade
        self.drain_timeout = drain_timeout
        self.stats = GatewayStats()
        self.cache = (HotResultCache(hot_cache_size)
                      if hot_cache_size > 0 else None)
        self._pool: Optional[SupervisedPool] = None
        if workers >= 1:
            domains = ()
            default_domain = self.default_options.get("domain")
            if default_domain:
                domains = (str(default_domain),)
            self._pool = SupervisedPool(workers, timeout=timeout,
                                        policy=retry, domains=domains)
        # Dispatcher threads bridge the event loop to the blocking pool
        # (or run jobs inline when workers=0); sized to the pool so a
        # submitted job always has a worker seat.
        from concurrent.futures import ThreadPoolExecutor

        self._dispatch = ThreadPoolExecutor(
            max_workers=max(1, workers),
            thread_name_prefix="gateway-dispatch")
        self._inflight: Dict[str, asyncio.Future] = {}
        self._pending = 0
        self._recent_walls: "collections.deque[float]" = \
            collections.deque(maxlen=32)
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set = set()
        self._request_tasks: set = set()
        self._compute_tasks: set = set()
        self._shutdown_event: Optional[asyncio.Event] = None
        self._draining = False
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = DEFAULT_HOST,
                    port: int = DEFAULT_PORT) -> Tuple[str, int]:
        """Bind and start accepting connections; returns (host, port).

        ``port=0`` binds an ephemeral port (tests, benches); the actual
        port is in the returned tuple and in :attr:`address`.
        """
        self._shutdown_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=LINE_LIMIT)
        bound = self._server.sockets[0].getsockname()
        self.address = (bound[0], bound[1])
        return self.address

    async def serve_until_shutdown(self) -> None:
        """Serve until a shutdown is requested, then drain and stop."""
        assert self._shutdown_event is not None, "call start() first"
        await self._shutdown_event.wait()
        await self._drain()

    def request_shutdown(self) -> None:
        """Begin a graceful shutdown (signal handlers, ``shutdown`` op)."""
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def _drain(self) -> None:
        """Stop accepting, let in-flight work land, retire the pool."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.drain_timeout
        for group in (self._request_tasks, self._compute_tasks):
            pending = [task for task in group if not task.done()]
            remaining = deadline - time.monotonic()
            if pending and remaining > 0:
                await asyncio.wait(pending, timeout=remaining)
        # Whatever is still running is past the drain budget: cancel.
        for group in (self._request_tasks, self._compute_tasks):
            for task in group:
                if not task.done():
                    task.cancel()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        loop = asyncio.get_running_loop()
        if self._pool is not None:
            # Pool shutdown joins worker processes; keep it off the loop.
            await loop.run_in_executor(None, self._pool.shutdown)
        self._dispatch.shutdown(wait=False)

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.stats.connections += 1
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, write_lock,
                                     {"error": "request line too long"})
                    break
                if not line:
                    break   # client hung up
                stripped = line.strip()
                if not stripped:
                    continue
                if self._draining:
                    await self._send(writer, write_lock, {
                        "error": "gateway is shutting down",
                        "status": "unavailable"})
                    continue
                request = asyncio.ensure_future(
                    self._process_line(stripped, writer, write_lock))
                self._request_tasks.add(request)
                request.add_done_callback(self._request_tasks.discard)
        except asyncio.CancelledError:
            pass
        except ConnectionError:
            pass
        finally:
            self._conn_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()

    async def _process_line(self, line: bytes, writer: asyncio.StreamWriter,
                            write_lock: asyncio.Lock) -> None:
        """Handle one request line; always answers exactly once (or, for a
        batch, once per job plus a summary)."""
        self.stats.requests += 1
        request_id = None
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
            request_id = payload.get("id")
            op = payload.get("op", "analyze")
            if op == "batch":
                await self._handle_batch(payload, writer, write_lock)
                return
            if op == "shutdown":
                response: Dict[str, object] = {"op": "shutdown", "ok": True}
                if request_id is not None:
                    response["id"] = request_id
                await self._send(writer, write_lock, response)
                self.request_shutdown()
                return
            response = await self._handle_simple(op, payload)
        except GatewayBusy as busy:
            self.stats.busy_rejections += 1
            response = {"op": "analyze", "status": "busy",
                        "error": str(busy),
                        "retry_after": busy.retry_after}
        except (ValueError, TypeError, KeyError) as exc:
            self.stats.errors += 1
            response = {"error": str(exc)}
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 -- one request must never
            # take the gateway down; unexpected failures become a
            # structured error naming the exception class.
            self.stats.errors += 1
            response = {"error": f"{type(exc).__name__}: {exc}"}
        if request_id is not None:
            response.setdefault("id", request_id)
        await self._send(writer, write_lock, response)

    async def _handle_simple(self, op: str,
                             payload: Dict[str, object]) -> Dict[str, object]:
        if op == "ping":
            return {"op": "ping", "ok": True}
        if op == "stats":
            return self._handle_stats()
        if op == "health":
            return self._handle_health()
        if op == "analyze":
            job = _job_from_request(payload, self.stats.requests,
                                    self.default_options)
            result, tier = await self._resolve(job)
            return {"op": "analyze", "status": result.status,
                    "tier": tier, "cached": tier in ("memory", "store"),
                    "result": result.to_record()}
        if op == "lint":
            return await self._handle_lint(payload)
        raise ValueError(f"unknown op {op!r}")

    async def _handle_lint(self,
                           payload: Dict[str, object]) -> Dict[str, object]:
        """Run the static lint passes over one source text.

        Lint is deterministic and cheap (no LP, no derivation), so it
        bypasses the cache tiers and the worker pool; the walk still runs
        on an executor thread to keep the event loop responsive.
        """
        from repro.lang.analysis import (lint_source, max_severity,
                                         severity_counts)

        source = payload.get("source")
        if not isinstance(source, str):
            raise ValueError("'lint' needs a 'source' string")
        name = str(payload.get("name") or "<request>")
        options = payload.get("options") or {}
        if not isinstance(options, dict):
            raise ValueError("'options' must be an object")
        # Mirror the analyzer's pre-flight seeding: the resource counter
        # is zero-initialized by convention.
        counter = options.get("resource_counter")
        loop = asyncio.get_running_loop()

        def run_lint():
            from repro.lang.parser import parse_program
            try:
                program = parse_program(source)
            except Exception:
                return lint_source(source)
            seed = set(program.main_procedure.params)
            if counter:
                seed.add(str(counter))
            return lint_source(source, initial_state=seed)

        diagnostics = await loop.run_in_executor(None, run_lint)
        return {
            "op": "lint",
            "name": name,
            "severity": max_severity(diagnostics),
            "counts": severity_counts(diagnostics),
            "diagnostics": [diag.to_dict() for diag in diagnostics],
        }

    async def _handle_batch(self, payload: Dict[str, object],
                            writer: asyncio.StreamWriter,
                            write_lock: asyncio.Lock) -> None:
        """Fan a batch out and stream each result as it completes."""
        request_id = payload.get("id")
        raw_jobs = payload.get("jobs")
        if not isinstance(raw_jobs, list) or not raw_jobs:
            raise ValueError("'batch' needs a non-empty 'jobs' array")
        jobs = [_job_from_request(raw, index, self.default_options)
                for index, raw in enumerate(raw_jobs)]
        start = time.perf_counter()
        statuses: List[str] = [""] * len(jobs)

        async def run_one(index: int, job: AnalysisJob) -> None:
            response: Dict[str, object]
            try:
                result, tier = await self._resolve(job)
                response = {"op": "batch-result", "index": index,
                            "status": result.status, "tier": tier,
                            "cached": tier in ("memory", "store"),
                            "result": result.to_record()}
            except GatewayBusy as busy:
                self.stats.busy_rejections += 1
                response = {"op": "batch-result", "index": index,
                            "status": "busy", "error": str(busy),
                            "retry_after": busy.retry_after}
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 -- per-job isolation
                self.stats.errors += 1
                response = {"op": "batch-result", "index": index,
                            "status": "error",
                            "error": f"{type(exc).__name__}: {exc}"}
            statuses[index] = str(response["status"])
            if request_id is not None:
                response["id"] = request_id
            await self._send(writer, write_lock, response)

        await asyncio.gather(*(run_one(index, job)
                               for index, job in enumerate(jobs)))
        summary: Dict[str, object] = {
            "op": "batch-done",
            "jobs": len(jobs),
            "busy": statuses.count("busy"),
            "failed": sum(1 for status in statuses
                          if status not in ("ok", "busy")),
            "wall_seconds": round(time.perf_counter() - start, 4),
        }
        if request_id is not None:
            summary["id"] = request_id
        await self._send(writer, write_lock, summary)

    # -- the tiers ---------------------------------------------------------

    async def _resolve(self, job: AnalysisJob) -> Tuple[JobResult, str]:
        """Answer one job through the cheapest tier that has it."""
        job_hash = job.job_hash
        if self.cache is not None:
            hot = self.cache.get(job_hash)
            if hot is not None:
                self.stats.memory_hits += 1
                return self._named(hot, job), "memory"
        inflight = self._inflight.get(job_hash)
        if inflight is not None:
            self.stats.coalesced += 1
            # shield(): one waiter disconnecting must not cancel the
            # computation every other waiter is attached to.
            result = await asyncio.shield(inflight)
            return self._named(result, job), "coalesced"
        if self.store is not None:
            loop = asyncio.get_running_loop()
            stored = await loop.run_in_executor(None, self.store.get,
                                                job_hash)
            if stored is not None:
                self.stats.store_hits += 1
                if self.cache is not None:
                    self.cache.put(stored)
                return self._named(stored, job), "store"
            # The store probe awaited, so another request for the same
            # hash may have registered meanwhile: re-check before
            # registering, else a storm of simultaneous cold duplicates
            # would each start its own analysis.  From here to the
            # registration below the code is purely synchronous on the
            # event loop, so exactly one request can register per hash.
            inflight = self._inflight.get(job_hash)
            if inflight is not None:
                self.stats.coalesced += 1
                result = await asyncio.shield(inflight)
                return self._named(result, job), "coalesced"
        if self._pending >= self.queue_limit:
            raise GatewayBusy(self._retry_after())
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending += 1
        self._inflight[job_hash] = future
        compute = asyncio.ensure_future(self._compute(job, future))
        self._compute_tasks.add(compute)
        compute.add_done_callback(self._compute_tasks.discard)
        result = await asyncio.shield(future)
        return self._named(result, job), "computed"

    async def _compute(self, job: AnalysisJob, future: asyncio.Future) -> None:
        """Run one admitted job on a dispatcher thread; resolve every waiter."""
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(self._dispatch,
                                                self._execute_sync, job)
        except asyncio.CancelledError:
            result = JobResult(name=job.name, job_hash=job.job_hash,
                               status="cancelled",
                               message="cancelled: gateway shut down "
                                       "before the job ran")
        except Exception as exc:  # noqa: BLE001 -- resolve waiters, always
            result = JobResult(name=job.name, job_hash=job.job_hash,
                               status="error",
                               message=f"{type(exc).__name__}: {exc}")
        finally:
            # The tiers are already populated (_execute_sync writes the
            # store and hot cache before returning), so dropping the
            # in-flight entry here cannot strand a racing request.
            self._inflight.pop(job.job_hash, None)
            self._pending -= 1
        if result.wall_seconds:
            self._recent_walls.append(result.wall_seconds)
        if not future.done():
            future.set_result(result)

    def _execute_sync(self, job: AnalysisJob) -> JobResult:
        """The dispatcher-thread side: store re-check, run, degrade, write."""
        if self.store is not None:
            # Re-check the shared store: another gateway process pointed at
            # the same root may have computed this job while it queued.
            stored = self.store.get(job.job_hash)
            if stored is not None:
                self.stats.store_hits += 1
                if self.cache is not None:
                    self.cache.put(stored)
                return stored
        result = self._run(job)
        self.stats.analyses += 1
        if self.degrade:
            result = apply_degradation(job, result, self._run)
        if self.store is not None:
            try:
                self.store.put(result)
            except OSError as exc:
                # A failing store degrades the cache, never the response.
                result.fault_events = list(result.fault_events) + [{
                    "site": "store.put", "kind": "store-write-error",
                    "key": job.job_hash, "detail": str(exc)}]
        if self.cache is not None:
            self.cache.put(result)
        return result

    def _run(self, job: AnalysisJob) -> JobResult:
        if self._pool is not None:
            return self._pool.submit(job)
        return _execute_job(job)

    @staticmethod
    def _named(result: JobResult, job: AnalysisJob) -> JobResult:
        """Relabel a shared result under this request's job name."""
        if result.name == job.name:
            return result
        from dataclasses import replace

        return replace(result, name=job.name)

    def _retry_after(self) -> float:
        """A busy client's suggested wait: queue depth x recent job wall."""
        if self._recent_walls:
            wall = sum(self._recent_walls) / len(self._recent_walls)
        else:
            wall = DEFAULT_JOB_WALL_ESTIMATE
        seats = max(1, self.workers)
        return round(max(0.1, self._pending * wall / seats), 2)

    # -- introspection -----------------------------------------------------

    def _handle_stats(self) -> Dict[str, object]:
        store_stats = None
        if self.store is not None:
            store_stats = self.store.stats.as_dict()
            store_stats["quarantine_records"] = self.store.quarantine_count()
        return {
            "op": "stats",
            "gateway": self.stats.as_dict(),
            "hot_cache": (self.cache.as_dict()
                          if self.cache is not None else None),
            "store": store_stats,
            "pool": (self._pool.describe() if self._pool is not None
                     else {"workers": 0, "inline": True}),
            "pending": self._pending,
            "queue_limit": self.queue_limit,
        }

    def _handle_health(self) -> Dict[str, object]:
        from repro.logic.entailment import active_domain, engine_fingerprint
        from repro.service import faults
        from repro.service.jobs import SCHEMA_VERSION

        return {
            "op": "health",
            "ok": True,
            "schema": SCHEMA_VERSION,
            "address": list(self.address) if self.address else None,
            "draining": self._draining,
            "gateway": self.stats.as_dict(),
            "pending": self._pending,
            "queue_limit": self.queue_limit,
            "pool": (self._pool.describe() if self._pool is not None
                     else {"workers": 0, "inline": True}),
            "hot_cache": (self.cache.as_dict()
                          if self.cache is not None else None),
            "store": ({"root": self.store.root,
                       "quarantine_records": self.store.quarantine_count()}
                      if self.store is not None else None),
            "engine": engine_fingerprint(active_domain()),
            "faults": faults.describe(),
        }

    # -- plumbing ----------------------------------------------------------

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, write_lock: asyncio.Lock,
                    response: Dict[str, object]) -> None:
        data = json.dumps(response, separators=(",", ":")).encode("utf-8") \
            + b"\n"
        try:
            async with write_lock:
                writer.write(data)
                await writer.drain()
        except (ConnectionError, RuntimeError):
            # The reader hung up mid-response: nothing left to tell them.
            pass


# ---------------------------------------------------------------------------
# Synchronous entry point (the CLI's `serve --async`)
# ---------------------------------------------------------------------------

def run_gateway(store: Optional[ResultStore] = None,
                workers: int = 0,
                host: str = DEFAULT_HOST,
                port: int = DEFAULT_PORT,
                queue_limit: int = DEFAULT_QUEUE_LIMIT,
                hot_cache_size: int = DEFAULT_HOT_CACHE_SIZE,
                default_options: Optional[Dict[str, object]] = None,
                timeout: Optional[float] = None,
                retry: Optional[RetryPolicy] = None,
                degrade: bool = True,
                announce: bool = True) -> int:
    """Run the gateway until SIGINT/SIGTERM (or a ``shutdown`` request).

    Returns a process exit code: 0 after a graceful drain,
    ``EXIT_UNAVAILABLE`` when the address cannot be bound.
    """
    import signal
    import sys

    from repro.exitcodes import EXIT_OK, EXIT_UNAVAILABLE

    gateway = AnalysisGateway(store=store, workers=workers,
                              queue_limit=queue_limit,
                              hot_cache_size=hot_cache_size,
                              default_options=default_options,
                              timeout=timeout, retry=retry, degrade=degrade)

    async def main() -> int:
        try:
            bound_host, bound_port = await gateway.start(host, port)
        except OSError as exc:
            print(f"cannot bind gateway to {host}:{port}: {exc}",
                  file=sys.stderr)
            return EXIT_UNAVAILABLE
        if announce:
            print(f"gateway listening on {bound_host}:{bound_port} "
                  f"(workers={workers}, queue-limit={queue_limit}, "
                  f"hot-cache={hot_cache_size})", flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, gateway.request_shutdown)
            except (NotImplementedError, RuntimeError):
                # Not the main thread / unsupported platform: the
                # `shutdown` op still works.
                pass
        await gateway.serve_until_shutdown()
        if announce:
            print("gateway drained, shutting down", flush=True)
        return EXIT_OK

    return asyncio.run(main())


# ---------------------------------------------------------------------------
# A small synchronous client (tests, load generators, scripts)
# ---------------------------------------------------------------------------

class GatewayClient:
    """Blocking JSON-lines client for one gateway connection.

    Not thread-safe: give every client thread its own connection (that is
    also what exercises the gateway's concurrency).
    """

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self._writer = self._sock.makefile("w", encoding="utf-8")

    # -- transport ---------------------------------------------------------

    def send(self, payload: Dict[str, object]) -> None:
        self._writer.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self._writer.flush()

    def read(self) -> Dict[str, object]:
        line = self._reader.readline()
        if not line:
            raise ConnectionError("gateway closed the connection")
        return json.loads(line)

    def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        self.send(payload)
        return self.read()

    # -- convenience wrappers ----------------------------------------------

    def ping(self) -> Dict[str, object]:
        return self.request({"op": "ping"})

    def stats(self) -> Dict[str, object]:
        return self.request({"op": "stats"})

    def health(self) -> Dict[str, object]:
        return self.request({"op": "health"})

    def analyze(self, source: str,
                options: Optional[Dict[str, object]] = None,
                name: Optional[str] = None,
                request_id: Optional[object] = None) -> Dict[str, object]:
        payload: Dict[str, object] = {"op": "analyze", "source": source}
        if options:
            payload["options"] = options
        if name:
            payload["name"] = name
        if request_id is not None:
            payload["id"] = request_id
        return self.request(payload)

    def batch(self, jobs: Sequence[Dict[str, object]],
              request_id: Optional[object] = None
              ) -> Iterator[Dict[str, object]]:
        """Send a batch; yield streamed responses through ``batch-done``."""
        payload: Dict[str, object] = {"op": "batch", "jobs": list(jobs)}
        if request_id is not None:
            payload["id"] = request_id
        self.send(payload)
        while True:
            response = self.read()
            yield response
            if response.get("op") != "batch-result":
                return

    def lint(self, source: str,
             options: Optional[Dict[str, object]] = None,
             name: Optional[str] = None) -> Dict[str, object]:
        payload: Dict[str, object] = {"op": "lint", "source": source}
        if options:
            payload["options"] = options
        if name:
            payload["name"] = name
        return self.request(payload)

    def shutdown(self) -> Dict[str, object]:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        for stream in (self._reader, self._writer):
            with contextlib.suppress(Exception):
                stream.close()
        with contextlib.suppress(Exception):
            self._sock.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class GatewayThread:
    """Run a gateway on a background thread (tests and in-process benches).

    ``with GatewayThread(workers=2) as (host, port): ...`` boots the
    asyncio server on its own event loop thread, yields the bound address,
    and drains it on exit.  The gateway object is exposed as ``.gateway``
    so callers can read its counters after the run.
    """

    def __init__(self, **kwargs) -> None:
        self.gateway = AnalysisGateway(**kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = None
        self._started = None

    def start(self, host: str = DEFAULT_HOST,
              port: int = 0) -> Tuple[str, int]:
        import threading

        self._started = threading.Event()
        failure: List[BaseException] = []

        def run() -> None:
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)

            async def body() -> None:
                try:
                    await self.gateway.start(host, port)
                except BaseException as exc:  # noqa: BLE001 -- report to starter
                    failure.append(exc)
                    self._started.set()
                    return
                self._started.set()
                await self.gateway.serve_until_shutdown()

            self._loop.run_until_complete(body())
            self._loop.close()

        self._thread = threading.Thread(target=run, name="gateway-thread",
                                        daemon=True)
        self._thread.start()
        self._started.wait()
        if failure:
            raise failure[0]
        assert self.gateway.address is not None
        return self.gateway.address

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._thread is not None \
                and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.gateway.request_shutdown)
            self._thread.join(timeout)

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
