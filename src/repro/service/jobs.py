"""Analysis jobs: picklable units of work with canonical content hashes.

An :class:`AnalysisJob` wraps one parse→analyze→bound request as plain data
(program source text + analyzer options), so it can be

* shipped to a worker process by :mod:`repro.service.scheduler` (everything
  is picklable, no AST or engine state crosses the process boundary), and
* content-addressed by :attr:`AnalysisJob.job_hash` so the persistent store
  (:mod:`repro.service.store`) can serve unchanged programs without
  re-analyzing them.

The hash covers the *canonical* program text (whitespace-normalised), the
analyzer options that affect the result (degree, resource counter, hints,
solver tolerances) and a schema version, so any change to the result format
invalidates old cache records wholesale.

:class:`JobResult` is the JSON-able mirror of
:class:`repro.core.analyzer.AnalysisResult`: the bound is serialised term by
term with exact rational coefficients (so the parent process can rebuild an
evaluable :class:`~repro.core.bounds.ExpectedBound`), and the certificate is
flattened to its annotated points and weakening evidence.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.analyzer import AnalysisResult, analyze_source
from repro.core.bounds import ExpectedBound
from repro.core.certificates import Certificate
from repro.lang.errors import ParseError
from repro.utils.linear import LinExpr
from repro.utils.polynomials import IntervalAtom, Monomial, Polynomial

#: Bump when the JobResult/record layout changes: old store records become
#: cache misses instead of being misread.
#: v2: per-stage pipeline statistics (attempted degrees, escalation reuse)
#: and the per-attempt/total timing split.
#: v3: the abstract-domain backend (``domain`` option) participates in the
#: job hash and results record the domain that produced them, so the store
#: can never serve one backend's results to the other.
#: v4: supervision provenance (``attempts``, ``degraded``, ``fault_events``)
#: and a record checksum written by the store; a Fourier-Motzkin constraint
#: cap blowup is the structured ``resource-limit`` status instead of a raw
#: error.
#: v5: the LP solver selector (``solver`` option) is stamped into every job
#: like ``domain`` was in v3.  The *selector* ("auto"/"scipy"/"highs") is
#: hashed, not the machine-dependent resolution of ``auto`` -- the backends
#: are byte-identical (warm/cold identity pin), so an ``auto`` job keys the
#: same on a highspy-equipped machine and a SciPy-only one.
#: v6: results carry the pre-flight lint diagnostics (``diagnostics``, a
#: list of :meth:`repro.lang.analysis.Diagnostic.to_dict` records) and the
#: pre-flight gate's ``lint-error`` status joins the cacheable set (lint is
#: a deterministic function of the job content).
#: v7: the interval pre-filter setting (``prefilter`` option) is stamped
#: into every job like ``domain``/``solver``.  The pre-filter is
#: observational (bounds and certificates are byte-identical on and off),
#: but the stamp keeps provenance explicit and lets perfsmoke's
#: ``--prefilter-compare`` leg address the two configurations separately.
SCHEMA_VERSION = 7

#: Statuses a job can end in.  ``ok``/``no-bound``/``parse-error`` are
#: deterministic outcomes of the job's content and therefore cacheable;
#: ``analysis-error`` and ``resource-limit`` may be environment-dependent
#: (e.g. the constraint cap) and ``timeout``/``cancelled``/``error``
#: describe the run, not the job.
CACHEABLE_STATUSES = frozenset({"ok", "no-bound", "parse-error",
                                "lint-error"})


def canonical_source(source: str) -> str:
    """Whitespace-normalised program text (the hashed representation).

    Trailing whitespace, ``\\r`` line endings and leading/trailing blank
    lines never change the parsed program, so they do not change the hash.
    """
    lines = [line.rstrip() for line in source.replace("\r\n", "\n").split("\n")]
    while lines and not lines[0]:
        lines.pop(0)
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines) + "\n"


def _jsonable_option(value: object) -> object:
    """Deterministic JSON image of one analyzer option value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Fraction):
        return f"fraction:{value}"
    if isinstance(value, (list, tuple)):
        return [_jsonable_option(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable_option(value[key]) for key in sorted(value)}
    # LinExpr hints and other rich values have deterministic reprs.
    return f"repr:{value!r}"


@dataclass(frozen=True)
class AnalysisJob:
    """One self-contained analysis request (picklable, content-addressed)."""

    name: str
    source: str
    options: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def create(cls, name: str, source: str,
               options: Optional[Dict[str, object]] = None) -> "AnalysisJob":
        """Build a job, resolving the abstract domain *now*.

        A job without an explicit ``domain`` option is stamped with the
        currently active domain: the environment default (``$REPRO_DOMAIN``)
        is a per-process setting, so leaving it out of the job would let two
        processes with different defaults share one content hash -- and the
        store would serve one backend's cached results to the other.
        Stamping at creation keeps hash and execution domain consistent
        everywhere the job travels (workers, stores, servers).

        The LP ``solver`` selector is stamped the same way (the per-process
        ``$REPRO_SOLVER`` default, or ``"auto"``).  Unlike ``domain`` the
        stamped value is the *selector*, not the resolved backend: ``auto``
        resolves per machine, but the backends are byte-identical by the
        warm/cold identity pin, so hashing the selector keeps one cache key
        across heterogeneous workers.

        The interval ``prefilter`` toggle is stamped as a bool (resolving
        the per-process ``$REPRO_PREFILTER`` default now, schema v7).
        """
        from repro.core.lpsession import default_solver
        from repro.logic.entailment import active_prefilter, resolve_prefilter

        merged = dict(options or {})
        if not merged.get("domain"):
            from repro.logic.entailment import active_domain

            merged["domain"] = active_domain()
        if not merged.get("solver"):
            merged["solver"] = default_solver()
        if merged.get("prefilter") is None:
            merged["prefilter"] = active_prefilter()
        else:
            merged["prefilter"] = resolve_prefilter(merged["prefilter"])
        items = tuple(sorted(merged.items()))
        return cls(name=name, source=source, options=items)

    @property
    def options_dict(self) -> Dict[str, object]:
        return dict(self.options)

    @property
    def job_hash(self) -> str:
        """Canonical content hash: source + options + schema version."""
        payload = json.dumps({
            "schema": SCHEMA_VERSION,
            "source": canonical_source(self.source),
            "options": {name: _jsonable_option(value)
                        for name, value in self.options},
        }, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def job_from_file(path: str, options: Optional[Dict[str, object]] = None,
                  name: Optional[str] = None) -> AnalysisJob:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return AnalysisJob.create(name or path, source, options)


def job_from_benchmark(benchmark,
                       domain: Optional[str] = None,
                       solver: Optional[str] = None) -> AnalysisJob:
    """Turn a registry :class:`~repro.bench.registry.BenchmarkProgram` into a job.

    The program AST is printed back to concrete syntax (a bound-preserving
    round trip, see ``tests/test_parser_printer.py``) so the job carries only
    text and the worker parses it afresh.  ``domain`` pins the job to an
    abstract-domain backend and ``solver`` to an LP backend selector (None =
    the process defaults, stamped by :meth:`AnalysisJob.create`).
    """
    options = dict(benchmark.analyzer_options)
    if domain is not None:
        options["domain"] = domain
    if solver is not None:
        options["solver"] = solver
    return AnalysisJob.create(benchmark.name, benchmark.source_text(), options)


# ---------------------------------------------------------------------------
# Result serialisation
# ---------------------------------------------------------------------------

def _linexpr_payload(expr: LinExpr) -> Dict[str, object]:
    return {"coeffs": {var: str(coeff) for var, coeff in expr.coeff_items},
            "const": str(expr.const_term)}


def _linexpr_from_payload(payload: Dict[str, object]) -> LinExpr:
    coeffs = {var: Fraction(coeff) for var, coeff in payload["coeffs"].items()}
    return LinExpr(coeffs, Fraction(payload["const"]))


def bound_payload(bound: ExpectedBound) -> Dict[str, object]:
    """Exact, JSON-able image of a bound (reconstructible via :func:`bound_from_payload`)."""
    terms = []
    for monomial in bound.polynomial.monomials():
        coeff = bound.polynomial.coefficient(monomial)
        factors = [{"power": power, **_linexpr_payload(atom.diff)}
                   for atom, power in monomial.factors]
        terms.append({"coeff": str(coeff), "factors": factors})
    return {"pretty": bound.pretty(), "terms": terms}


def bound_from_payload(payload: Dict[str, object]) -> ExpectedBound:
    terms: Dict[Monomial, Fraction] = {}
    for term in payload["terms"]:
        counts = {IntervalAtom(_linexpr_from_payload(factor)): factor["power"]
                  for factor in term["factors"]}
        terms[Monomial(counts)] = Fraction(term["coeff"])
    return ExpectedBound(Polynomial(terms))


def certificate_payload(certificate: Certificate) -> Dict[str, object]:
    """JSON image of a derivation certificate (annotated points + weakenings).

    This keeps the machine-checkable *evidence* attached to every stored
    result: the instantiated annotation at every program point and, per
    weakening, the non-negative combination of rewrite functions justifying
    it.  Polynomials are rendered in the Table-1 syntax; the algebraic
    re-check (:func:`repro.core.certificates.check_certificate`) runs on the
    live objects before the record is written.
    """
    return {
        "bound": str(certificate.bound),
        "points": [{
            "node_id": point.node_id,
            "rule": point.rule,
            "description": point.description,
            "pre": str(point.pre),
            "post": str(point.post),
        } for point in certificate.points],
        "weakenings": [{
            "origin": evidence.origin,
            "context": [str(fact) for fact in evidence.context.facts],
            "stronger": str(evidence.stronger),
            "weaker": str(evidence.weaker),
            "combination": [{
                "multiplier": str(value),
                "rewrite": str(poly),
                "reason": reason,
            } for value, poly, reason in evidence.combination],
        } for evidence in certificate.weakenings],
    }


@dataclass
class JobResult:
    """JSON-able outcome of one job (what workers return and the store keeps)."""

    name: str
    job_hash: str
    status: str                      # ok | no-bound | analysis-error |
                                     # resource-limit | parse-error |
                                     # lint-error | error | timeout |
                                     # cancelled
    wall_seconds: float = 0.0
    degree: int = 0
    bound: Optional[Dict[str, object]] = None
    lp_variables: int = 0
    lp_constraints: int = 0
    message: str = ""
    certificate: Optional[Dict[str, object]] = None
    engine: Dict[str, int] = field(default_factory=dict)
    #: Abstract-domain backend that produced this result ("" for results
    #: that never reached the analyzer, e.g. parse errors).
    domain: str = ""
    worker_pid: int = 0
    #: Per-stage pipeline breakdown (attempted degrees, per-degree build/solve
    #: walls, escalation reuse ratio) -- see
    #: :meth:`repro.core.pipeline.PipelineStats.to_dict`.
    pipeline: Dict[str, object] = field(default_factory=dict)
    #: How many executions this result took, counting the first (schema v4).
    #: 1 for the common no-fault path; >1 records pool-rebuild resubmissions
    #: and degradation-ladder reruns.
    attempts: int = 1
    #: Degradation provenance (schema v4): empty for first-class results;
    #: otherwise e.g. ``{"kind": "domain-fallback", "from": "fm",
    #: "to": "polyhedra", "reason": "resource-limit"}`` or ``{"kind":
    #: "degree-fallback", "from": 2, "to": 1, "reason": "timeout"}``.
    degraded: Dict[str, object] = field(default_factory=dict)
    #: Faults that fired while producing this result (schema v4): a list of
    #: ``{"site", "kind", "key", ...}`` dicts, injected ones from
    #: :mod:`repro.service.faults` and real ones observed by the scheduler
    #: (e.g. ``worker-lost``, ``store-write-error``).
    fault_events: List[Dict[str, object]] = field(default_factory=list)
    #: Pre-flight lint diagnostics (schema v6): ``Diagnostic.to_dict()``
    #: records, present only when the job ran with ``preflight`` enabled.
    diagnostics: List[Dict[str, object]] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return self.status == "ok"

    @property
    def cacheable(self) -> bool:
        """Whether this result is a property of the job (worth caching).

        Degree-fallback results are excluded even when their status is
        cacheable: they were produced under a *reduced* degree limit because
        the environment timed the job out, so a healthier run could do
        better.  Domain-fallback results stay cacheable -- the exact-backend
        identity invariant (``tests/test_domain_identity.py``) makes the
        fallback answer byte-identical to the primary one.
        """
        if self.degraded.get("kind") == "degree-fallback":
            return False
        return self.status in CACHEABLE_STATUSES

    @property
    def bound_pretty(self) -> Optional[str]:
        return self.bound["pretty"] if self.bound else None

    def expected_bound(self) -> Optional[ExpectedBound]:
        """Rebuild the evaluable bound object (None for unsuccessful jobs)."""
        return bound_from_payload(self.bound) if self.bound else None

    def to_record(self) -> Dict[str, object]:
        record = asdict(self)
        record["schema"] = SCHEMA_VERSION
        return record

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "JobResult":
        fields = {name: record[name] for name in (
            "name", "job_hash", "status", "wall_seconds", "degree", "bound",
            "lp_variables", "lp_constraints", "message", "certificate",
            "engine", "domain", "worker_pid", "pipeline", "attempts",
            "degraded", "fault_events", "diagnostics")}
        return cls(**fields)


def result_from_analysis(job: AnalysisJob, analysis: AnalysisResult,
                         wall_seconds: float,
                         engine_delta: Optional[Dict[str, int]] = None,
                         domain: str = "") -> JobResult:
    """Flatten an in-process :class:`AnalysisResult` into a :class:`JobResult`."""
    import os

    status = "ok" if analysis.success else (analysis.failure_kind or "analysis-error")
    return JobResult(
        name=job.name,
        job_hash=job.job_hash,
        status=status,
        wall_seconds=round(wall_seconds, 4),
        degree=analysis.degree,
        bound=bound_payload(analysis.bound) if analysis.bound else None,
        lp_variables=analysis.lp_variables,
        lp_constraints=analysis.lp_constraints,
        message=analysis.message,
        certificate=(certificate_payload(analysis.certificate)
                     if analysis.certificate else None),
        engine=dict(engine_delta or {}),
        domain=domain,
        worker_pid=os.getpid(),
        pipeline=analysis.stats.to_dict() if analysis.stats else {},
        diagnostics=[diag.to_dict() for diag in analysis.diagnostics],
    )


def job_domain(job: AnalysisJob) -> str:
    """The abstract domain this job runs under (option or the active one).

    Mirrors the pipeline's own resolution (``use_domain(config.domain)``)
    so the engine whose statistics are recorded is the engine that actually
    answered the job's queries.
    """
    from repro.logic.entailment import active_domain

    domain = job.options_dict.get("domain")
    return str(domain) if domain else active_domain()


def run_job(job: AnalysisJob) -> JobResult:
    """Execute one job in this process (the scheduler's worker entry point).

    Never raises for job-content problems: parse errors, unknown domains
    and analysis failures come back as structured statuses.  Only genuinely
    unexpected exceptions are folded into an ``error`` result so a bad job
    cannot take the worker down.
    """
    import os

    from repro.logic.entailment import get_engine
    from repro.service import faults

    domain = job_domain(job)
    start = time.perf_counter()
    try:
        # Resolves the domain first so an unknown name fails as a
        # structured error before any analysis work happens.
        engine = get_engine(domain)
        before = engine.stats.snapshot()
        analysis = analyze_source(job.source, **job.options_dict)
    except ParseError as exc:
        return JobResult(name=job.name, job_hash=job.job_hash,
                         status="parse-error",
                         wall_seconds=round(time.perf_counter() - start, 4),
                         message=str(exc), worker_pid=os.getpid(),
                         fault_events=faults.drain_events())
    except Exception as exc:  # noqa: BLE001 -- workers must survive bad jobs
        return JobResult(name=job.name, job_hash=job.job_hash, status="error",
                         wall_seconds=round(time.perf_counter() - start, 4),
                         message=f"{type(exc).__name__}: {exc}",
                         worker_pid=os.getpid(),
                         fault_events=faults.drain_events())
    wall = time.perf_counter() - start
    result = result_from_analysis(job, analysis, wall,
                                  engine.stats.delta(before), domain=domain)
    result.fault_events = faults.drain_events()
    return result
