"""Retry policy for the supervised scheduler: backoff, budgets, classification.

One :class:`RetryPolicy` answers three questions for the scheduler's
supervision loop (:mod:`repro.service.scheduler`):

* **should this failure be retried?** -- :meth:`classify` splits job
  statuses into *retryable* infrastructure failures (a broken pool, a
  worker crash) and *terminal* outcomes (parse errors, no-bound, analysis
  errors) that re-running cannot change;
* **how long do we wait?** -- :meth:`backoff` is exponential with seeded,
  deterministic jitter: the delay for attempt ``k`` of job ``h`` depends
  only on ``(seed, h, k)``, so a retry schedule is exactly reproducible
  across runs (the chaos gate depends on this);
* **when do we stop?** -- per-job ``max_attempts`` plus a per-batch
  ``budget`` of total retries, so a systematically broken environment
  (every worker dies instantly) degrades to structured errors in bounded
  time instead of retrying forever.

The jitter uses the same SHA-256 unit-fraction construction as the fault
registry (:func:`repro.service.faults.unit_fraction`) rather than
``random.Random``: no process-global state, no seed handoff to workers, and
identical schedules on every platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.service.faults import unit_fraction

#: Statuses that indicate the *infrastructure* failed, not the job: the job
#: never got a fair chance to run, so re-running it is meaningful.
RETRYABLE_STATUSES = frozenset({"worker-lost", "store-error"})

#: Statuses that are properties of the job's content (or of its resource
#: budget): re-running under the same configuration reproduces them.  The
#: degradation ladder may still *change the configuration* for some of
#: these ("resource-limit" retries under polyhedra, "timeout" retries at a
#: lower degree) -- that is a deliberate one-rung fallback, not a retry.
TERMINAL_STATUSES = frozenset({
    "ok", "no-bound", "parse-error", "analysis-error", "resource-limit",
    "timeout", "cancelled", "error",
})


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential backoff with a per-batch retry budget."""

    #: Total attempts per job, including the first (1 = never retry).
    max_attempts: int = 3
    #: Delay before the first retry, in seconds.
    base_delay: float = 0.05
    #: Multiplier per further retry.
    factor: float = 2.0
    #: Ceiling on any single delay.
    max_delay: float = 2.0
    #: Jitter width as a fraction of the computed delay (0.25 = up to +25%).
    jitter: float = 0.25
    #: Seed for the deterministic jitter schedule.
    seed: int = 0
    #: Per-batch cap on total retries across all jobs (None = unbounded).
    budget: int = 8

    def classify(self, status: str) -> bool:
        """True when ``status`` is a retryable infrastructure failure."""
        return status in RETRYABLE_STATUSES

    def backoff(self, key: str, attempt: int) -> float:
        """Delay in seconds before attempt ``attempt`` (2 = first retry).

        Deterministic in ``(seed, key, attempt)``: the same job retried in
        the same run position always waits exactly as long, so chaos runs
        are reproducible down to their sleep schedule.
        """
        if attempt <= 1:
            return 0.0
        delay = min(self.max_delay,
                    self.base_delay * self.factor ** (attempt - 2))
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * unit_fraction(
                self.seed, "backoff", key, attempt)
        return round(delay, 6)

    def schedule(self, key: str, attempts: int = None) -> List[float]:
        """The full backoff schedule for a job (handy for tests and docs)."""
        upto = attempts if attempts is not None else self.max_attempts
        return [self.backoff(key, attempt) for attempt in range(2, upto + 1)]
