"""Multiprocess batch scheduler: fan analysis jobs out over worker processes.

The scheduler turns a list of :class:`~repro.service.jobs.AnalysisJob` into a
deterministic list of :class:`~repro.service.jobs.JobResult`:

* **store first** -- jobs whose hash is in the persistent store
  (:mod:`repro.service.store`) are served without any work;
* **fan-out** -- remaining jobs run on a ``ProcessPoolExecutor``.  Each
  worker installs a fresh :class:`~repro.logic.entailment.EntailmentEngine`
  at start (no state inherited from the parent, none leaked back) and keeps
  it warm across all jobs it executes, so a worker analyzing its third
  program already owns the hot projection caches;
* **timeouts and cancellation** -- with ``timeout`` set, every job gets that
  much wall clock from the moment a worker slot can pick it up (a rolling
  per-job deadline, so fast jobs queued behind slow ones are never
  misreported).  A job that exceeds it is reported as ``timeout`` and its
  stuck worker is terminated when the pool shuts down; jobs still queued
  behind it are cancelled and reported as ``cancelled``.
  ``KeyboardInterrupt`` cancels everything still pending before
  propagating;
* **supervision** -- a dead worker (OOM kill, segfault in native code, an
  injected ``os._exit``) breaks the whole ``ProcessPoolExecutor``.  Instead
  of failing every unfinished job, the scheduler *rebuilds* the pool and
  re-submits: jobs that never started go back into a fresh group round with
  their attempt refunded, while jobs that were **in flight** when the pool
  died (identified by per-attempt claim files the workers drop as they pick
  work up) are *suspects* and re-run one at a time on a single-worker pool,
  so a second break is unambiguously their fault.  A
  :class:`~repro.service.retry.RetryPolicy` bounds the whole affair --
  per-job attempts, a per-batch retry budget, deterministic seeded backoff
  -- and a suspect that breaks a solo pool twice is quarantined as a
  **poison job** (structured ``error`` result, ``poison-quarantine`` fault
  event) instead of being retried forever;
* **graceful degradation** -- a job whose analysis blows the Fourier-Motzkin
  constraint cap (status ``resource-limit``) is re-run once under the
  ``polyhedra`` backend, which answers the *same* queries without the cap
  and -- by the exact-backend identity invariant
  (``tests/test_domain_identity.py``) -- byte-identically.  A job that
  timed out is re-run once with its degree limit lowered by one.  Every
  fallback is recorded as provenance in ``JobResult.degraded`` (and counts
  in ``JobResult.attempts``), never silently;
* **deterministic ordering** -- results always come back in input order, no
  matter which worker finished first, and identical jobs (same content
  hash) are executed only once per batch.

``workers=0`` runs everything inline in the calling process (no pool, no
pickling) -- handy for tests and for callers that want the scheduler's
store/dedup behaviour without multiprocessing.  Inline execution cannot
preempt a job, so ``timeout`` requires ``workers >= 1``.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.service import faults
from repro.service.jobs import AnalysisJob, JobResult, job_domain, run_job
from repro.service.retry import RetryPolicy
from repro.service.store import ResultStore

#: A suspect that breaks this many *single-worker* pools is quarantined as
#: poison: the break is unambiguously attributable (nothing else was
#: running), and twice rules out one-off environmental bad luck.
POISON_SOLO_BREAKS = 2

#: The degradation ladder's domain rung: backends that blow the FM
#: constraint cap fall back to an exact backend without one.  Sound by the
#: byte-identity invariant pinned in ``tests/test_domain_identity.py``.
FALLBACK_DOMAINS = {"fm": "polyhedra"}


def default_worker_count() -> int:
    """A sensible default fan-out: physical parallelism minus one, capped."""
    cpus = os.cpu_count() or 1
    return max(1, min(8, cpus - 1))


def _worker_init(domains: Sequence[str] = ()) -> None:
    """Per-process initializer: fresh, pre-warmed entailment engines.

    Backend-aware: the batch's distinct job domains are warmed explicitly,
    so a pool serving ``polyhedra`` jobs pre-builds that backend's engine
    instead of silently warming the default one and paying the cold-start
    inside the first timed job.
    """
    from repro.logic import entailment

    faults.enter_pool_worker()
    try:
        entailment.reset_engine()
    except ValueError:
        # $REPRO_DOMAIN names an unknown backend: the registry is already
        # cleared, and every job will report the structured per-job error.
        # The initializer must not raise -- that would break the whole pool.
        pass
    for domain in (domains or (entailment.active_domain(),)):
        try:
            entailment.warm_engine(domain)
        except ValueError:
            # Unknown domain: the job itself will report the structured
            # error; warm-up must not take the worker down.
            continue


def _execute_job(job: AnalysisJob, attempt: int = 1,
                 claim_path: Optional[str] = None) -> JobResult:
    """What the pool actually runs (separate from run_job for test seams).

    ``claim_path`` is only set for pool execution: the worker drops the
    claim file the moment it picks the job up, so after a pool break the
    parent can tell in-flight jobs (claimed, no result: crash suspects)
    from never-started ones (no claim: innocent, just resubmit).  The
    ``worker`` fault-injection site fires here too -- inline runs pass no
    claim path and therefore can never be crashed out of the parent.
    """
    if claim_path is not None:
        try:
            with open(claim_path, "w", encoding="utf-8"):
                pass
        except OSError:
            pass
        faults.fire("worker", f"{job.job_hash}:{attempt}")
    return run_job(job)


def _pool_context():
    """Prefer fork (workers inherit the already-imported LP stack)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass
class SchedulerConfig:
    """Knobs of one batch run."""

    #: Number of worker processes; 0 runs jobs inline in this process.
    workers: int = 0
    #: Per-job wall-clock budget in seconds, measured from when a worker
    #: slot frees up for the job (requires ``workers >= 1``; inline
    #: execution cannot preempt).
    timeout: Optional[float] = None
    #: Persistent result store; None disables caching entirely.
    store: Optional[ResultStore] = None
    #: Ignore store reads (results are still written back).
    refresh: bool = False
    #: Supervision policy for pool breaks (None = :class:`RetryPolicy`
    #: defaults).
    retry: Optional[RetryPolicy] = None
    #: Apply the graceful-degradation ladder (domain fallback on
    #: ``resource-limit``, one lower-degree retry on ``timeout``).
    degrade: bool = True


@dataclass
class JobOutcome:
    """One job's result plus where it came from."""

    job: AnalysisJob
    result: JobResult
    cached: bool = False


@dataclass
class BatchReport:
    """Everything a front end needs to render one batch run."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 0

    @property
    def results(self) -> List[JobResult]:
        return [outcome.result for outcome in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def executed(self) -> int:
        return len(self.outcomes) - self.cache_hits

    @property
    def failures(self) -> List[JobOutcome]:
        return [outcome for outcome in self.outcomes
                if outcome.result.status != "ok"]

    @property
    def degraded(self) -> List[JobOutcome]:
        """Outcomes produced through a degradation-ladder fallback."""
        return [outcome for outcome in self.outcomes if outcome.result.degraded]

    @property
    def fault_events(self) -> int:
        """Total fault events recorded across all results (0 = clean run)."""
        return sum(len(outcome.result.fault_events)
                   for outcome in self.outcomes)

    @property
    def retries(self) -> int:
        """Executions beyond each job's first attempt, summed."""
        return sum(outcome.result.attempts - 1 for outcome in self.outcomes
                   if not outcome.cached)

    def cache_hit_rate(self) -> float:
        return self.cache_hits / len(self.outcomes) if self.outcomes else 0.0

    def count(self, status: str) -> int:
        return sum(1 for outcome in self.outcomes
                   if outcome.result.status == status)


def run_batch(jobs: Sequence[AnalysisJob],
              config: Optional[SchedulerConfig] = None,
              **overrides) -> BatchReport:
    """Run ``jobs`` through the store + worker pool; results in input order."""
    if config is None:
        config = SchedulerConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a SchedulerConfig or keyword overrides")
    if config.timeout is not None and config.workers < 1:
        raise ValueError("timeout requires workers >= 1 (inline execution "
                         "cannot preempt a running job)")
    policy = config.retry if config.retry is not None else RetryPolicy()

    start = time.perf_counter()
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
    hashes = [job.job_hash for job in jobs]

    # Layer 1: the persistent store.
    pending: Dict[str, List[int]] = {}     # hash -> input indices to fill
    for index, (job, job_hash) in enumerate(zip(jobs, hashes)):
        cached = None
        if config.store is not None and not config.refresh:
            cached = config.store.get(job_hash)
        if cached is not None:
            outcomes[index] = JobOutcome(job, _named_for(cached, job),
                                         cached=True)
        else:
            pending.setdefault(job_hash, []).append(index)

    # Layer 2: execute each distinct pending job exactly once.
    ordered_hashes = sorted(pending, key=lambda job_hash: pending[job_hash][0])
    unique_jobs = [jobs[pending[job_hash][0]] for job_hash in ordered_hashes]
    if config.workers <= 0:
        executed = [_execute_job(job) for job in unique_jobs]
    else:
        executed = _run_on_pool(unique_jobs, config.workers, config.timeout,
                                policy)

    for job_hash, result in zip(ordered_hashes, executed):
        job = jobs[pending[job_hash][0]]
        if config.degrade:
            result = _apply_degradation(job, result, config, policy)
        if config.store is not None:
            try:
                config.store.put(result)
            except OSError as exc:
                # A failing store must degrade the cache, not the batch:
                # the computed result is still delivered, the lost write is
                # recorded as provenance.
                result.fault_events = list(result.fault_events) + [{
                    "site": "store.put", "kind": "store-write-error",
                    "key": job_hash, "detail": str(exc)}]
        for index in pending[job_hash]:
            outcomes[index] = JobOutcome(jobs[index],
                                         _named_for(result, jobs[index]),
                                         cached=False)

    report = BatchReport(outcomes=[outcome for outcome in outcomes
                                   if outcome is not None],
                         wall_seconds=round(time.perf_counter() - start, 4),
                         workers=config.workers)
    return report


def _named_for(result: JobResult, job: AnalysisJob) -> JobResult:
    """The result relabelled with this job's name.

    Store hits and batch-level dedup reuse one computed result for many
    input jobs; the payload is content-determined but the name is
    presentation, so each outcome reports under its own job's name.
    """
    if result.name == job.name:
        return result
    from dataclasses import replace

    return replace(result, name=job.name)


# ---------------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------------

def apply_degradation(job: AnalysisJob, result: JobResult,
                      rerun: Callable[[AnalysisJob], JobResult]) -> JobResult:
    """One rung down the ladder for resource-limit / timeout results.

    Applied at most once per job (the re-run's own result is returned with
    provenance attached, never re-laddered), so a systematically hopeless
    job terminates after exactly one structured fallback.  ``rerun`` is
    how the fallback job gets executed -- the batch scheduler routes it
    through a pool round, the gateway through its long-lived
    :class:`SupervisedPool`.
    """
    if result.degraded:
        return result
    if result.status == "resource-limit":
        domain = result.domain or job_domain(job)
        fallback = FALLBACK_DOMAINS.get(domain)
        if fallback is None:
            return result
        options = dict(job.options_dict)
        options["domain"] = fallback
        retry_job = AnalysisJob.create(job.name, job.source, options)
        return _degraded_result(rerun(retry_job), job, result, {
            "kind": "domain-fallback", "from": domain, "to": fallback,
            "reason": "resource-limit"})
    if result.status == "timeout":
        lowered = _lower_degree_job(job)
        if lowered is None:
            return result
        retry_job, old_degree, new_degree = lowered
        return _degraded_result(rerun(retry_job), job, result, {
            "kind": "degree-fallback", "from": old_degree, "to": new_degree,
            "reason": "timeout"})
    return result


def _apply_degradation(job: AnalysisJob, result: JobResult,
                       config: SchedulerConfig,
                       policy: RetryPolicy) -> JobResult:
    """The batch scheduler's ladder instance (re-runs on a fresh pool)."""
    return apply_degradation(job, result,
                             lambda retry_job: _rerun(retry_job, config,
                                                      policy))


def _lower_degree_job(job: AnalysisJob) -> Optional[Tuple[AnalysisJob, int, int]]:
    """The job with its degree budget lowered by one (None when already 1)."""
    options = dict(job.options_dict)
    auto = bool(options.get("auto_degree", True))
    knob = "degree_limit" if auto else "max_degree"
    current = int(options.get(knob, 2 if auto else 1))
    lowered = current - 1
    if lowered < 1:
        return None
    options[knob] = lowered
    return AnalysisJob.create(job.name, job.source, options), current, lowered


def _rerun(retry_job: AnalysisJob, config: SchedulerConfig,
           policy: RetryPolicy) -> JobResult:
    """Execute one degradation-ladder re-run (pool when available)."""
    if config.workers <= 0:
        return _execute_job(retry_job)
    return _run_on_pool([retry_job], 1, config.timeout, policy)[0]


def _degraded_result(rerun: JobResult, job: AnalysisJob, original: JobResult,
                     provenance: Dict[str, object]) -> JobResult:
    """The re-run's result, relabelled to the original job, with provenance."""
    rerun.name = job.name
    rerun.job_hash = job.job_hash
    rerun.attempts = original.attempts + rerun.attempts
    rerun.degraded = dict(provenance)
    rerun.fault_events = list(original.fault_events) + list(rerun.fault_events)
    return rerun


# ---------------------------------------------------------------------------
# The supervised pool
# ---------------------------------------------------------------------------

def _run_on_pool(jobs: Sequence[AnalysisJob], workers: int,
                 timeout: Optional[float],
                 policy: Optional[RetryPolicy] = None) -> List[JobResult]:
    """Fan out over supervised ProcessPoolExecutors; results in input order.

    Group rounds run every runnable job on one pool.  When the pool breaks,
    completed futures are harvested, never-started jobs are refunded their
    attempt and return to the next group round, and in-flight jobs become
    *suspects*: each re-runs alone on a single-worker pool (after the
    policy's deterministic backoff) so a further break is unambiguously its
    fault.  Two solo breaks quarantine the job as poison; the policy's
    ``max_attempts`` and per-batch retry ``budget`` bound everything else.
    """
    if not jobs:
        return []
    policy = policy if policy is not None else RetryPolicy()
    results: Dict[str, JobResult] = {}
    attempt: Dict[str, int] = {job.job_hash: 0 for job in jobs}
    solo_breaks: Dict[str, int] = {}
    events: Dict[str, List[Dict[str, object]]] = {job.job_hash: []
                                                  for job in jobs}
    retries_used = 0
    claim_dir = tempfile.mkdtemp(prefix="repro-claims-")
    fresh: List[AnalysisJob] = list(jobs)
    suspects: List[AnalysisJob] = []

    def lost_event(job_hash: str, detail: str) -> Dict[str, object]:
        return {"site": "pool", "kind": "worker-lost",
                "key": f"{job_hash}:{attempt[job_hash]}", "detail": detail}

    def give_up(job: AnalysisJob, reason: str) -> None:
        results[job.job_hash] = JobResult(
            name=job.name, job_hash=job.job_hash, status="error",
            message=f"worker lost: {reason}")

    try:
        while fresh or suspects:
            if fresh:
                group = fresh
                fresh = []
                for job in group:
                    attempt[job.job_hash] += 1
                round_results, broke = _pool_round(
                    group, min(workers, len(group)), timeout, attempt,
                    claim_dir)
                for job, result in zip(group, round_results):
                    if result is not None:
                        results[job.job_hash] = result
                if not broke:
                    continue
                for job, result in zip(group, round_results):
                    if result is not None:
                        continue
                    job_hash = job.job_hash
                    if os.path.exists(_claim_path(claim_dir, job_hash,
                                                  attempt[job_hash])):
                        # In flight when the pool died: a crash suspect.
                        events[job_hash].append(lost_event(
                            job_hash, "in flight when the worker pool broke"))
                        if attempt[job_hash] >= policy.max_attempts:
                            give_up(job, f"pool broke on final attempt "
                                         f"{attempt[job_hash]}")
                        elif policy.budget is not None \
                                and retries_used >= policy.budget:
                            give_up(job, "batch retry budget exhausted")
                        else:
                            retries_used += 1
                            suspects.append(job)
                    else:
                        # Never started: innocent.  Refund the attempt and
                        # run it in the next (rebuilt) group round.
                        attempt[job_hash] -= 1
                        fresh.append(job)
            else:
                job = suspects.pop(0)
                job_hash = job.job_hash
                attempt[job_hash] += 1
                delay = policy.backoff(job_hash, attempt[job_hash])
                if delay > 0:
                    time.sleep(delay)
                round_results, broke = _pool_round(
                    [job], 1, timeout, attempt, claim_dir)
                if round_results[0] is not None:
                    results[job_hash] = round_results[0]
                    continue
                solo_breaks[job_hash] = solo_breaks.get(job_hash, 0) + 1
                events[job_hash].append(lost_event(
                    job_hash, f"broke a single-worker pool "
                              f"(solo break {solo_breaks[job_hash]})"))
                if solo_breaks[job_hash] >= POISON_SOLO_BREAKS:
                    events[job_hash].append({
                        "site": "pool", "kind": "poison-quarantine",
                        "key": f"{job_hash}:{attempt[job_hash]}",
                        "detail": f"quarantined after {solo_breaks[job_hash]} "
                                  f"attributable pool breaks"})
                    give_up(job, f"poison job quarantined after "
                                 f"{solo_breaks[job_hash]} pool breaks")
                elif attempt[job_hash] >= policy.max_attempts:
                    give_up(job, f"pool broke on final attempt "
                                 f"{attempt[job_hash]}")
                elif policy.budget is not None \
                        and retries_used >= policy.budget:
                    give_up(job, "batch retry budget exhausted")
                else:
                    retries_used += 1
                    suspects.append(job)
    finally:
        shutil.rmtree(claim_dir, ignore_errors=True)

    ordered: List[JobResult] = []
    for job in jobs:
        job_hash = job.job_hash
        result = results.get(job_hash)
        if result is None:   # defensive: supervision must not lose jobs
            result = JobResult(name=job.name, job_hash=job_hash,
                               status="error",
                               message="worker lost: job was never resolved")
        result.attempts = max(attempt[job_hash], 1)
        if events[job_hash]:
            result.fault_events = list(result.fault_events) + events[job_hash]
        ordered.append(result)
    return ordered


def _claim_path(claim_dir: str, job_hash: str, attempt: int) -> str:
    return os.path.join(claim_dir, f"{job_hash}.{attempt}")


def _pool_round(jobs: Sequence[AnalysisJob], pool_size: int,
                timeout: Optional[float], attempt: Dict[str, int],
                claim_dir: str) -> Tuple[List[Optional[JobResult]], bool]:
    """One fresh pool over ``jobs``: per-job results (None = unresolved).

    Per-job deadlines are rolling: job ``i`` cannot start before a worker
    slot frees up, so its clock starts at the ``(i - pool_size)``-th
    completion (round start for the first wave).  A fast job queued behind
    a slow one is therefore never misreported as timed out.

    Returns ``(results, broke)``; ``broke`` is True when the pool died.
    Futures that completed before the break are still harvested -- only
    genuinely unresolved jobs come back as None, for the supervision loop
    to triage via their claim files.
    """
    results: List[Optional[JobResult]] = [None] * len(jobs)
    domains = tuple(sorted({job_domain(job) for job in jobs}))
    executor = ProcessPoolExecutor(
        max_workers=pool_size,
        mp_context=_pool_context(),
        initializer=_worker_init,
        initargs=(domains,))
    overdue = False
    broke = False
    futures = []
    try:
        start = time.monotonic()
        # When the i-th waited-on future settled (timeouts settle at the
        # moment we gave up on them: the worker is still busy, so jobs
        # queued behind are not starting either).
        settled_at: List[float] = []
        futures = [executor.submit(
            _execute_job, job, attempt[job.job_hash],
            _claim_path(claim_dir, job.job_hash, attempt[job.job_hash]))
            for job in jobs]
        for index, (job, future) in enumerate(zip(jobs, futures)):
            remaining = None
            if timeout is not None:
                slot_free = settled_at[index - pool_size] \
                    if index >= pool_size else start
                remaining = max(0.0, slot_free + timeout - time.monotonic())
            try:
                results[index] = future.result(timeout=remaining)
            except FutureTimeout:
                if future.cancel():
                    status, note = "cancelled", "cancelled: batch deadline reached"
                else:
                    status, note = "timeout", \
                        f"timed out after {timeout:.1f}s wall-clock budget"
                    overdue = True
                results[index] = JobResult(name=job.name, job_hash=job.job_hash,
                                           status=status, message=note)
            except BrokenProcessPool:
                # The pool died (OOM-killed worker, injected crash, ...).
                # Stop waiting; the supervision loop rebuilds and re-submits.
                broke = True
                break
            except Exception as exc:  # noqa: BLE001 -- surface, don't crash batch
                results[index] = JobResult(name=job.name, job_hash=job.job_hash,
                                           status="error",
                                           message=f"{type(exc).__name__}: {exc}")
            settled_at.append(time.monotonic())
        if broke:
            # Harvest everything that finished before the pool died.
            for index, future in enumerate(futures):
                if results[index] is not None or not future.done():
                    continue
                try:
                    results[index] = future.result(timeout=0)
                except Exception:  # noqa: BLE001 -- broken future: stays None
                    pass
    except KeyboardInterrupt:
        for future in futures:
            future.cancel()
        _terminate_workers(executor)
        executor.shutdown(wait=False, cancel_futures=True)
        raise
    finally:
        if overdue:
            # A timed-out job is still burning its worker, and the
            # executor's atexit hook would join it forever: kill the
            # worker processes so shutdown (and interpreter exit)
            # actually completes.
            _terminate_workers(executor)
        executor.shutdown(wait=not (overdue or broke), cancel_futures=True)
    return results, broke


def _terminate_workers(executor: ProcessPoolExecutor) -> None:
    """Forcefully stop the pool's worker processes (stuck/overdue jobs).

    Reaches into the executor's process table -- there is no public kill
    switch on ProcessPoolExecutor, and without this a worker stuck in a
    never-terminating analysis would block interpreter exit.
    """
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, ValueError):
            pass


# ---------------------------------------------------------------------------
# The long-lived supervised pool (the gateway's execution backend)
# ---------------------------------------------------------------------------

class SupervisedPool:
    """A persistent worker pool accepting one job at a time, supervised.

    ``run_batch``/``_run_on_pool`` build a fresh pool per batch -- right
    for CLI batches, far too heavy for a gateway answering a stream of
    single requests.  This class keeps one ``ProcessPoolExecutor`` warm
    across requests (per-worker engines stay hot) and exposes a blocking,
    thread-safe :meth:`submit` for the gateway's dispatcher threads.

    Supervision is per-submission: a ``BrokenProcessPool`` rebuilds the
    executor (one rebuilder; concurrent submitters whose futures died with
    it simply retry on the fresh pool) and the job is retried up to the
    policy's ``max_attempts`` with deterministic backoff.  A job that
    exceeds ``timeout`` is reported as ``timeout`` and its stuck worker is
    terminated with the pool rebuilt -- collateral in-flight jobs from
    other dispatcher threads see the break and retry, bounded by the same
    policy.  Callers are expected to keep concurrent submissions at or
    below ``workers`` (the gateway sizes its dispatcher thread pool to
    match), so a submitted job starts immediately and its timeout clock is
    honest.
    """

    def __init__(self, workers: int, timeout: Optional[float] = None,
                 policy: Optional[RetryPolicy] = None,
                 domains: Sequence[str] = ()) -> None:
        self.workers = max(1, workers)
        self.timeout = timeout
        self.policy = policy if policy is not None else RetryPolicy()
        self.domains = tuple(domains)
        self.rebuilds = 0
        self._lock = threading.Lock()
        self._generation = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False

    # -- pool lifecycle ----------------------------------------------------

    def _ensure(self) -> Tuple[ProcessPoolExecutor, int]:
        with self._lock:
            if self._closed:
                raise RuntimeError("SupervisedPool is shut down")
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=_pool_context(),
                    initializer=_worker_init,
                    initargs=(self.domains,))
            return self._executor, self._generation

    def _rebuild(self, generation: int, terminate: bool = False) -> None:
        """Retire the pool of ``generation`` (idempotent across threads)."""
        with self._lock:
            if self._generation != generation or self._executor is None:
                return   # another thread already rebuilt this generation
            executor = self._executor
            self._executor = None
            self._generation += 1
            self.rebuilds += 1
        if terminate:
            _terminate_workers(executor)
        executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Drain and close the pool (idempotent)."""
        with self._lock:
            executor = self._executor
            self._executor = None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    # -- execution ---------------------------------------------------------

    def submit(self, job: AnalysisJob) -> JobResult:
        """Run one job to a result (blocking; safe from many threads)."""
        attempt = 0
        events: List[Dict[str, object]] = []
        while True:
            attempt += 1
            try:
                executor, generation = self._ensure()
            except RuntimeError:
                return self._lost(job, attempt, events,
                                  "gateway pool shut down")
            try:
                future = executor.submit(_execute_job, job, attempt)
            except (RuntimeError, BrokenProcessPool):
                # The executor died or was retired between _ensure and
                # submit: rebuild that generation and try again.
                self._rebuild(generation)
                continue
            try:
                result = future.result(timeout=self.timeout)
                break
            except FutureTimeout:
                # The worker is stuck past the budget: report the timeout
                # and put the pool down (a terminate is the only way to
                # free the seat).  Innocent co-in-flight jobs see the
                # break and retry on the rebuilt pool.
                self._rebuild(generation, terminate=True)
                result = JobResult(
                    name=job.name, job_hash=job.job_hash, status="timeout",
                    message=f"timed out after {self.timeout:.1f}s "
                            f"wall-clock budget")
                break
            except BrokenProcessPool:
                self._rebuild(generation)
                events.append({
                    "site": "pool", "kind": "worker-lost",
                    "key": f"{job.job_hash}:{attempt}",
                    "detail": "in flight when the gateway pool broke"})
                if attempt >= self.policy.max_attempts:
                    return self._lost(job, attempt, events,
                                      f"pool broke on final attempt "
                                      f"{attempt}")
                delay = self.policy.backoff(job.job_hash, attempt)
                if delay > 0:
                    time.sleep(delay)
            except Exception as exc:  # noqa: BLE001 -- surface, don't crash
                result = JobResult(
                    name=job.name, job_hash=job.job_hash, status="error",
                    message=f"{type(exc).__name__}: {exc}")
                break
        result.attempts = max(result.attempts, attempt)
        if events:
            result.fault_events = list(result.fault_events) + events
        return result

    def _lost(self, job: AnalysisJob, attempt: int,
              events: List[Dict[str, object]], reason: str) -> JobResult:
        result = JobResult(name=job.name, job_hash=job.job_hash,
                           status="error", message=f"worker lost: {reason}",
                           attempts=attempt)
        result.fault_events = events
        return result

    def describe(self) -> Dict[str, object]:
        """JSON-able pool state for gateway stats/health endpoints."""
        with self._lock:
            alive = self._executor is not None
        return {"workers": self.workers, "timeout": self.timeout,
                "alive": alive, "rebuilds": self.rebuilds,
                "closed": self._closed}


def run_jobs(jobs: Sequence[AnalysisJob], workers: int = 0,
             store: Optional[ResultStore] = None,
             timeout: Optional[float] = None,
             refresh: bool = False,
             retry: Optional[RetryPolicy] = None,
             degrade: bool = True) -> List[JobResult]:
    """Convenience wrapper returning just the results, in input order."""
    return run_batch(jobs, SchedulerConfig(workers=workers, timeout=timeout,
                                           store=store, refresh=refresh,
                                           retry=retry,
                                           degrade=degrade)).results
