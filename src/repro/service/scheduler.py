"""Multiprocess batch scheduler: fan analysis jobs out over worker processes.

The scheduler turns a list of :class:`~repro.service.jobs.AnalysisJob` into a
deterministic list of :class:`~repro.service.jobs.JobResult`:

* **store first** -- jobs whose hash is in the persistent store
  (:mod:`repro.service.store`) are served without any work;
* **fan-out** -- remaining jobs run on a ``ProcessPoolExecutor``.  Each
  worker installs a fresh :class:`~repro.logic.entailment.EntailmentEngine`
  at start (no state inherited from the parent, none leaked back) and keeps
  it warm across all jobs it executes, so a worker analyzing its third
  program already owns the hot projection caches;
* **timeouts and cancellation** -- with ``timeout`` set, every job gets that
  much wall clock from the moment a worker slot can pick it up (a rolling
  per-job deadline, so fast jobs queued behind slow ones are never
  misreported).  A job that exceeds it is reported as ``timeout`` and its
  stuck worker is terminated when the pool shuts down; jobs still queued
  behind it are cancelled and reported as ``cancelled``.
  ``KeyboardInterrupt`` cancels everything still pending before
  propagating;
* **deterministic ordering** -- results always come back in input order, no
  matter which worker finished first, and identical jobs (same content
  hash) are executed only once per batch.

``workers=0`` runs everything inline in the calling process (no pool, no
pickling) -- handy for tests and for callers that want the scheduler's
store/dedup behaviour without multiprocessing.  Inline execution cannot
preempt a job, so ``timeout`` requires ``workers >= 1``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.service.jobs import AnalysisJob, JobResult, job_domain, run_job
from repro.service.store import ResultStore


def default_worker_count() -> int:
    """A sensible default fan-out: physical parallelism minus one, capped."""
    cpus = os.cpu_count() or 1
    return max(1, min(8, cpus - 1))


def _worker_init(domains: Sequence[str] = ()) -> None:
    """Per-process initializer: fresh, pre-warmed entailment engines.

    Backend-aware: the batch's distinct job domains are warmed explicitly,
    so a pool serving ``polyhedra`` jobs pre-builds that backend's engine
    instead of silently warming the default one and paying the cold-start
    inside the first timed job.
    """
    from repro.logic import entailment

    try:
        entailment.reset_engine()
    except ValueError:
        # $REPRO_DOMAIN names an unknown backend: the registry is already
        # cleared, and every job will report the structured per-job error.
        # The initializer must not raise -- that would break the whole pool.
        pass
    for domain in (domains or (entailment.active_domain(),)):
        try:
            entailment.warm_engine(domain)
        except ValueError:
            # Unknown domain: the job itself will report the structured
            # error; warm-up must not take the worker down.
            continue


def _execute_job(job: AnalysisJob) -> JobResult:
    """What the pool actually runs (separate from run_job for test seams)."""
    return run_job(job)


def _pool_context():
    """Prefer fork (workers inherit the already-imported LP stack)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass
class SchedulerConfig:
    """Knobs of one batch run."""

    #: Number of worker processes; 0 runs jobs inline in this process.
    workers: int = 0
    #: Per-job wall-clock budget in seconds, measured from when a worker
    #: slot frees up for the job (requires ``workers >= 1``; inline
    #: execution cannot preempt).
    timeout: Optional[float] = None
    #: Persistent result store; None disables caching entirely.
    store: Optional[ResultStore] = None
    #: Ignore store reads (results are still written back).
    refresh: bool = False


@dataclass
class JobOutcome:
    """One job's result plus where it came from."""

    job: AnalysisJob
    result: JobResult
    cached: bool = False


@dataclass
class BatchReport:
    """Everything a front end needs to render one batch run."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 0

    @property
    def results(self) -> List[JobResult]:
        return [outcome.result for outcome in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def executed(self) -> int:
        return len(self.outcomes) - self.cache_hits

    @property
    def failures(self) -> List[JobOutcome]:
        return [outcome for outcome in self.outcomes
                if outcome.result.status != "ok"]

    def cache_hit_rate(self) -> float:
        return self.cache_hits / len(self.outcomes) if self.outcomes else 0.0

    def count(self, status: str) -> int:
        return sum(1 for outcome in self.outcomes
                   if outcome.result.status == status)


def run_batch(jobs: Sequence[AnalysisJob],
              config: Optional[SchedulerConfig] = None,
              **overrides) -> BatchReport:
    """Run ``jobs`` through the store + worker pool; results in input order."""
    if config is None:
        config = SchedulerConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a SchedulerConfig or keyword overrides")
    if config.timeout is not None and config.workers < 1:
        raise ValueError("timeout requires workers >= 1 (inline execution "
                         "cannot preempt a running job)")

    start = time.perf_counter()
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
    hashes = [job.job_hash for job in jobs]

    # Layer 1: the persistent store.
    pending: Dict[str, List[int]] = {}     # hash -> input indices to fill
    for index, (job, job_hash) in enumerate(zip(jobs, hashes)):
        cached = None
        if config.store is not None and not config.refresh:
            cached = config.store.get(job_hash)
        if cached is not None:
            outcomes[index] = JobOutcome(job, _named_for(cached, job),
                                         cached=True)
        else:
            pending.setdefault(job_hash, []).append(index)

    # Layer 2: execute each distinct pending job exactly once.
    ordered_hashes = sorted(pending, key=lambda job_hash: pending[job_hash][0])
    unique_jobs = [jobs[pending[job_hash][0]] for job_hash in ordered_hashes]
    if config.workers <= 0:
        executed = [_execute_job(job) for job in unique_jobs]
    else:
        executed = _run_on_pool(unique_jobs, config.workers, config.timeout)

    for job_hash, result in zip(ordered_hashes, executed):
        if config.store is not None:
            config.store.put(result)
        for index in pending[job_hash]:
            outcomes[index] = JobOutcome(jobs[index],
                                         _named_for(result, jobs[index]),
                                         cached=False)

    report = BatchReport(outcomes=[outcome for outcome in outcomes
                                   if outcome is not None],
                         wall_seconds=round(time.perf_counter() - start, 4),
                         workers=config.workers)
    return report


def _named_for(result: JobResult, job: AnalysisJob) -> JobResult:
    """The result relabelled with this job's name.

    Store hits and batch-level dedup reuse one computed result for many
    input jobs; the payload is content-determined but the name is
    presentation, so each outcome reports under its own job's name.
    """
    if result.name == job.name:
        return result
    from dataclasses import replace

    return replace(result, name=job.name)


def _run_on_pool(jobs: Sequence[AnalysisJob], workers: int,
                 timeout: Optional[float]) -> List[JobResult]:
    """Fan out over a ProcessPoolExecutor; one result per job, input order.

    Per-job deadlines are rolling: job ``i`` cannot start before a worker
    slot frees up, so its clock starts at the ``(i - workers)``-th
    completion (batch start for the first wave).  A fast job queued behind
    a slow one is therefore never misreported as timed out.
    """
    results: List[Optional[JobResult]] = [None] * len(jobs)
    if not jobs:
        return []
    pool_size = min(workers, len(jobs))
    domains = tuple(sorted({job_domain(job) for job in jobs}))
    executor = ProcessPoolExecutor(
        max_workers=pool_size,
        mp_context=_pool_context(),
        initializer=_worker_init,
        initargs=(domains,))
    overdue = False
    futures = []
    try:
        start = time.monotonic()
        # When the i-th waited-on future settled (timeouts settle at the
        # moment we gave up on them: the worker is still busy, so jobs
        # queued behind are not starting either).
        settled_at: List[float] = []
        futures = [executor.submit(_execute_job, job) for job in jobs]
        for index, (job, future) in enumerate(zip(jobs, futures)):
            remaining = None
            if timeout is not None:
                slot_free = settled_at[index - pool_size] \
                    if index >= pool_size else start
                remaining = max(0.0, slot_free + timeout - time.monotonic())
            try:
                results[index] = future.result(timeout=remaining)
            except FutureTimeout:
                if future.cancel():
                    status, note = "cancelled", "cancelled: batch deadline reached"
                else:
                    status, note = "timeout", \
                        f"timed out after {timeout:.1f}s wall-clock budget"
                    overdue = True
                results[index] = JobResult(name=job.name, job_hash=job.job_hash,
                                           status=status, message=note)
            except BrokenProcessPool as exc:
                # The pool died (OOM-killed worker, ...): every remaining
                # future fails the same way, so fill and stop waiting.
                for rest in range(index, len(jobs)):
                    if results[rest] is None:
                        results[rest] = JobResult(
                            name=jobs[rest].name, job_hash=jobs[rest].job_hash,
                            status="error", message=f"worker pool broke: {exc}")
                break
            except Exception as exc:  # noqa: BLE001 -- surface, don't crash batch
                results[index] = JobResult(name=job.name, job_hash=job.job_hash,
                                           status="error",
                                           message=f"{type(exc).__name__}: {exc}")
            settled_at.append(time.monotonic())
    except KeyboardInterrupt:
        for future in futures:
            future.cancel()
        _terminate_workers(executor)
        executor.shutdown(wait=False, cancel_futures=True)
        raise
    finally:
        if overdue:
            # A timed-out job is still burning its worker, and the
            # executor's atexit hook would join it forever: kill the
            # worker processes so shutdown (and interpreter exit)
            # actually completes.
            _terminate_workers(executor)
        executor.shutdown(wait=not overdue, cancel_futures=True)
    return [result if result is not None else
            JobResult(name=job.name, job_hash=job.job_hash, status="cancelled",
                      message="cancelled: batch aborted")
            for job, result in zip(jobs, results)]


def _terminate_workers(executor: ProcessPoolExecutor) -> None:
    """Forcefully stop the pool's worker processes (stuck/overdue jobs).

    Reaches into the executor's process table -- there is no public kill
    switch on ProcessPoolExecutor, and without this a worker stuck in a
    never-terminating analysis would block interpreter exit.
    """
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, ValueError):
            pass


def run_jobs(jobs: Sequence[AnalysisJob], workers: int = 0,
             store: Optional[ResultStore] = None,
             timeout: Optional[float] = None,
             refresh: bool = False) -> List[JobResult]:
    """Convenience wrapper returning just the results, in input order."""
    return run_batch(jobs, SchedulerConfig(workers=workers, timeout=timeout,
                                           store=store, refresh=refresh)).results
