"""``repro serve``: a line-oriented JSON analysis service.

One request per line on stdin, one JSON response per line on stdout -- the
simplest protocol that lets an external driver (a CI harness, a notebook, a
socket wrapper like ``socat``) hand programs to a long-lived analyzer
process and benefit from the warm in-process entailment caches *and* the
persistent result store across requests.

Requests::

    {"op": "analyze", "id": 1, "source": "proc main(n) {...}",
     "options": {"max_degree": 2}, "name": "mine"}
    {"op": "batch", "id": 2, "workers": 4,
     "jobs": [{"source": "...", "options": {...}, "name": "a"}, ...]}
    {"op": "stats", "id": 3}
    {"op": "health", "id": 4}
    {"op": "ping"}
    {"op": "shutdown"}

Responses mirror the request ``id`` and carry ``status`` plus the full
:class:`~repro.service.jobs.JobResult` record(s).  ``analyze`` runs inline
(the per-request latency of spinning up a pool would dwarf a single
analysis); ``batch`` fans out through the scheduler.

The loop is built to outlive its requests: malformed lines and *any*
per-request exception -- expected validation errors and unexpected bugs
alike -- produce an ``{"error": ...}`` response and the server keeps
serving.  A reader that hangs up mid-response (stdout
``BrokenPipeError``) shuts the loop down cleanly instead of tracing back,
and the ``health`` op reports pool/store/engine state (plus any active
fault-injection config) for liveness probes.

Shutdown is graceful: SIGINT/SIGTERM finish the request in flight (its
response is still written, and with it any pending store writes), then
the loop exits 0 instead of tracing back mid-analysis.  The asyncio
gateway (:mod:`repro.service.gateway`, ``repro serve --async``) is the
concurrent counterpart of this loop.
"""

from __future__ import annotations

import json
import signal
import sys
from typing import IO, Dict, List, Optional

from repro.service.jobs import AnalysisJob
from repro.service.scheduler import SchedulerConfig, run_batch
from repro.service.store import ResultStore


def _job_from_request(payload: Dict[str, object], index: int = 0,
                      defaults: Optional[Dict[str, object]] = None) -> AnalysisJob:
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ValueError("request needs a non-empty 'source' string")
    options = payload.get("options") or {}
    if not isinstance(options, dict):
        raise ValueError("'options' must be an object")
    if defaults:
        # Server-level defaults (e.g. ``--degree-limit``) apply underneath
        # the request's own options; merged options take part in the job
        # hash, so cached results never alias across different defaults.
        options = {**defaults, **options}
    name = payload.get("name")
    return AnalysisJob.create(str(name) if name else f"request-{index}",
                              source, options)


class _GracefulShutdown(Exception):
    """Raised out of a blocking read when a drain signal arrives idle."""


class AnalysisServer:
    """Stateful request loop over a store and (for batches) a worker pool."""

    def __init__(self, store: Optional[ResultStore] = None,
                 workers: int = 0,
                 default_options: Optional[Dict[str, object]] = None) -> None:
        self.store = store
        self.workers = workers
        self.default_options = dict(default_options or {})
        self.requests_served = 0
        self._shutdown = False
        self._busy = False

    def request_shutdown(self, *_signal_args) -> None:
        """Signal-handler entry: drain the request in flight, then exit.

        Mid-request the handler only sets a flag -- the running analysis
        finishes, its response (and store write) lands, and the loop
        breaks before the next read.  Idle (blocked in ``readline``) it
        raises, breaking the blocking read immediately; PEP 475 would
        otherwise retry the read and keep an idle server alive until the
        next request.
        """
        self._shutdown = True
        if not self._busy:
            raise _GracefulShutdown()

    # -- request handlers --------------------------------------------------

    def handle(self, payload: Dict[str, object]) -> Dict[str, object]:
        op = payload.get("op", "analyze")
        if op == "ping":
            return {"op": "ping", "ok": True}
        if op == "stats":
            return self._handle_stats()
        if op == "health":
            return self._handle_health()
        if op == "analyze":
            return self._handle_analyze(payload)
        if op == "batch":
            return self._handle_batch(payload)
        if op == "lint":
            return self._handle_lint(payload)
        return {"error": f"unknown op {op!r}"}

    def _handle_lint(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Run the static lint passes over one source text (no analysis)."""
        from repro.lang.analysis import (lint_source, max_severity,
                                         severity_counts)
        from repro.lang.parser import parse_program

        source = payload.get("source")
        if not isinstance(source, str):
            raise ValueError("'lint' needs a 'source' string")
        options = payload.get("options") or {}
        if not isinstance(options, dict):
            raise ValueError("'options' must be an object")
        counter = options.get("resource_counter")
        try:
            program = parse_program(source)
        except Exception:
            diagnostics = lint_source(source)
        else:
            # The resource counter is zero-initialized by convention, so
            # counter updates are not uninitialized reads.
            seed = set(program.main_procedure.params)
            if counter:
                seed.add(str(counter))
            diagnostics = lint_source(source, initial_state=seed)
        return {
            "op": "lint",
            "name": str(payload.get("name") or "<request>"),
            "severity": max_severity(diagnostics),
            "counts": severity_counts(diagnostics),
            "diagnostics": [diag.to_dict() for diag in diagnostics],
        }

    def _handle_analyze(self, payload: Dict[str, object]) -> Dict[str, object]:
        job = _job_from_request(payload, self.requests_served,
                                self.default_options)
        report = run_batch([job], SchedulerConfig(workers=0, store=self.store))
        outcome = report.outcomes[0]
        return {"op": "analyze", "status": outcome.result.status,
                "cached": outcome.cached, "result": outcome.result.to_record()}

    def _handle_batch(self, payload: Dict[str, object]) -> Dict[str, object]:
        raw_jobs = payload.get("jobs")
        if not isinstance(raw_jobs, list) or not raw_jobs:
            raise ValueError("'batch' needs a non-empty 'jobs' array")
        jobs = [_job_from_request(raw, index, self.default_options)
                for index, raw in enumerate(raw_jobs)]
        workers = payload.get("workers", self.workers)
        timeout = payload.get("timeout")
        report = run_batch(jobs, SchedulerConfig(
            workers=int(workers), store=self.store,
            timeout=float(timeout) if timeout is not None else None))
        return {
            "op": "batch",
            "wall_seconds": report.wall_seconds,
            "cache_hits": report.cache_hits,
            "results": [outcome.result.to_record()
                        for outcome in report.outcomes],
            "cached": [outcome.cached for outcome in report.outcomes],
        }

    def _handle_stats(self) -> Dict[str, object]:
        from repro.logic.entailment import get_engine

        store_stats = None
        if self.store:
            store_stats = self.store.stats.as_dict()
            store_stats["quarantine_records"] = self.store.quarantine_count()
        return {
            "op": "stats",
            "requests_served": self.requests_served,
            "store": store_stats,
            "engine": get_engine().stats.as_dict(),
        }

    def _handle_health(self) -> Dict[str, object]:
        """Liveness/readiness probe: pool config, store and engine state."""
        from repro.logic.entailment import active_domain, engine_fingerprint
        from repro.service import faults
        from repro.service.jobs import SCHEMA_VERSION

        store_state = None
        if self.store:
            store_state = {
                "root": self.store.root,
                "records": len(self.store),
                "quarantine_records": self.store.quarantine_count(),
                "stats": self.store.stats.as_dict(),
            }
        return {
            "op": "health",
            "ok": True,
            "schema": SCHEMA_VERSION,
            "requests_served": self.requests_served,
            "pool": {"workers": self.workers,
                     "default_options": self.default_options},
            "store": store_state,
            "engine": engine_fingerprint(active_domain()),
            "faults": faults.describe(),
        }

    # -- the loop ----------------------------------------------------------

    def serve(self, input_stream: IO[str], output_stream: IO[str]) -> int:
        """Process requests until shutdown/EOF/signal; return served count."""
        while not self._shutdown:
            self._busy = False
            try:
                line = input_stream.readline()
            except _GracefulShutdown:
                break
            self._busy = True
            if not line:
                break   # EOF
            line = line.strip()
            if not line:
                continue
            response: Dict[str, object]
            request_id = None
            try:
                payload = json.loads(line)
                if not isinstance(payload, dict):
                    raise ValueError("request must be a JSON object")
                request_id = payload.get("id")
                if payload.get("op") == "shutdown":
                    response = {"op": "shutdown", "ok": True}
                    if request_id is not None:
                        response["id"] = request_id
                    try:
                        self._respond(output_stream, response)
                    except BrokenPipeError:
                        pass
                    break
                response = self.handle(payload)
            except (ValueError, TypeError, KeyError) as exc:
                response = {"error": str(exc)}
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # noqa: BLE001 -- one request must
                # never take the server down; unexpected failures become a
                # structured error naming the exception class.
                response = {"error": f"{type(exc).__name__}: {exc}"}
            if request_id is not None:
                response.setdefault("id", request_id)
            self.requests_served += 1
            try:
                self._respond(output_stream, response)
            except BrokenPipeError:
                # The reader hung up: there is nobody left to answer, so
                # shut down cleanly instead of tracing back.
                break
        return self.requests_served

    @staticmethod
    def _respond(output_stream: IO[str], response: Dict[str, object]) -> None:
        json.dump(response, output_stream, separators=(",", ":"))
        output_stream.write("\n")
        output_stream.flush()


def serve_stdio(store: Optional[ResultStore] = None, workers: int = 0,
                default_options: Optional[Dict[str, object]] = None) -> int:
    """Entry point for ``repro serve``: loop over stdin/stdout.

    SIGINT/SIGTERM drain gracefully (finish the in-flight request, flush
    its response and store write, exit 0) instead of tracing back.
    """
    server = AnalysisServer(store=store, workers=workers,
                            default_options=default_options)
    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum,
                                             server.request_shutdown)
        except ValueError:
            # Not the main thread (embedded use): signals stay whoever's
            # they were; EOF/shutdown-op still stop the loop.
            pass
    try:
        server.serve(sys.stdin, sys.stdout)
    except _GracefulShutdown:
        # The drain signal landed outside the loop's own read guard
        # (e.g. while writing a response just before the next read).
        pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0
