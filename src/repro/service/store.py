"""Persistent, content-addressed result store.

Records are JSON files keyed by the job's canonical content hash and laid
out git-style (``<root>/<hh>/<hash>.json`` with a two-character fan-out
directory), so re-running a suite only analyzes programs whose source or
options changed.  Every record carries the full :class:`JobResult` payload
including the serialised derivation certificate, plus provenance metadata
(schema version, creation time, the job name it was first computed under).

Writes are atomic (temp file + ``os.replace``) so a crashed or concurrent
writer can never leave a half-written record; concurrent writers of the
*same* hash write identical content, so the race is benign.  Unreadable or
schema-mismatched records are treated as cache misses and overwritten on
the next put.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, Iterator, Optional

from repro.service.jobs import SCHEMA_VERSION, JobResult

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


class StoreStats:
    """Hit/miss/write counters of one :class:`ResultStore` instance."""

    __slots__ = ("hits", "misses", "writes", "invalid")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalid = 0        # unreadable/mismatched records seen

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "invalid": self.invalid,
                "hit_rate": round(self.hit_rate(), 4)}

    def __repr__(self) -> str:
        return (f"StoreStats(hits={self.hits}, misses={self.misses}, "
                f"writes={self.writes}, invalid={self.invalid})")


class ResultStore:
    """On-disk cache of :class:`JobResult` records keyed by job hash."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root if root is not None else default_cache_dir()
        self.stats = StoreStats()

    # -- paths -------------------------------------------------------------

    def _path(self, job_hash: str) -> str:
        return os.path.join(self.root, job_hash[:2], f"{job_hash}.json")

    # -- queries -----------------------------------------------------------

    def get(self, job_hash: str) -> Optional[JobResult]:
        """The cached result for ``job_hash``, or None (counts hit/miss)."""
        path = self._path(job_hash)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            if os.path.exists(path):
                self.stats.invalid += 1
            self.stats.misses += 1
            return None
        if record.get("schema") != SCHEMA_VERSION \
                or record.get("job_hash") != job_hash:
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        try:
            result = JobResult.from_record(record)
        except (KeyError, TypeError):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, result: JobResult) -> None:
        """Persist a result (atomic write; only cacheable statuses are kept)."""
        if not result.cacheable:
            return
        record = result.to_record()
        record["stored_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
        path = self._path(result.job_hash)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=1, sort_keys=True)
                handle.write("\n")
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def __contains__(self, job_hash: str) -> bool:
        return os.path.exists(self._path(job_hash))

    # -- maintenance -------------------------------------------------------

    def iter_hashes(self) -> Iterator[str]:
        """All record hashes currently on disk."""
        if not os.path.isdir(self.root):
            return
        for fan in sorted(os.listdir(self.root)):
            subdir = os.path.join(self.root, fan)
            if not os.path.isdir(subdir):
                continue
            for entry in sorted(os.listdir(subdir)):
                if entry.endswith(".json") and not entry.startswith("."):
                    yield entry[:-len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_hashes())

    def clear(self) -> int:
        """Delete every record; return how many were removed."""
        removed = 0
        for job_hash in list(self.iter_hashes()):
            try:
                os.unlink(self._path(job_hash))
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        return f"ResultStore({self.root!r}, {self.stats!r})"
