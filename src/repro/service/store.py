"""Persistent, content-addressed result store.

Records are JSON files keyed by the job's canonical content hash and laid
out git-style (``<root>/<hh>/<hash>.json`` with a two-character fan-out
directory), so re-running a suite only analyzes programs whose source or
options changed.  Every record carries the full :class:`JobResult` payload
including the serialised derivation certificate, plus provenance metadata
(schema version, creation time, the job name it was first computed under)
and a SHA-256 ``checksum`` over the record body, so silent on-disk
corruption (bit rot, a torn write that still parses) is detected rather
than served.

Writes are atomic (temp file + ``os.replace``) so a crashed or concurrent
writer can never leave a half-written record; concurrent writers of the
*same* hash write identical content, so the race is benign.

Bad records are triaged in two tiers:

* **replaceable** -- a well-formed record with a different schema version:
  a legitimate leftover from an older code version.  Counted ``invalid``,
  treated as a miss, overwritten by the next put;
* **corrupt** -- unparseable JSON, a failed checksum, a record filed under
  the wrong hash, or a record missing required fields.  These are moved to
  ``<root>/quarantine/`` (keeping the evidence for post-mortems, and
  keeping the hot path from re-parsing the same broken file on every
  lookup), counted ``quarantined``, and reported as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Dict, Iterator, Optional

from repro.service import faults
from repro.service.jobs import SCHEMA_VERSION, JobResult

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory (never a valid two-character fan-out) corrupt records are
#: moved to instead of being re-parsed on every lookup.
QUARANTINE_DIR = "quarantine"


def default_cache_dir() -> str:
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


def record_checksum(record: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON image of ``record`` (sans checksum)."""
    body = {key: value for key, value in record.items() if key != "checksum"}
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"),
                         default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class StoreStats:
    """Hit/miss/write counters of one :class:`ResultStore` instance."""

    __slots__ = ("hits", "misses", "writes", "invalid", "quarantined")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalid = 0        # unreadable/mismatched records seen
        self.quarantined = 0    # corrupt records moved to quarantine/

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "invalid": self.invalid,
                "quarantined": self.quarantined,
                "hit_rate": round(self.hit_rate(), 4)}

    def __repr__(self) -> str:
        return (f"StoreStats(hits={self.hits}, misses={self.misses}, "
                f"writes={self.writes}, invalid={self.invalid}, "
                f"quarantined={self.quarantined})")


class ResultStore:
    """On-disk cache of :class:`JobResult` records keyed by job hash."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root if root is not None else default_cache_dir()
        self.stats = StoreStats()

    # -- paths -------------------------------------------------------------

    def _path(self, job_hash: str) -> str:
        return os.path.join(self.root, job_hash[:2], f"{job_hash}.json")

    @property
    def quarantine_root(self) -> str:
        return os.path.join(self.root, QUARANTINE_DIR)

    # -- queries -----------------------------------------------------------

    def get(self, job_hash: str) -> Optional[JobResult]:
        """The cached result for ``job_hash``, or None (counts hit/miss)."""
        path = self._path(job_hash)
        faults.fire("store.get", job_hash, path=path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except OSError:
            self.stats.misses += 1
            return None
        except ValueError:
            return self._reject(path, job_hash, corrupt=True)
        if record.get("schema") != SCHEMA_VERSION:
            # A well-formed record from another code version: replaceable,
            # not corrupt.  The next put overwrites it in place.
            return self._reject(path, job_hash, corrupt=False)
        if record.get("checksum") != record_checksum(record) \
                or record.get("job_hash") != job_hash:
            return self._reject(path, job_hash, corrupt=True)
        try:
            result = JobResult.from_record(record)
        except (KeyError, TypeError):
            return self._reject(path, job_hash, corrupt=True)
        self.stats.hits += 1
        return result

    def _reject(self, path: str, job_hash: str, corrupt: bool) -> None:
        """Account one bad record (quarantining it when it is corrupt)."""
        self.stats.invalid += 1
        self.stats.misses += 1
        if corrupt and self._quarantine(path, job_hash):
            self.stats.quarantined += 1
        return None

    def _quarantine(self, path: str, job_hash: str) -> bool:
        """Move a corrupt record out of the hot path (True on success)."""
        try:
            os.makedirs(self.quarantine_root, exist_ok=True)
            target = os.path.join(self.quarantine_root, f"{job_hash}.json")
            if os.path.exists(target):
                # A previous incarnation is already quarantined; keep the
                # newest evidence.
                os.unlink(target)
            os.replace(path, target)
            return True
        except OSError:
            return False

    def put(self, result: JobResult) -> None:
        """Persist a result (atomic write; only cacheable statuses are kept)."""
        if not result.cacheable:
            return
        record = result.to_record()
        record["stored_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
        record["checksum"] = record_checksum(record)
        path = self._path(result.job_hash)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        faults.fire("store.put", result.job_hash, path=path)
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=1, sort_keys=True)
                handle.write("\n")
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def __contains__(self, job_hash: str) -> bool:
        return os.path.exists(self._path(job_hash))

    # -- maintenance -------------------------------------------------------

    def iter_hashes(self) -> Iterator[str]:
        """All record hashes currently on disk (quarantine excluded)."""
        if not os.path.isdir(self.root):
            return
        for fan in sorted(os.listdir(self.root)):
            subdir = os.path.join(self.root, fan)
            # Records live only under two-character fan-out directories;
            # quarantine/ (and anything else) is not part of the cache.
            if len(fan) != 2 or not os.path.isdir(subdir):
                continue
            for entry in sorted(os.listdir(subdir)):
                if entry.endswith(".json") and not entry.startswith("."):
                    yield entry[:-len(".json")]

    def quarantine_count(self) -> int:
        """How many corrupt records are parked in ``quarantine/`` on disk."""
        try:
            return sum(1 for entry in os.listdir(self.quarantine_root)
                       if entry.endswith(".json"))
        except OSError:
            return 0

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_hashes())

    def clear(self) -> int:
        """Delete every record; return how many were removed."""
        removed = 0
        for job_hash in list(self.iter_hashes()):
            try:
                os.unlink(self._path(job_hash))
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        return f"ResultStore({self.root!r}, {self.stats!r})"
