"""Persistent, content-addressed result store.

Records are JSON files keyed by the job's canonical content hash and laid
out git-style (``<root>/<hh>/<hash>.json`` with a two-character fan-out
directory), so re-running a suite only analyzes programs whose source or
options changed.  Every record carries the full :class:`JobResult` payload
including the serialised derivation certificate, plus provenance metadata
(schema version, creation time, the job name it was first computed under)
and a SHA-256 ``checksum`` over the record body, so silent on-disk
corruption (bit rot, a torn write that still parses) is detected rather
than served.

Writes are atomic (temp file + ``os.replace``) so a crashed or concurrent
writer can never leave a half-written record; concurrent writers of the
*same* hash write identical content, so the race is benign.

**Many processes, one root.**  The store is built to be pointed at by any
number of gateway/worker processes simultaneously (the gateway's whole
deployment story).  The discipline, in full:

* readers never lock: atomic replace means a ``get`` either sees the old
  complete record, the new complete record, or no record -- never a torn
  one.  A read that *does* fail to parse is retried once after a short
  pause before being declared corrupt (it may have raced a quarantine
  move or a non-atomic network filesystem), so transient races do not
  destroy healthy records;
* writers never lock either: last atomic replace wins, and because
  records are content-addressed both writers wrote the same bytes;
* **maintenance locks**: operations that walk and delete many files
  (``prune``, ``clear``) serialise on an advisory ``flock`` over
  ``<root>/.maintenance-lock``, so two concurrent pruners cannot
  double-delete or double-account.  Quarantine moves take the same lock
  *non-blockingly*: losing the race just means the other process already
  moved (or replaced) the record, which is counted but harmless.


Bad records are triaged in two tiers:

* **replaceable** -- a well-formed record with a different schema version:
  a legitimate leftover from an older code version.  Counted ``invalid``,
  treated as a miss, overwritten by the next put;
* **corrupt** -- unparseable JSON, a failed checksum, a record filed under
  the wrong hash, or a record missing required fields.  These are moved to
  ``<root>/quarantine/`` (keeping the evidence for post-mortems, and
  keeping the hot path from re-parsing the same broken file on every
  lookup), counted ``quarantined``, and reported as a miss.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover -- non-POSIX fallback
    fcntl = None

from repro.service import faults
from repro.service.jobs import SCHEMA_VERSION, JobResult

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory (never a valid two-character fan-out) corrupt records are
#: moved to instead of being re-parsed on every lookup.
QUARANTINE_DIR = "quarantine"

#: Advisory lock file serialising maintenance passes (prune/clear) and
#: quarantine moves across processes sharing one store root.
MAINTENANCE_LOCK = ".maintenance-lock"

#: How long a reader waits before retrying one failed parse.  Long enough
#: for a racing ``os.replace`` to land, short enough to be invisible on the
#: (rare) genuinely-corrupt path.
READ_RETRY_DELAY = 0.02


def default_cache_dir() -> str:
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


def record_checksum(record: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON image of ``record`` (sans checksum)."""
    body = {key: value for key, value in record.items() if key != "checksum"}
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"),
                         default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class StoreStats:
    """Hit/miss/write counters of one :class:`ResultStore` instance."""

    __slots__ = ("hits", "misses", "writes", "invalid", "quarantined")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalid = 0        # unreadable/mismatched records seen
        self.quarantined = 0    # corrupt records moved to quarantine/

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "invalid": self.invalid,
                "quarantined": self.quarantined,
                "hit_rate": round(self.hit_rate(), 4)}

    def __repr__(self) -> str:
        return (f"StoreStats(hits={self.hits}, misses={self.misses}, "
                f"writes={self.writes}, invalid={self.invalid}, "
                f"quarantined={self.quarantined})")


@dataclass
class PruneReport:
    """What one :meth:`ResultStore.prune` pass did."""

    removed: int = 0
    bytes_freed: int = 0
    kept: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {"removed": self.removed, "bytes_freed": self.bytes_freed,
                "kept": self.kept}


class ResultStore:
    """On-disk cache of :class:`JobResult` records keyed by job hash."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root if root is not None else default_cache_dir()
        self.stats = StoreStats()

    # -- paths -------------------------------------------------------------

    def _path(self, job_hash: str) -> str:
        return os.path.join(self.root, job_hash[:2], f"{job_hash}.json")

    @property
    def quarantine_root(self) -> str:
        return os.path.join(self.root, QUARANTINE_DIR)

    # -- queries -----------------------------------------------------------

    def get(self, job_hash: str) -> Optional[JobResult]:
        """The cached result for ``job_hash``, or None (counts hit/miss)."""
        path = self._path(job_hash)
        faults.fire("store.get", job_hash, path=path)
        try:
            record = self._read_record(path)
        except OSError:
            self.stats.misses += 1
            return None
        except ValueError:
            return self._reject(path, job_hash, corrupt=True)
        if record.get("schema") != SCHEMA_VERSION:
            # A well-formed record from another code version: replaceable,
            # not corrupt.  The next put overwrites it in place.
            return self._reject(path, job_hash, corrupt=False)
        if record.get("checksum") != record_checksum(record) \
                or record.get("job_hash") != job_hash:
            return self._reject(path, job_hash, corrupt=True)
        try:
            result = JobResult.from_record(record)
        except (KeyError, TypeError):
            return self._reject(path, job_hash, corrupt=True)
        self.stats.hits += 1
        return result

    def _read_record(self, path: str) -> Dict[str, object]:
        """Parse one record file, retrying a single transient parse failure.

        With atomic writes a reader can never see a torn record on a POSIX
        filesystem -- but a parse failure *can* be the shadow of a racing
        quarantine move or of weaker rename semantics (network mounts).
        One short-delay retry distinguishes a transient race (second read
        succeeds, or the file is gone -- ``OSError`` -- and the caller
        counts a plain miss) from genuine corruption (second read fails
        identically and the record is quarantined).
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except ValueError:
            time.sleep(READ_RETRY_DELAY)
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)

    def _reject(self, path: str, job_hash: str, corrupt: bool) -> None:
        """Account one bad record (quarantining it when it is corrupt)."""
        self.stats.invalid += 1
        self.stats.misses += 1
        if corrupt and self._quarantine(path, job_hash):
            self.stats.quarantined += 1
        return None

    def _quarantine(self, path: str, job_hash: str) -> bool:
        """Move a corrupt record out of the hot path (True on success).

        Takes the maintenance lock non-blockingly: when another process is
        quarantining (or pruning) concurrently, losing the race is fine --
        the record is gone from the hot path either way -- but holding the
        lock keeps two movers from interleaving the unlink+replace pair.
        """
        try:
            with self._maintenance_lock(blocking=False) as held:
                if not held:
                    return False
                os.makedirs(self.quarantine_root, exist_ok=True)
                target = os.path.join(self.quarantine_root,
                                      f"{job_hash}.json")
                if os.path.exists(target):
                    # A previous incarnation is already quarantined; keep
                    # the newest evidence.
                    os.unlink(target)
                os.replace(path, target)
                return True
        except OSError:
            return False

    @contextlib.contextmanager
    def _maintenance_lock(self, blocking: bool = True):
        """Advisory cross-process lock for multi-file store maintenance.

        Yields True while the lock is held.  With ``blocking=False`` it
        yields False instead of waiting when another process holds it.  On
        platforms without ``fcntl`` (or an unwritable root) it degrades to
        an unlocked pass-through -- single-process behaviour is unchanged.
        """
        if fcntl is None:
            yield True
            return
        lock_path = os.path.join(self.root, MAINTENANCE_LOCK)
        try:
            os.makedirs(self.root, exist_ok=True)
            handle = open(lock_path, "a+")
        except OSError:
            yield True
            return
        try:
            flags = fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB)
            try:
                fcntl.flock(handle, flags)
            except OSError:
                yield False
                return
            try:
                yield True
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)
        finally:
            handle.close()

    def put(self, result: JobResult) -> None:
        """Persist a result (atomic write; only cacheable statuses are kept)."""
        if not result.cacheable:
            return
        record = result.to_record()
        record["stored_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
        record["checksum"] = record_checksum(record)
        path = self._path(result.job_hash)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        faults.fire("store.put", result.job_hash, path=path)
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=1, sort_keys=True)
                handle.write("\n")
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def __contains__(self, job_hash: str) -> bool:
        return os.path.exists(self._path(job_hash))

    # -- maintenance -------------------------------------------------------

    def iter_hashes(self) -> Iterator[str]:
        """All record hashes currently on disk (quarantine excluded)."""
        if not os.path.isdir(self.root):
            return
        for fan in sorted(os.listdir(self.root)):
            subdir = os.path.join(self.root, fan)
            # Records live only under two-character fan-out directories;
            # quarantine/ (and anything else) is not part of the cache.
            if len(fan) != 2 or not os.path.isdir(subdir):
                continue
            for entry in sorted(os.listdir(subdir)):
                if entry.endswith(".json") and not entry.startswith("."):
                    yield entry[:-len(".json")]

    def quarantine_count(self) -> int:
        """How many corrupt records are parked in ``quarantine/`` on disk."""
        try:
            return sum(1 for entry in os.listdir(self.quarantine_root)
                       if entry.endswith(".json"))
        except OSError:
            return 0

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_hashes())

    def disk_stats(self) -> Dict[str, object]:
        """What is on disk right now: entry/byte counts plus session counters.

        Unlike :attr:`stats` (per-instance hit/miss counters), this walks
        the shared root, so it reflects every process writing to it.
        """
        entries = 0
        total_bytes = 0
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for job_hash, path, size, mtime in self._walk_records():
            entries += 1
            total_bytes += size
            oldest = mtime if oldest is None else min(oldest, mtime)
            newest = mtime if newest is None else max(newest, mtime)
        quarantine_bytes = 0
        try:
            for entry in os.listdir(self.quarantine_root):
                if entry.endswith(".json"):
                    with contextlib.suppress(OSError):
                        quarantine_bytes += os.path.getsize(
                            os.path.join(self.quarantine_root, entry))
        except OSError:
            pass
        now = time.time()
        return {
            "root": self.root,
            "entries": entries,
            "total_bytes": total_bytes,
            "quarantine_records": self.quarantine_count(),
            "quarantine_bytes": quarantine_bytes,
            "oldest_age_seconds": (round(now - oldest, 1)
                                   if oldest is not None else None),
            "newest_age_seconds": (round(now - newest, 1)
                                   if newest is not None else None),
            "session": self.stats.as_dict(),
        }

    def _walk_records(self) -> Iterator[Tuple[str, str, int, float]]:
        """Every record on disk as ``(hash, path, size_bytes, mtime)``."""
        for job_hash in self.iter_hashes():
            path = self._path(job_hash)
            try:
                status = os.stat(path)
            except OSError:
                continue   # deleted under us by a concurrent process
            yield job_hash, path, status.st_size, status.st_mtime

    def prune(self, max_age_seconds: Optional[float] = None,
              max_total_bytes: Optional[int] = None) -> "PruneReport":
        """Evict records by age and/or shrink the store under a size cap.

        Age first (anything older than ``max_age_seconds`` goes), then --
        if the survivors still exceed ``max_total_bytes`` -- oldest-first
        until under the cap (LRU by file mtime: reads do not touch mtime,
        so this is write-recency, the right order for a content-addressed
        cache where rewrites refresh the record).  Holds the cross-process
        maintenance lock for the whole pass.
        """
        report = PruneReport()
        if max_age_seconds is None and max_total_bytes is None:
            report.kept = len(self)
            return report
        with self._maintenance_lock():
            records = sorted(self._walk_records(), key=lambda rec: rec[3])
            now = time.time()
            survivors: List[Tuple[str, str, int, float]] = []
            for record in records:
                job_hash, path, size, mtime = record
                if max_age_seconds is not None \
                        and now - mtime > max_age_seconds:
                    self._prune_one(path, size, report)
                else:
                    survivors.append(record)
            if max_total_bytes is not None:
                remaining = sum(size for _, _, size, _ in survivors)
                for job_hash, path, size, mtime in survivors:
                    if remaining <= max_total_bytes:
                        report.kept += 1
                        continue
                    if self._prune_one(path, size, report):
                        remaining -= size
                    else:
                        report.kept += 1
            else:
                report.kept = len(survivors)
        return report

    def _prune_one(self, path: str, size: int, report: "PruneReport") -> bool:
        try:
            os.unlink(path)
        except OSError:
            return False   # already gone: a concurrent pruner beat us to it
        report.removed += 1
        report.bytes_freed += size
        return True

    def clear(self) -> int:
        """Delete every record; return how many were removed."""
        removed = 0
        with self._maintenance_lock():
            for job_hash in list(self.iter_hashes()):
                try:
                    os.unlink(self._path(job_hash))
                    removed += 1
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:
        return f"ResultStore({self.root!r}, {self.stats!r})"
