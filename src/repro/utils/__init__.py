"""Small numeric and symbolic utilities shared across the library.

The analyzer works over exact rational arithmetic (``fractions.Fraction``)
for everything except the final LP solve.  This package provides:

* :mod:`repro.utils.rationals` -- conversions and sound rounding helpers,
* :mod:`repro.utils.linear` -- linear expressions over program variables,
* :mod:`repro.utils.polynomials` -- interval atoms ``max(0, U - L)``,
  monomials (products of atoms) and polynomials over them, which are the
  *base functions* of the expected potential method.
"""

from repro.utils.rationals import to_fraction, sound_floor_fraction, pretty_fraction
from repro.utils.linear import LinExpr
from repro.utils.polynomials import IntervalAtom, Monomial, Polynomial, atom_product

__all__ = [
    "to_fraction",
    "sound_floor_fraction",
    "pretty_fraction",
    "LinExpr",
    "IntervalAtom",
    "Monomial",
    "Polynomial",
    "atom_product",
]
